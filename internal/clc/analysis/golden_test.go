package analysis_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"maligo/internal/clc/analysis"
)

var update = flag.Bool("update", false, "rewrite the golden .want files")

const goldenDir = "../../../testdata/analysis"

// TestGolden compiles every kernel file under testdata/analysis and
// compares the analyzer's text output against the checked-in .want
// file. Each file holds the positive and the negative case for one
// pass; `go test -run Golden -update ./internal/clc/analysis`
// refreshes the goldens after an intentional change.
func TestGolden(t *testing.T) {
	entries, err := os.ReadDir(goldenDir)
	if err != nil {
		t.Fatalf("reading %s: %v", goldenDir, err)
	}
	found := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".cl") {
			continue
		}
		found++
		name := e.Name()
		t.Run(strings.TrimSuffix(name, ".cl"), func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join(goldenDir, name))
			if err != nil {
				t.Fatal(err)
			}
			diags, err := analysis.AnalyzeSource(name, string(src), "")
			if err != nil {
				t.Fatalf("compile %s: %v", name, err)
			}
			got := analysis.Format(diags)
			wantPath := filepath.Join(goldenDir, strings.TrimSuffix(name, ".cl")+".want")
			if *update {
				if err := os.WriteFile(wantPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(wantPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", name, got, want)
			}
		})
	}
	if found == 0 {
		t.Fatal("no .cl files under " + goldenDir)
	}
}

// TestGoldenCoverage asserts that the golden corpus exercises every
// registered pass with at least one positive finding, so a new pass
// cannot land without a golden case.
func TestGoldenCoverage(t *testing.T) {
	hit := make(map[string]bool)
	entries, err := os.ReadDir(goldenDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".cl") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(goldenDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		diags, err := analysis.AnalyzeSource(e.Name(), string(src), "")
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			hit[d.Pass] = true
		}
	}
	for _, p := range analysis.Passes() {
		if !hit[p.Name] {
			t.Errorf("pass %q has no positive golden case under %s", p.Name, goldenDir)
		}
	}
}
