// Package analysis is the kernel static-analysis subsystem: a
// pass-based linter that runs over the typed AST and lowered IR
// produced by clc.CompileArtifacts and reports Mali-specific
// optimization opportunities and portability bugs as structured
// diagnostics.
//
// The passes encode the optimization techniques of the source paper
// (Grasso et al., "Energy Efficient HPC on Embedded SoCs:
// Optimization Techniques for Mali GPU", §V) as machine-checkable
// rules — vectorization of scalar global loads, const/restrict
// pointer annotations, avoidance of host-side buffer copies on the
// unified-memory SoC, SoA data layout, loop unrolling and register
// budgeting — plus correctness checks that catch barrier divergence,
// statically provable intra-work-group data races and out-of-bounds
// constant indices before a kernel ever runs.
//
// Diagnostics can be suppressed per kernel with a directive comment
// placed above the kernel definition:
//
//	// maligo:allow vectorize,unroll scalar baseline on purpose
//	__kernel void vec_serial(...)
//
// The first whitespace-delimited token after "maligo:allow" is a
// comma-separated list of pass names; the rest of the line is a
// free-form reason.
package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"maligo/internal/clc"
	"maligo/internal/clc/analysis/dataflow"
	"maligo/internal/clc/ast"
	"maligo/internal/clc/ir"
	"maligo/internal/clc/sema"
	"maligo/internal/clc/token"
)

// Severity classifies how serious a diagnostic is.
type Severity int

// Severity levels. Info is advisory, Warning flags a likely
// performance problem, Error flags a correctness bug.
const (
	Info Severity = iota
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return "info"
}

// MarshalJSON renders the severity as its lowercase name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// ParseSeverity converts a severity name back to its value.
func ParseSeverity(name string) (Severity, error) {
	switch name {
	case "info":
		return Info, nil
	case "warning":
		return Warning, nil
	case "error":
		return Error, nil
	}
	return Info, fmt.Errorf("unknown severity %q", name)
}

// Diagnostic is one finding of one pass.
type Diagnostic struct {
	File   string
	Pos    token.Pos
	Sev    Severity
	Pass   string
	Kernel string
	Msg    string
	Hint   string
}

// MarshalJSON flattens the position into line/col keys so JSON
// consumers don't depend on the token package's field names.
func (d Diagnostic) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		File    string   `json:"file"`
		Line    int      `json:"line"`
		Col     int      `json:"col"`
		Sev     Severity `json:"severity"`
		Pass    string   `json:"pass"`
		Kernel  string   `json:"kernel,omitempty"`
		Message string   `json:"message"`
		Hint    string   `json:"hint,omitempty"`
	}{d.File, d.Pos.Line, d.Pos.Col, d.Sev, d.Pass, d.Kernel, d.Msg, d.Hint})
}

// String renders the diagnostic in the canonical single-line form
// "file:line:col: severity: [pass] message (hint)".
func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%s: %s: [%s] %s", d.File, d.Pos, d.Sev, d.Pass, d.Msg)
	if d.Hint != "" {
		fmt.Fprintf(&b, " (%s)", d.Hint)
	}
	return b.String()
}

// Context is the per-kernel view handed to each pass.
type Context struct {
	File string
	Fn   *ast.FuncDecl // the kernel being analyzed
	IR   *ir.Kernel    // lowered form of the same kernel
	Sema *sema.Result

	pass      string
	sink      *[]Diagnostic
	facts     *dataflow.Facts
	factsDone bool
}

// Facts lazily runs the tier-2 dataflow engine over the kernel's IR.
// The result is shared by every pass analyzing this kernel. Returns
// nil when no IR is available.
func (c *Context) Facts() *dataflow.Facts {
	if !c.factsDone {
		c.factsDone = true
		if c.IR != nil {
			c.facts = dataflow.Analyze(c.IR)
		}
	}
	return c.facts
}

// Report emits a diagnostic attributed to the running pass.
func (c *Context) Report(sev Severity, pos token.Pos, msg, hint string) {
	*c.sink = append(*c.sink, Diagnostic{
		File:   c.File,
		Pos:    pos,
		Sev:    sev,
		Pass:   c.pass,
		Kernel: c.Fn.Name,
		Msg:    msg,
		Hint:   hint,
	})
}

// Pass is one registered analysis.
type Pass struct {
	Name string
	Doc  string // one-line description shown by clc -analyze -passes
	Run  func(*Context)
}

// passes is the registry, in fixed documentation order: performance
// lints first, correctness checks last.
var passes = []Pass{
	{"vectorize", "scalar global-memory accesses in a unit-stride loop that vloadN/vstoreN would coalesce (§V-B)", passVectorize},
	{"constparam", "read-only __global pointer parameters missing const (§V-D)", passConstParam},
	{"restrictparam", "aliasing-prone __global pointer parameters missing restrict (§V-D)", passRestrictParam},
	{"copyprivate", "element-wise staging of __global data into private arrays, redundant on a unified-memory SoC (§V-A)", passCopyPrivate},
	{"soa", "constant-strided global accesses indicating an AoS layout where SoA would coalesce (§V-C)", passSoA},
	{"unroll", "short constant-trip-count loops worth unrolling (§V-E)", passUnroll},
	{"regbudget", "estimated register demand exceeding the per-thread budget, the paper's CL_OUT_OF_RESOURCES failure (§V-B)", passRegBudget},
	{"barrierdiv", "barrier() reached under work-item-dependent control flow", passBarrierDiv},
	{"race", "statically provable intra-work-group conflicts on __local/__global memory", passRace},
	{"bounds", "constant array indices that are out of bounds", passBounds},
}

// Passes returns the registry in run order.
func Passes() []Pass { return passes }

// PassNames returns the registered pass names in run order.
func PassNames() []string {
	names := make([]string, len(passes))
	for i, p := range passes {
		names[i] = p.Name
	}
	return names
}

// Analyze runs every pass over every kernel of a compiled unit and
// returns the surviving diagnostics deduplicated and sorted by
// position. Suppression directives in the source remove matching
// diagnostics per kernel.
func Analyze(art *clc.Artifacts) []Diagnostic {
	return AnalyzePasses(art, nil)
}

// AnalyzePasses is Analyze restricted to a subset of passes by name.
// A nil or empty subset runs everything. Unknown names are ignored
// here; callers validate with PassNames.
func AnalyzePasses(art *clc.Artifacts, only []string) []Diagnostic {
	want := map[string]bool{}
	for _, n := range only {
		want[n] = true
	}
	var diags []Diagnostic
	for _, fn := range art.Sema.Kernels {
		ctx := &Context{
			File: art.Name,
			Fn:   fn,
			IR:   art.Prog.Kernel(fn.Name),
			Sema: art.Sema,
			sink: &diags,
		}
		for _, p := range passes {
			if len(want) > 0 && !want[p.Name] {
				continue
			}
			ctx.pass = p.Name
			p.Run(ctx)
		}
	}
	diags = applySuppressions(art, diags)
	return dedupeSort(diags)
}

// dedupeSort imposes the canonical diagnostic order — position, then
// severity (most severe first), then pass, kernel and message — and
// drops exact duplicates, which arise when several passes (or one pass
// reached through two inlined call sites) converge on the same finding
// at the same position.
func dedupeSort(diags []Diagnostic) []Diagnostic {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Sev != b.Sev {
			return a.Sev > b.Sev
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		if a.Kernel != b.Kernel {
			return a.Kernel < b.Kernel
		}
		return a.Msg < b.Msg
	})
	kept := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// AnalyzeSourcePasses is AnalyzeSource restricted to a subset of
// passes by name (nil runs everything).
func AnalyzeSourcePasses(name, src, options string, only []string) ([]Diagnostic, error) {
	art, err := clc.CompileArtifacts(name, src, options)
	if err != nil {
		return nil, err
	}
	return AnalyzePasses(art, only), nil
}

// AnalyzeSource compiles OpenCL C source and analyzes it in one step.
// Compilation errors are returned as-is; they are not diagnostics.
func AnalyzeSource(name, src, options string) ([]Diagnostic, error) {
	art, err := clc.CompileArtifacts(name, src, options)
	if err != nil {
		return nil, err
	}
	return Analyze(art), nil
}

// applySuppressions drops diagnostics matched by maligo:allow
// directives. A directive suppresses the listed passes for the first
// kernel defined at or after the directive's line.
func applySuppressions(art *clc.Artifacts, diags []Diagnostic) []Diagnostic {
	allows := parseAllows(art.Source)
	if len(allows) == 0 {
		return diags
	}
	// Kernel definition lines in source order.
	type span struct {
		name string
		line int
	}
	var kernels []span
	for _, fn := range art.Sema.Kernels {
		kernels = append(kernels, span{fn.Name, fn.Pos().Line})
	}
	sort.Slice(kernels, func(i, j int) bool { return kernels[i].line < kernels[j].line })

	suppressed := make(map[string]map[string]bool) // kernel -> pass set
	for _, a := range allows {
		target := ""
		for _, k := range kernels {
			if k.line >= a.line {
				target = k.name
				break
			}
		}
		if target == "" {
			continue
		}
		set := suppressed[target]
		if set == nil {
			set = make(map[string]bool)
			suppressed[target] = set
		}
		for _, p := range a.passes {
			set[p] = true
		}
	}

	kept := diags[:0]
	for _, d := range diags {
		if suppressed[d.Kernel][d.Pass] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

type allowDirective struct {
	line   int
	passes []string
}

// parseAllows scans preprocessed source for maligo:allow directives.
// The preprocessor preserves comments and line structure, so directive
// line numbers match parser positions.
func parseAllows(src string) []allowDirective {
	const marker = "maligo:allow"
	var out []allowDirective
	for i, line := range strings.Split(src, "\n") {
		at := strings.Index(line, marker)
		if at < 0 {
			continue
		}
		rest := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(line[at+len(marker):]), "*/"))
		if rest == "" {
			continue
		}
		list := strings.Fields(rest)[0]
		var names []string
		for _, n := range strings.Split(list, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		if len(names) > 0 {
			out = append(out, allowDirective{line: i + 1, passes: names})
		}
	}
	return out
}

// Format renders diagnostics one per line in canonical form.
func Format(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatJSON renders diagnostics as an indented JSON array.
func FormatJSON(diags []Diagnostic) ([]byte, error) {
	if diags == nil {
		diags = []Diagnostic{}
	}
	return json.MarshalIndent(diags, "", "  ")
}

// MaxSeverity returns the highest severity present, or Info for an
// empty list.
func MaxSeverity(diags []Diagnostic) Severity {
	max := Info
	for _, d := range diags {
		if d.Sev > max {
			max = d.Sev
		}
	}
	return max
}
