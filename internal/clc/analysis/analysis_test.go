package analysis_test

import (
	"encoding/json"
	"strings"
	"testing"

	"maligo/internal/clc/analysis"
)

const racySrc = `__kernel void k(__global float* out, __local float* tile) {
    int lid = get_local_id(0);
    tile[lid] = (float)lid;
    out[get_global_id(0)] = tile[lid + 1];
}
`

func TestSeverityRoundTrip(t *testing.T) {
	for _, sev := range []analysis.Severity{analysis.Info, analysis.Warning, analysis.Error} {
		back, err := analysis.ParseSeverity(sev.String())
		if err != nil || back != sev {
			t.Errorf("round trip %v: got %v, err %v", sev, back, err)
		}
	}
	if _, err := analysis.ParseSeverity("fatal"); err == nil {
		t.Error("ParseSeverity accepted an unknown name")
	}
}

func TestMaxSeverity(t *testing.T) {
	diags, err := analysis.AnalyzeSource("racy.cl", racySrc, "")
	if err != nil {
		t.Fatal(err)
	}
	if got := analysis.MaxSeverity(diags); got != analysis.Error {
		t.Fatalf("MaxSeverity = %v, want error (diags: %v)", got, diags)
	}
	if got := analysis.MaxSeverity(nil); got != analysis.Info {
		t.Fatalf("MaxSeverity(nil) = %v, want info", got)
	}
}

func TestFormatJSON(t *testing.T) {
	diags, err := analysis.AnalyzeSource("racy.cl", racySrc, "")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := analysis.FormatJSON(diags)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, raw)
	}
	if len(decoded) != len(diags) {
		t.Fatalf("JSON has %d entries, want %d", len(decoded), len(diags))
	}
	foundRace := false
	for _, d := range decoded {
		if d["pass"] == "race" && d["severity"] == "error" {
			foundRace = true
		}
	}
	if !foundRace {
		t.Fatalf("race error missing from JSON output: %s", raw)
	}
	// Empty input must encode as [] rather than null.
	raw, err = analysis.FormatJSON(nil)
	if err != nil || strings.TrimSpace(string(raw)) != "[]" {
		t.Fatalf("FormatJSON(nil) = %q, %v", raw, err)
	}
}

func TestSuppressionScoping(t *testing.T) {
	src := `// maligo:allow race,barrierdiv intentional for the test
__kernel void first(__global float* out, __local float* tile) {
    int lid = get_local_id(0);
    tile[lid] = (float)lid;
    out[get_global_id(0)] = tile[lid + 1];
}
__kernel void second(__global float* out, __local float* tile) {
    int lid = get_local_id(0);
    tile[lid] = (float)lid;
    out[get_global_id(0)] = tile[lid + 1];
}
`
	diags, err := analysis.AnalyzeSource("sup.cl", src, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Pass == "race" && d.Kernel == "first" {
			t.Errorf("suppressed diagnostic survived: %v", d)
		}
	}
	found := false
	for _, d := range diags {
		if d.Pass == "race" && d.Kernel == "second" {
			found = true
		}
	}
	if !found {
		t.Errorf("directive leaked onto the second kernel: %v", diags)
	}
}

func TestPassNamesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, n := range analysis.PassNames() {
		if seen[n] {
			t.Errorf("duplicate pass name %q", n)
		}
		seen[n] = true
	}
	if len(seen) < 6 {
		t.Fatalf("only %d passes registered, want at least 6", len(seen))
	}
}

// TestAnalyzePassesSubset: the -passes filter runs only the named
// passes, and an empty filter is equivalent to Analyze.
func TestAnalyzePassesSubset(t *testing.T) {
	onlyRace, err := analysis.AnalyzeSourcePasses("racy.cl", racySrc, "", []string{"race"})
	if err != nil {
		t.Fatal(err)
	}
	if len(onlyRace) == 0 {
		t.Fatal("race pass found nothing in racySrc")
	}
	for _, d := range onlyRace {
		if d.Pass != "race" {
			t.Fatalf("pass filter leaked %q finding: %s", d.Pass, d.String())
		}
	}
	all, err := analysis.AnalyzeSourcePasses("racy.cl", racySrc, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	full, err := analysis.AnalyzeSource("racy.cl", racySrc, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(full) {
		t.Fatalf("nil filter ran %d findings, Analyze %d", len(all), len(full))
	}
}
