package analysis

import (
	"maligo/internal/clc/ast"
	"maligo/internal/clc/builtin"
	"maligo/internal/clc/sema"
	"maligo/internal/clc/token"
)

// uniformity is a taint analysis over one kernel: an expression is
// "divergent" when its value can differ between work-items of the
// same work-group. get_local_id/get_global_id are the taint sources;
// get_group_id, get_*_size and kernel arguments are uniform because
// every item of a group sees the same value. Memory loads are treated
// as divergent (the loaded value may depend on a divergent address or
// on racing writes). The analysis runs to a fixpoint so taint flows
// through local variables and through assignments performed under
// divergent control flow.
type uniformity struct {
	res       *sema.Result
	divergent map[*sema.Symbol]bool
	retDiv    map[*ast.FuncDecl]bool // user functions with divergent return values
}

func newUniformity(res *sema.Result, fn *ast.FuncDecl) *uniformity {
	u := &uniformity{
		res:       res,
		divergent: make(map[*sema.Symbol]bool),
		retDiv:    make(map[*ast.FuncDecl]bool),
	}
	// A helper whose body reads work-item identity returns a divergent
	// value regardless of its arguments.
	for _, f := range res.Funcs {
		u.retDiv[f] = bodyReadsIdentity(res, f.Body)
	}
	// Fixpoint: each round may taint more symbols; symbol count bounds
	// the rounds.
	for i := 0; i < len(res.Syms)+2; i++ {
		if !u.propagate(fn.Body, false) {
			break
		}
	}
	return u
}

// bodyReadsIdentity reports whether a statement tree calls
// get_global_id or get_local_id (directly; helpers are handled by the
// caller's per-function map, and OpenCL C forbids recursion).
func bodyReadsIdentity(res *sema.Result, s ast.Stmt) bool {
	found := false
	allExprs(s, func(e ast.Expr) {
		if call, ok := e.(*ast.CallExpr); ok {
			if info := res.Calls[call]; info != nil && info.Kind == sema.CallBuiltin {
				if info.Builtin == builtin.GetGlobalID || info.Builtin == builtin.GetLocalID {
					found = true
				}
			}
		}
	})
	return found
}

// propagate walks the body once, tainting symbols assigned divergent
// values or assigned at all under divergent control flow. It reports
// whether any new symbol was tainted.
func (u *uniformity) propagate(body ast.Stmt, underDiv bool) bool {
	changed := false
	taint := func(sym *sema.Symbol) {
		if sym != nil && !u.divergent[sym] {
			u.divergent[sym] = true
			changed = true
		}
	}
	handleExpr := func(e ast.Expr, div bool) {
		walkExprs(e, func(x ast.Expr) {
			switch x := x.(type) {
			case *ast.AssignExpr:
				if div || u.Divergent(x.RHS) {
					taint(baseSym(u.res, x.LHS))
				}
			case *ast.PostfixExpr:
				if div {
					taint(baseSym(u.res, x.X))
				}
			case *ast.UnaryExpr:
				if div && (x.Op == token.INC || x.Op == token.DEC) {
					taint(baseSym(u.res, x.X))
				}
			}
		})
	}
	var walk func(s ast.Stmt, div bool)
	walk = func(s ast.Stmt, div bool) {
		switch s := s.(type) {
		case nil:
		case *ast.DeclStmt:
			for _, d := range s.Decls {
				if d.Init != nil && (div || u.Divergent(d.Init)) {
					// sema links each local symbol to its DeclStmt;
					// disambiguate multi-declarator statements by name.
					for _, sym := range u.res.Syms {
						if sym.Decl == s && sym.Name == d.Name {
							taint(sym)
							break
						}
					}
				}
			}
		case *ast.ExprStmt:
			handleExpr(s.X, div)
		case *ast.BlockStmt:
			for _, c := range s.List {
				walk(c, div)
			}
		case *ast.IfStmt:
			branchDiv := div || u.Divergent(s.Cond)
			walk(s.Then, branchDiv)
			walk(s.Else, branchDiv)
		case *ast.ForStmt:
			walk(s.Init, div)
			bodyDiv := div || u.Divergent(s.Cond)
			handleExpr(s.Post, bodyDiv)
			walk(s.Body, bodyDiv)
		case *ast.WhileStmt:
			walk(s.Body, div || u.Divergent(s.Cond))
		case *ast.DoWhileStmt:
			walk(s.Body, div || u.Divergent(s.Cond))
		case *ast.ReturnStmt:
			handleExpr(s.X, div)
		}
	}
	walk(body, underDiv)
	return changed
}

// Divergent reports whether e may evaluate differently across
// work-items of one group.
func (u *uniformity) Divergent(e ast.Expr) bool {
	if e == nil {
		return false
	}
	switch e := unparen(e).(type) {
	case *ast.IntLit, *ast.FloatLit, *ast.SizeofExpr:
		return false
	case *ast.Ident:
		return u.divergent[u.res.Syms[e]]
	case *ast.CallExpr:
		info := u.res.Calls[e]
		if info == nil {
			return true
		}
		switch info.Kind {
		case sema.CallBuiltin:
			switch info.Builtin {
			case builtin.GetGlobalID, builtin.GetLocalID:
				return true
			case builtin.GetGroupID, builtin.GetGlobalSize, builtin.GetLocalSize,
				builtin.GetNumGroups, builtin.GetGlobalOffset, builtin.GetWorkDim:
				return false
			}
			if _, ok := info.Builtin.IsVload(); ok {
				return true // loads from memory
			}
			if info.Builtin.IsAtomic() {
				return true // returned old value differs per item
			}
			// Pure math builtins: divergent iff an argument is.
			for _, a := range e.Args {
				if u.Divergent(a) {
					return true
				}
			}
			return false
		case sema.CallUser:
			if info.Target != nil && u.retDiv[info.Target] {
				return true
			}
			for _, a := range e.Args {
				if u.Divergent(a) {
					return true
				}
			}
			return false
		case sema.CallConvert:
			for _, a := range e.Args {
				if u.Divergent(a) {
					return true
				}
			}
			return false
		}
		return true
	case *ast.IndexExpr:
		return true // loaded value may differ per item
	case *ast.UnaryExpr:
		if e.Op == token.MUL {
			return true // pointer dereference: a load
		}
		return u.Divergent(e.X)
	case *ast.PostfixExpr:
		return u.Divergent(e.X)
	case *ast.BinaryExpr:
		return u.Divergent(e.X) || u.Divergent(e.Y)
	case *ast.AssignExpr:
		return u.Divergent(e.LHS) || u.Divergent(e.RHS)
	case *ast.CondExpr:
		return u.Divergent(e.Cond) || u.Divergent(e.Then) || u.Divergent(e.Else)
	case *ast.MemberExpr:
		return u.Divergent(e.X)
	case *ast.CastExpr:
		return u.Divergent(e.X)
	case *ast.VectorLit:
		for _, el := range e.Elems {
			if u.Divergent(el) {
				return true
			}
		}
		return false
	}
	return true
}
