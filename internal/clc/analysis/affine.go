package analysis

import (
	"maligo/internal/clc/ast"
	"maligo/internal/clc/builtin"
	"maligo/internal/clc/sema"
	"maligo/internal/clc/token"
)

// affine is an index expression decomposed as
//
//	al*get_local_id(0) + ag*get_global_id(0) + c
//
// in element units. Since get_global_id(0) = groupBase + lid with
// groupBase uniform across the group, two affine accesses to the same
// buffer are comparable for intra-group conflicts whenever their ag
// coefficients match: the groupBase terms cancel and the effective
// per-item stride is al+ag.
type affine struct {
	al, ag int64
	c      int64
	ok     bool
}

func (a affine) add(b affine) affine {
	return affine{a.al + b.al, a.ag + b.ag, a.c + b.c, a.ok && b.ok}
}

func (a affine) sub(b affine) affine {
	return affine{a.al - b.al, a.ag - b.ag, a.c - b.c, a.ok && b.ok}
}

func (a affine) scale(k int64) affine {
	return affine{a.al * k, a.ag * k, a.c * k, a.ok}
}

func (a affine) isConst() bool { return a.ok && a.al == 0 && a.ag == 0 }

// lidCoeff is the effective per-item stride within one work-group.
func (a affine) lidCoeff() int64 { return a.al + a.ag }

// at evaluates the group-relative element offset for local id l (the
// uniform groupBase contribution of ag is dropped; it is identical
// for every item and cancels when comparing two accesses with equal
// ag).
func (a affine) at(l int64) int64 { return a.lidCoeff()*l + a.c }

// affineEnv maps single-assignment locals to their affine values so
// `int i = get_global_id(0); s[i] = ...` resolves.
type affineEnv struct {
	res  *sema.Result
	vals map[*sema.Symbol]affine
}

// newAffineEnv scans a kernel body and records the affine value of
// every local that is initialized once and never reassigned.
func newAffineEnv(res *sema.Result, fn *ast.FuncDecl) *affineEnv {
	env := &affineEnv{res: res, vals: make(map[*sema.Symbol]affine)}

	// Poison every symbol written outside its declaration.
	poisoned := make(map[*sema.Symbol]bool)
	allExprs(fn.Body, func(e ast.Expr) {
		assignTargets(res, e, func(sym *sema.Symbol) { poisoned[sym] = true })
	})

	// Evaluate declaration initializers in source order so later decls
	// can reference earlier ones.
	walkStmts(fn.Body, func(s ast.Stmt) {
		ds, ok := s.(*ast.DeclStmt)
		if !ok {
			return
		}
		for _, d := range ds.Decls {
			if d.Init == nil || d.ArrayLen != nil {
				continue
			}
			for _, sym := range res.Syms { // maligo:allow maporder each symbol updates only its own entry
				if sym.Decl != ds || sym.Name != d.Name || poisoned[sym] {
					continue
				}
				if v := env.eval(d.Init); v.ok {
					env.vals[sym] = v
				}
				break
			}
		}
	})
	return env
}

// eval decomposes e into affine form. Anything it cannot prove affine
// in {lid, gid, constants} — group ids, kernel arguments, loads,
// non-zero dimensions — yields ok=false, which makes the race pass
// skip the access rather than guess.
func (env *affineEnv) eval(e ast.Expr) affine {
	switch e := unparen(e).(type) {
	case *ast.IntLit:
		return affine{c: e.Value, ok: true}
	case *ast.Ident:
		if v, ok := env.vals[env.res.Syms[e]]; ok {
			return v
		}
	case *ast.CastExpr:
		return env.eval(e.X)
	case *ast.CallExpr:
		id, dim, ok := workItemCall(env.res, e)
		if !ok || dim != 0 {
			return affine{}
		}
		switch id {
		case builtin.GetLocalID:
			return affine{al: 1, ok: true}
		case builtin.GetGlobalID:
			return affine{ag: 1, ok: true}
		}
	case *ast.UnaryExpr:
		switch e.Op {
		case token.ADD:
			return env.eval(e.X)
		case token.SUB:
			return env.eval(e.X).scale(-1)
		}
	case *ast.BinaryExpr:
		x := env.eval(e.X)
		y := env.eval(e.Y)
		switch e.Op {
		case token.ADD:
			return x.add(y)
		case token.SUB:
			return x.sub(y)
		case token.MUL:
			if x.ok && x.isConst() {
				return y.scale(x.c)
			}
			if y.ok && y.isConst() {
				return x.scale(y.c)
			}
		case token.SHL:
			if y.ok && y.isConst() && y.c >= 0 && y.c < 32 {
				return x.scale(1 << uint(y.c))
			}
		}
	}
	return affine{}
}

// strideOf computes the coefficient of a designated loop/index
// variable in e, treating every subexpression that does not mention
// the variable as loop-invariant. isVar identifies occurrences of the
// variable (an identifier, or a direct get_global_id(0) call). The
// bool result is false when the dependence is not linear.
func strideOf(res *sema.Result, e ast.Expr, isVar func(ast.Expr) bool) (int64, bool) {
	e = unparen(e)
	if isVar(e) {
		return 1, true
	}
	if !mentionsVar(e, isVar) {
		return 0, true
	}
	switch e := e.(type) {
	case *ast.CastExpr:
		return strideOf(res, e.X, isVar)
	case *ast.UnaryExpr:
		switch e.Op {
		case token.ADD:
			return strideOf(res, e.X, isVar)
		case token.SUB:
			s, ok := strideOf(res, e.X, isVar)
			return -s, ok
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD:
			sx, okx := strideOf(res, e.X, isVar)
			sy, oky := strideOf(res, e.Y, isVar)
			return sx + sy, okx && oky
		case token.SUB:
			sx, okx := strideOf(res, e.X, isVar)
			sy, oky := strideOf(res, e.Y, isVar)
			return sx - sy, okx && oky
		case token.MUL:
			if !mentionsVar(e.Y, isVar) {
				if k, ok := constEval(res, e.Y); ok {
					s, oks := strideOf(res, e.X, isVar)
					return s * k, oks
				}
				return 0, false
			}
			if !mentionsVar(e.X, isVar) {
				if k, ok := constEval(res, e.X); ok {
					s, oks := strideOf(res, e.Y, isVar)
					return s * k, oks
				}
			}
			return 0, false
		case token.SHL:
			if !mentionsVar(e.Y, isVar) {
				if k, ok := constEval(res, e.Y); ok && k >= 0 && k < 32 {
					s, oks := strideOf(res, e.X, isVar)
					return s << uint(k), oks
				}
			}
			return 0, false
		}
	}
	return 0, false
}

// mentionsVar reports whether the variable occurs anywhere in e.
func mentionsVar(e ast.Expr, isVar func(ast.Expr) bool) bool {
	found := false
	walkExprs(e, func(x ast.Expr) {
		if isVar(x) {
			found = true
		}
	})
	return found
}
