// Package dataflow is the tier-2 static-analysis engine: a control-
// flow-graph construction over lowered IR with dominance and
// postdominance trees, SSA-style def-use chains, a worklist solver,
// and fact providers (constant/value-range propagation, affine index
// analysis, uniformity/divergence, barrier-phase reachability, and
// natural-loop recognition) that the analysis passes query.
//
// The engine runs on ir.Kernel code, which has every helper call
// inlined — so all facts are naturally interprocedural: a store
// performed inside a helper function participates in the caller's
// race and bounds analysis with its own source position.
package dataflow

import (
	"maligo/internal/clc/ir"
)

// Block is one basic block: the half-open instruction range
// [Start, End) of the kernel's code.
type Block struct {
	ID    int
	Start int
	End   int
	Succs []int
	Preds []int
}

// Terminator returns the index of the block's last instruction, or -1
// for the synthetic exit block.
func (b *Block) Terminator() int {
	if b.End <= b.Start {
		return -1
	}
	return b.End - 1
}

// Graph is the CFG of one kernel plus its dominance structure. The
// last block (ID == Exit) is a synthetic exit with an empty range;
// every Ret and every jump past the end of the code flows into it.
type Graph struct {
	Kernel *ir.Kernel
	Blocks []*Block
	Exit   int

	blockAt []int // instruction index -> block ID
	RPO     []int // reverse postorder over forward edges, entry first

	Idom     []int // immediate dominator per block; -1 for entry/unreachable
	PostIdom []int // immediate postdominator; -1 for exit/blocks that never exit

	rpoNum []int // block -> position in RPO; -1 when unreachable
}

// BuildGraph constructs the CFG and dominance trees for a kernel.
func BuildGraph(k *ir.Kernel) *Graph {
	code := k.Code
	n := len(code)
	leader := make([]bool, n+1)
	leader[0] = true
	mark := func(t int64) {
		if t < 0 {
			t = 0
		}
		if t > int64(n) {
			t = int64(n)
		}
		leader[t] = true
	}
	for i := 0; i < n; i++ {
		switch code[i].Op {
		case ir.Jmp, ir.JmpIf, ir.JmpIfZ:
			mark(code[i].Imm)
			leader[i+1] = true
		case ir.Ret:
			leader[i+1] = true
		}
	}

	g := &Graph{Kernel: k, blockAt: make([]int, n)}
	start := 0
	for i := 1; i <= n; i++ {
		if leader[i] {
			b := &Block{ID: len(g.Blocks), Start: start, End: i}
			g.Blocks = append(g.Blocks, b)
			start = i
		}
	}
	exit := &Block{ID: len(g.Blocks), Start: n, End: n}
	g.Blocks = append(g.Blocks, exit)
	g.Exit = exit.ID
	for _, b := range g.Blocks[:g.Exit] {
		for i := b.Start; i < b.End; i++ {
			g.blockAt[i] = b.ID
		}
	}

	blockOf := func(t int64) int {
		if t < 0 {
			t = 0
		}
		if t >= int64(n) {
			return g.Exit
		}
		return g.blockAt[t]
	}
	addEdge := func(from, to int) {
		g.Blocks[from].Succs = append(g.Blocks[from].Succs, to)
		g.Blocks[to].Preds = append(g.Blocks[to].Preds, from)
	}
	for _, b := range g.Blocks[:g.Exit] {
		t := b.Terminator()
		if t < 0 { // empty block (cannot happen for non-exit, but be safe)
			addEdge(b.ID, blockOf(int64(b.End)))
			continue
		}
		switch code[t].Op {
		case ir.Jmp:
			addEdge(b.ID, blockOf(code[t].Imm))
		case ir.JmpIf, ir.JmpIfZ:
			// Successor 0 is the branch target (condition met for
			// JmpIf, not met for JmpIfZ); successor 1 falls through.
			addEdge(b.ID, blockOf(code[t].Imm))
			addEdge(b.ID, blockOf(int64(b.End)))
		case ir.Ret:
			addEdge(b.ID, g.Exit)
		default:
			addEdge(b.ID, blockOf(int64(b.End)))
		}
	}

	g.computeRPO()
	g.Idom = dominators(len(g.Blocks), 0, g.RPO, g.rpoNum,
		func(b int) []int { return g.Blocks[b].Preds })
	// Postdominators: dominators of the reverse graph rooted at exit.
	rpoBack, numBack := postorderFrom(g, g.Exit, func(b int) []int { return g.Blocks[b].Preds })
	g.PostIdom = dominators(len(g.Blocks), g.Exit, rpoBack, numBack,
		func(b int) []int { return g.Blocks[b].Succs })
	return g
}

// BlockOf returns the block containing instruction i.
func (g *Graph) BlockOf(i int) *Block { return g.Blocks[g.blockAt[i]] }

// Reachable reports whether block b is reachable from the entry.
func (g *Graph) Reachable(b int) bool { return g.rpoNum[b] >= 0 }

// Dominates reports whether block a dominates block b (forward
// dominance; both must be reachable).
func (g *Graph) Dominates(a, b int) bool {
	for b >= 0 {
		if a == b {
			return true
		}
		if b == 0 {
			return false
		}
		b = g.Idom[b]
	}
	return false
}

// computeRPO numbers reachable blocks in reverse postorder.
func (g *Graph) computeRPO() {
	rpo, num := postorderFrom(g, 0, func(b int) []int { return g.Blocks[b].Succs })
	g.RPO, g.rpoNum = rpo, num
}

// postorderFrom returns the reverse postorder of blocks reachable from
// root along next-edges, and each block's position (-1 if unreached).
func postorderFrom(g *Graph, root int, next func(int) []int) ([]int, []int) {
	seen := make([]bool, len(g.Blocks))
	var order []int
	var dfs func(b int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range next(b) {
			if !seen[s] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(root)
	// Reverse into RPO.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	num := make([]int, len(g.Blocks))
	for i := range num {
		num[i] = -1
	}
	for i, b := range order {
		num[b] = i
	}
	return order, num
}

// dominators runs the iterative Cooper-Harvey-Kennedy algorithm. rpo
// and rpoNum describe the traversal order from the root; preds yields
// the incoming edges in that orientation. Returns the immediate
// dominator per block (-1 for the root and unreachable blocks).
func dominators(n, root int, rpo []int, rpoNum []int, preds func(int) []int) []int {
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[root] = root
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == root {
				continue
			}
			newIdom := -1
			for _, p := range preds(b) {
				if rpoNum[p] < 0 || idom[p] < 0 {
					continue
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom >= 0 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	idom[root] = -1
	return idom
}
