package dataflow

import (
	"sort"

	"maligo/internal/clc/ir"
)

// Loop is one natural loop: a back edge latch->header where the
// header dominates the latch, plus the set of blocks in the loop.
type Loop struct {
	Header int
	Latch  int
	Blocks map[int]bool

	// Trip is the exact iteration count when the loop is a counted
	// `for (iv = start; iv < bound; iv += step)` shape with all three
	// quantities statically known; -1 otherwise.
	Trip int64
}

// Loops recognizes the kernel's natural loops and, where possible,
// their trip counts. Loops are returned in header order.
func (f *Facts) Loops() []Loop {
	g := f.G
	var loops []Loop
	for _, b := range g.RPO {
		for _, s := range g.Blocks[b].Succs {
			if g.Reachable(s) && g.Dominates(s, b) {
				loops = append(loops, f.buildLoop(s, b))
			}
		}
	}
	sort.Slice(loops, func(i, j int) bool {
		if loops[i].Header != loops[j].Header {
			return loops[i].Header < loops[j].Header
		}
		return loops[i].Latch < loops[j].Latch
	})
	return loops
}

func (f *Facts) buildLoop(header, latch int) Loop {
	g := f.G
	l := Loop{Header: header, Latch: latch, Blocks: map[int]bool{header: true}, Trip: -1}
	var add func(b int)
	add = func(b int) {
		if l.Blocks[b] {
			return
		}
		l.Blocks[b] = true
		for _, p := range g.Blocks[b].Preds {
			add(p)
		}
	}
	add(latch)
	l.Trip = f.tripCount(&l)
	return l
}

// tripCount derives an exact trip count for counted loops: the header
// must exit on a < or <= compare of an induction slot against a
// constant, the induction slot must enter the loop with a constant
// value and be advanced by exactly one constant-step add inside it.
func (f *Facts) tripCount(l *Loop) int64 {
	g := f.G
	code := g.Kernel.Code
	hb := g.Blocks[l.Header]
	term := hb.Terminator()
	if term < 0 || code[term].Op != ir.JmpIfZ {
		return -1
	}
	// The JmpIfZ target must leave the loop (the canonical while-shape
	// lowering: cond; JmpIfZ exit; body; Jmp cond).
	if tgt := code[term].Imm; tgt < int64(len(code)) && tgt >= 0 && l.Blocks[g.blockAt[tgt]] {
		return -1
	}
	def := condDef(code, hb, term)
	if def < 0 {
		return -1
	}
	d := &code[def]
	if (d.Op != ir.CmpLtI && d.Op != ir.CmpLeI) || d.Width > 1 {
		return -1
	}
	bound, ok := f.IntervalBefore(def, d.C).Const()
	if !ok {
		return -1
	}
	// Classify the reaching definitions of the induction slot at the
	// compare: constant initializations from outside the loop, and a
	// single constant-step increment inside it.
	iv := ir.RegRef{Bank: ir.BankI, Slot: d.B, Width: 1}
	du := f.DefUse()
	var start, step int64
	haveStart, haveStep := false, false
	for _, di := range du.DefsAt(def, iv) {
		inLoop := l.Blocks[g.blockAt[di]]
		dd := &code[di]
		if !inLoop {
			v, ok := f.IntervalAfter(di, d.B).Const()
			if !ok || (haveStart && v != start) {
				return -1
			}
			start, haveStart = v, true
			continue
		}
		if haveStep {
			return -1
		}
		// Chase copy chains: lowering computes iv+step into a temp and
		// copies it back (movi iv <- t).
		for depth := 0; dd.Op == ir.MovI && depth < 8; depth++ {
			srcs := du.DefsAt(di, ir.RegRef{Bank: ir.BankI, Slot: dd.B, Width: 1})
			if len(srcs) != 1 || !l.Blocks[g.blockAt[srcs[0]]] {
				break
			}
			di = srcs[0]
			dd = &code[di]
		}
		if dd.Op != ir.AddI && dd.Op != ir.SubI {
			return -1
		}
		// iv = iv +/- const
		var other int32
		switch {
		case dd.B == d.B:
			other = dd.C
		case dd.C == d.B && dd.Op == ir.AddI:
			other = dd.B
		default:
			return -1
		}
		v, ok := f.IntervalBefore(di, other).Const()
		if !ok {
			return -1
		}
		if dd.Op == ir.SubI {
			v = -v
		}
		step, haveStep = v, true
	}
	if !haveStart || !haveStep || step <= 0 {
		return -1
	}
	if d.Op == ir.CmpLeI {
		bound++
	}
	if bound <= start {
		return 0
	}
	return (bound - start + step - 1) / step
}
