package dataflow

import (
	"sort"

	"maligo/internal/clc/ir"
)

// Loop is one natural loop: a back edge latch->header where the
// header dominates the latch, plus the set of blocks in the loop.
type Loop struct {
	Header int
	Latch  int
	Blocks map[int]bool

	// Trip is the exact iteration count when the loop is a counted
	// `for (iv = start; iv < bound; iv += step)` shape with all three
	// quantities statically known; -1 otherwise.
	Trip int64

	// Counted-shape facts. Counted reports that the header exits on a
	// scalar `iv < bound` / `iv <= bound` compare (JmpIfZ leaving the
	// loop) and that exactly one constant-step increment of iv reaches
	// the compare from inside the loop. Unlike Trip, the shape does
	// not require the bound or the initial value to be constants, so
	// runtime-bounded loops (`for (i = lo; i < hi; i++)`) are still
	// recognized — the transform passes in internal/clc/opt build
	// their vectorized pre-loops from these fields.
	Counted bool
	IV      int32 // induction slot (integer bank)
	Step    int64 // constant per-iteration increment, > 0
	CmpAt   int   // instruction index of the exit compare
	CmpOp   ir.Op // ir.CmpLtI or ir.CmpLeI
	// BoundSlot is the compare's right operand. Bound carries its
	// constant value when BoundConst (the slot may be defined inside
	// the header, e.g. a re-materialized immediate).
	BoundSlot  int32
	Bound      int64
	BoundConst bool
	// IncAt lists the iv-update chain inside the loop in execution
	// order: the AddI/SubI computing iv+step and any MovI copies back
	// into the induction slot.
	IncAt []int
}

// Loops recognizes the kernel's natural loops and, where possible,
// their trip counts. Loops are returned in header order.
func (f *Facts) Loops() []Loop {
	g := f.G
	var loops []Loop
	for _, b := range g.RPO {
		for _, s := range g.Blocks[b].Succs {
			if g.Reachable(s) && g.Dominates(s, b) {
				loops = append(loops, f.buildLoop(s, b))
			}
		}
	}
	sort.Slice(loops, func(i, j int) bool {
		if loops[i].Header != loops[j].Header {
			return loops[i].Header < loops[j].Header
		}
		return loops[i].Latch < loops[j].Latch
	})
	return loops
}

func (f *Facts) buildLoop(header, latch int) Loop {
	g := f.G
	l := Loop{Header: header, Latch: latch, Blocks: map[int]bool{header: true}, Trip: -1}
	var add func(b int)
	add = func(b int) {
		if l.Blocks[b] {
			return
		}
		l.Blocks[b] = true
		for _, p := range g.Blocks[b].Preds {
			add(p)
		}
	}
	add(latch)
	f.countedShape(&l)
	return l
}

// countedShape derives the counted-loop facts and, when the bound and
// every initial value are constants, the exact trip count. The header
// must exit on a < or <= compare of an induction slot, and the
// induction slot must be advanced by exactly one constant-step add
// inside the loop.
func (f *Facts) countedShape(l *Loop) {
	g := f.G
	code := g.Kernel.Code
	hb := g.Blocks[l.Header]
	term := hb.Terminator()
	if term < 0 || code[term].Op != ir.JmpIfZ {
		return
	}
	// The JmpIfZ target must leave the loop (the canonical while-shape
	// lowering: cond; JmpIfZ exit; body; Jmp cond).
	if tgt := code[term].Imm; tgt < int64(len(code)) && tgt >= 0 && l.Blocks[g.blockAt[tgt]] {
		return
	}
	def := condDef(code, hb, term)
	if def < 0 {
		return
	}
	d := &code[def]
	if (d.Op != ir.CmpLtI && d.Op != ir.CmpLeI) || d.Width > 1 {
		return
	}
	bound, boundConst := f.IntervalBefore(def, d.C).Const()
	// Classify the reaching definitions of the induction slot at the
	// compare: initializations from outside the loop, and a single
	// constant-step increment inside it.
	iv := ir.RegRef{Bank: ir.BankI, Slot: d.B, Width: 1}
	du := f.DefUse()
	var start, step int64
	var incAt []int
	haveStart, startConst, haveStep := false, true, false
	for _, di := range du.DefsAt(def, iv) {
		inLoop := l.Blocks[g.blockAt[di]]
		dd := &code[di]
		if !inLoop {
			v, ok := f.IntervalAfter(di, d.B).Const()
			if !ok || (haveStart && startConst && v != start) {
				startConst = false
			} else {
				start = v
			}
			haveStart = true
			continue
		}
		if haveStep {
			return
		}
		// Chase copy chains: lowering computes iv+step into a temp and
		// copies it back (movi iv <- t).
		chain := []int{di}
		for depth := 0; dd.Op == ir.MovI && depth < 8; depth++ {
			srcs := du.DefsAt(di, ir.RegRef{Bank: ir.BankI, Slot: dd.B, Width: 1})
			if len(srcs) != 1 || !l.Blocks[g.blockAt[srcs[0]]] {
				break
			}
			di = srcs[0]
			dd = &code[di]
			chain = append(chain, di)
		}
		if dd.Op != ir.AddI && dd.Op != ir.SubI {
			return
		}
		// iv = iv +/- const
		var other int32
		switch {
		case dd.B == d.B:
			other = dd.C
		case dd.C == d.B && dd.Op == ir.AddI:
			other = dd.B
		default:
			return
		}
		v, ok := f.IntervalBefore(di, other).Const()
		if !ok {
			return
		}
		if dd.Op == ir.SubI {
			v = -v
		}
		step, haveStep = v, true
		sort.Ints(chain)
		incAt = chain
	}
	if !haveStart || !haveStep || step <= 0 {
		return
	}
	l.Counted = true
	l.IV = d.B
	l.Step = step
	l.CmpAt = def
	l.CmpOp = d.Op
	l.BoundSlot = d.C
	l.Bound, l.BoundConst = bound, boundConst
	l.IncAt = incAt

	if !boundConst || !startConst {
		return
	}
	if d.Op == ir.CmpLeI {
		bound++
	}
	if bound <= start {
		l.Trip = 0
		return
	}
	l.Trip = (bound - start + step - 1) / step
}
