package dataflow

import (
	"testing"

	"maligo/internal/clc"
	"maligo/internal/clc/ir"
)

func compile(t *testing.T, src string) *ir.Kernel {
	t.Helper()
	prog, err := clc.Compile("test.cl", src, "")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for _, name := range prog.KernelNames() {
		return prog.Kernels[name]
	}
	t.Fatal("no kernels")
	return nil
}

func analyze(t *testing.T, src string) (*ir.Kernel, *Facts) {
	k := compile(t, src)
	return k, Analyze(k)
}

func TestGraphShape(t *testing.T) {
	k, f := analyze(t, `
__kernel void k(__global int *out, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) s += i;
    out[0] = s;
}`)
	g := f.G
	if len(g.Blocks) < 4 {
		t.Fatalf("expected a loop-shaped CFG, got %d blocks", len(g.Blocks))
	}
	// Entry dominates everything reachable; exit postdominates.
	for _, b := range g.Blocks {
		if !g.Reachable(b.ID) {
			continue
		}
		if !g.Dominates(0, b.ID) {
			t.Errorf("entry does not dominate block %d", b.ID)
		}
	}
	if k.Code[len(k.Code)-1].Op != ir.Ret {
		t.Fatalf("kernel should end in ret")
	}
}

// storeIndex locates the nth store instruction.
func storeIndex(k *ir.Kernel, n int) int {
	for i, in := range k.Code {
		if in.Op == ir.StoreI || in.Op == ir.StoreF {
			if n == 0 {
				return i
			}
			n--
		}
	}
	return -1
}

func TestDeadBranchUnreachable(t *testing.T) {
	k, f := analyze(t, `
__kernel void k(__global int *out) {
    int n = 4;
    int acc[8];
    acc[0] = 1;
    if (n > 8) { acc[7] = 2; }
    out[0] = acc[0];
}`)
	// The store inside the statically-false branch must be marked
	// unreachable.
	dead := storeIndex(k, 1)
	if dead < 0 {
		t.Fatal("no second store found")
	}
	if f.Reachable(dead) {
		t.Errorf("store in `if (4 > 8)` branch should be unreachable")
	}
	if !f.Reachable(storeIndex(k, 0)) {
		t.Errorf("first store should be reachable")
	}
}

func TestLoopRangeRefinement(t *testing.T) {
	k, f := analyze(t, `
__kernel void k(__global int *out) {
    int s = 0;
    for (int i = 0; i < 16; i++) s += i;
    out[0] = s;
}`)
	// Find the AddI implementing s += i and check i's range there.
	// The loop body executes with i in [0, 15].
	var checked bool
	f.Each(func(i int, e *Env) {
		in := &k.Code[i]
		if in.Op != ir.AddI || checked {
			return
		}
		// s += i reads two non-constant slots; identify it by both
		// operands having known intervals, one of them [0,15].
		b, c := e.Interval(in.B), e.Interval(in.C)
		for _, v := range []Interval{b, c} {
			if (v == Interval{0, 15}) {
				checked = true
			}
		}
	})
	if !checked {
		t.Errorf("no instruction saw the induction variable refined to [0,15]")
	}
}

func TestAffineLidGid(t *testing.T) {
	k, f := analyze(t, `
__kernel void k(__global int *out) {
    int lid = get_local_id(0);
    int gid = get_global_id(0);
    out[gid] = lid * 2 + 1;
}`)
	st := storeIndex(k, 0)
	if st < 0 {
		t.Fatal("no store")
	}
	// The stored value is 2*lid + 1.
	a := f.AffineBefore(st, k.Code[st].A)
	if !a.OK || a.Lid != 2 || a.C != 1 || a.Gid != 0 {
		t.Errorf("stored value affine = %v, want 1+2*lid", a)
	}
	// The address is base + 4*gid.
	addr := f.AffineBefore(st, k.Code[st].B)
	if !addr.OK || addr.Gid != 4 || addr.SymC != 1 {
		t.Errorf("store address affine = %v, want sym+4*gid", addr)
	}
}

func TestDivergenceAndInfluence(t *testing.T) {
	k, f := analyze(t, `
__kernel void k(__global int *out, int n) {
    int lid = get_local_id(0);
    int u = n + 1;
    if (lid < 4) { out[lid] = u; }
    if (u > 2) { out[99] = 1; }
}`)
	st0 := storeIndex(k, 0) // under divergent guard
	st1 := storeIndex(k, 1) // under uniform guard
	if !f.DivergentControl(st0) {
		t.Errorf("store under lid guard should be divergence-influenced")
	}
	if f.DivergentControl(st1) {
		t.Errorf("store under uniform guard should not be divergence-influenced")
	}
	if f.DivergentBefore(st0, ir.BankI, k.Code[st0].A) {
		// u = n + 1 is uniform even though it is stored under
		// divergent control (the value, not the store, is queried).
		t.Errorf("uniform value reported divergent")
	}
}

func TestMaySharePhase(t *testing.T) {
	k, f := analyze(t, `
__kernel void k(__global int *out) {
    __local int tile[16];
    int lid = get_local_id(0);
    tile[lid] = lid;
    barrier(CLK_LOCAL_MEM_FENCE);
    out[lid] = tile[15 - lid];
}`)
	w := storeIndex(k, 0)
	var rd int = -1
	for i, in := range k.Code {
		if in.Op == ir.LoadI && i > w {
			rd = i
			break
		}
	}
	if w < 0 || rd < 0 {
		t.Fatal("access sites not found")
	}
	if f.MaySharePhase(w, rd) {
		t.Errorf("write and post-barrier read should not share a phase")
	}
	if !f.MaySharePhase(w, w) {
		t.Errorf("an access always shares a phase with itself")
	}
}

func TestPhaseDivergedArms(t *testing.T) {
	// Different work-items may take different arms of a divergent
	// branch within the same barrier interval.
	k, f := analyze(t, `
__kernel void k(__global int *out) {
    __local int tile[16];
    int lid = get_local_id(0);
    if (lid < 8) { tile[0] = 1; } else { tile[1] = 2; }
    out[lid] = tile[0];
}`)
	a := storeIndex(k, 0)
	b := storeIndex(k, 1)
	if a < 0 || b < 0 {
		t.Fatal("stores not found")
	}
	if !f.MaySharePhase(a, b) {
		t.Errorf("if/else arms share the enclosing barrier interval")
	}
}

func TestLoopTripCount(t *testing.T) {
	_, f := analyze(t, `
__kernel void k(__global int *out) {
    int s = 0;
    for (int i = 0; i < 16; i++) s += i;
    for (int j = 0; j <= 8; j += 2) s += j;
    out[0] = s;
}`)
	loops := f.Loops()
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(loops))
	}
	if loops[0].Trip != 16 {
		t.Errorf("first loop trip = %d, want 16", loops[0].Trip)
	}
	if loops[1].Trip != 5 {
		t.Errorf("second loop trip = %d, want 5", loops[1].Trip)
	}
}

func TestGuardEquivalence(t *testing.T) {
	// Two separate `if (gid == n)` statements must produce the same
	// canonical uniqueness constraint — the source of a pinned race
	// false positive in the syntax-level analyzer.
	k, f := analyze(t, `
__kernel void k(__global int *out, int n) {
    int gid = get_global_id(0);
    if (gid == n) { out[0] = 1; }
    if (gid == n) { out[0] = 2; }
}`)
	s0, s1 := storeIndex(k, 0), storeIndex(k, 1)
	g0, op0 := f.GuardsFor(f.G.BlockOf(s0).ID)
	g1, op1 := f.GuardsFor(f.G.BlockOf(s1).ID)
	if op0 || op1 {
		t.Fatalf("gid==n guards should not be opaque")
	}
	if len(g0) != 1 || len(g1) != 1 {
		t.Fatalf("guard counts = %d, %d, want 1, 1", len(g0), len(g1))
	}
	if !g0[0].Unique() {
		t.Errorf("gid==n is a uniqueness guard")
	}
	if g0[0] != g1[0] {
		t.Errorf("identical guards not canonicalized: %+v vs %+v", g0[0], g1[0])
	}
}

func TestGuardEvalLid(t *testing.T) {
	k, f := analyze(t, `
__kernel void k(__global int *out) {
    int lid = get_local_id(0);
    if (lid < 4) { out[lid] = 1; }
}`)
	st := storeIndex(k, 0)
	cons, opaque := f.GuardsFor(f.G.BlockOf(st).ID)
	if opaque || len(cons) != 1 {
		t.Fatalf("guards = %v opaque=%v, want one transparent constraint", cons, opaque)
	}
	for l := int64(0); l < 8; l++ {
		holds, ok := cons[0].EvalLid(l)
		if !ok {
			t.Fatalf("lid constraint should evaluate")
		}
		if holds != (l < 4) {
			t.Errorf("lid=%d: holds=%v, want %v", l, holds, l < 4)
		}
	}
}

func TestDefUseChains(t *testing.T) {
	k, f := analyze(t, `
__kernel void k(__global int *out, int n) {
    int x = 1;
    if (n > 0) { x = 2; }
    out[0] = x;
}`)
	st := storeIndex(k, 0)
	du := f.DefUse()
	defs := du.DefsAt(st, ir.RegRef{Bank: ir.BankI, Slot: k.Code[st].A, Width: 1})
	if len(defs) != 2 {
		t.Fatalf("x at the store has %d reaching defs (%v), want 2", len(defs), defs)
	}
	for _, d := range defs {
		uses := du.UsesOf(d)
		found := false
		for _, u := range uses {
			if u == st {
				found = true
			}
		}
		if !found {
			t.Errorf("def %d does not list the store %d among uses %v", d, st, uses)
		}
	}
}

func TestInterproceduralAffine(t *testing.T) {
	// Helpers are inlined during lowering; facts must flow through.
	k, f := analyze(t, `
int idx(int base) { return base * 2; }
__kernel void k(__global int *out) {
    int lid = get_local_id(0);
    out[idx(lid)] = 1;
}`)
	st := storeIndex(k, 0)
	addr := f.AffineBefore(st, k.Code[st].B)
	if !addr.OK || addr.Gid != 0 || addr.Lid != 8 {
		t.Errorf("address affine through helper = %v, want sym+8*lid", addr)
	}
}
