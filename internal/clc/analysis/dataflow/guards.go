package dataflow

import (
	"maligo/internal/clc/ir"
)

// Guard extraction: which branch conditions are known to hold at a
// block. A constraint is expressed as an affine difference compared
// against zero; because the difference is over execution invariants
// (lid, gid, constants, parameter entry values), a condition observed
// true on entry to a region stays true for that work-item.

// Rel is the relation of a Constraint's Diff to zero.
type Rel int

// Constraint relations.
const (
	RelLT Rel = iota // Diff < 0
	RelGE            // Diff >= 0
	RelEQ            // Diff == 0
	RelNE            // Diff != 0
)

// Constraint is one branch condition known to hold: Diff Rel 0.
type Constraint struct {
	Diff Affine
	Rel  Rel
}

// EvalLid evaluates the constraint for a given local id. ok is false
// when the constraint involves gid or symbolic terms and therefore
// cannot be decided per work-item.
func (c Constraint) EvalLid(l int64) (holds, ok bool) {
	v, ok := c.Diff.AtLid(l)
	if !ok {
		return false, false
	}
	switch c.Rel {
	case RelLT:
		return v < 0, true
	case RelGE:
		return v >= 0, true
	case RelEQ:
		return v == 0, true
	default:
		return v != 0, true
	}
}

// Unique reports whether the constraint can hold for at most one
// work-item of any group: an equality whose difference changes with
// the local id (gid = group base + lid, so the per-item coefficient is
// Lid+Gid).
func (c Constraint) Unique() bool {
	return c.Rel == RelEQ && c.Diff.Lid+c.Diff.Gid != 0
}

// canon returns a sign-normalized copy so that logically identical
// constraints compare equal (x==y and y==x lower to opposite
// differences).
func (c Constraint) canon() Constraint {
	if c.Rel != RelEQ && c.Rel != RelNE {
		return c
	}
	d := c.Diff
	neg := false
	switch {
	case d.Lid+d.Gid != 0:
		neg = d.Lid+d.Gid < 0
	case d.SymC != 0:
		neg = d.SymC < 0
	default:
		neg = d.C < 0
	}
	if neg {
		c.Diff = d.Scale(-1)
	}
	return c
}

// GuardsFor returns the constraints known to hold on every execution
// of block b, considering only branches with divergent conditions
// (uniform branches cannot separate work-items of one group). opaque
// is true when some controlling divergent branch could not be
// expressed as a constraint — callers that enumerate work-item pairs
// must then treat the block as unanalyzable rather than unguarded.
func (f *Facts) GuardsFor(b int) (cons []Constraint, opaque bool) {
	g := f.G
	if !g.Reachable(b) {
		return nil, false
	}
	// Walk the dominator chain of b. For each dominator S whose
	// immediate dominator P ends in a conditional branch with S as one
	// arm, the branch condition (with the polarity of that arm) holds
	// on entry to S — provided every other edge into S is a back edge
	// (a pred dominated by S), so the first entry always came from P.
	for s := b; s > 0; s = g.Idom[s] {
		p := g.Idom[s]
		if p < 0 {
			break
		}
		blk := g.Blocks[p]
		term := blk.Terminator()
		if term < 0 {
			continue
		}
		t := &g.Kernel.Code[term]
		if t.Op != ir.JmpIf && t.Op != ir.JmpIfZ {
			continue
		}
		// Which arm is S? Succs[0] is the jump target.
		var asTrue, seen bool
		arms := 0
		for si, sc := range blk.Succs {
			if sc == s {
				arms++
				seen = true
				asTrue = (si == 0) == (t.Op == ir.JmpIf)
			}
		}
		if !seen || arms != 1 {
			continue
		}
		entryOK := true
		for _, pr := range g.Blocks[s].Preds {
			if pr != p && !g.Dominates(s, pr) {
				entryOK = false
			}
		}
		if !entryOK {
			continue
		}
		if !f.CondDivergent(term) {
			continue // uniform: all work-items agree, no per-item info
		}
		c, ok := f.branchConstraint(p, term, asTrue)
		if !ok {
			opaque = true
			continue
		}
		cons = append(cons, c.canon())
	}
	return cons, opaque
}

// branchConstraint turns the branch condition at instruction term
// (with the given polarity) into an affine constraint.
func (f *Facts) branchConstraint(block, term int, condTrue bool) (Constraint, bool) {
	code := f.G.Kernel.Code
	def := condDef(code, f.G.Blocks[block], term)
	if def >= 0 {
		d := &code[def]
		switch d.Op {
		case ir.CmpLtI, ir.CmpLeI, ir.CmpEqI, ir.CmpNeI:
			if d.Width > 1 {
				break
			}
			e := f.envBefore(def)
			if e == nil {
				break
			}
			diff := e.affine(d.B).Sub(e.affine(d.C))
			if !diff.OK {
				return Constraint{}, false
			}
			var rel Rel
			switch d.Op {
			case ir.CmpLtI: // b - c < 0
				rel = RelLT
				if !condTrue {
					rel = RelGE
				}
			case ir.CmpLeI: // b - c <= 0  <=>  b - c - 1 < 0
				diff = diff.Add(AffineConst(-1))
				if !diff.OK {
					return Constraint{}, false
				}
				rel = RelLT
				if !condTrue {
					rel = RelGE
				}
			case ir.CmpEqI:
				rel = RelEQ
				if !condTrue {
					rel = RelNE
				}
			case ir.CmpNeI:
				rel = RelNE
				if !condTrue {
					rel = RelEQ
				}
			}
			return Constraint{Diff: diff, Rel: rel}, true
		}
	}
	// Bare truth test of an affine value: cond != 0 / cond == 0.
	e := f.envBefore(term)
	if e == nil {
		return Constraint{}, false
	}
	a := e.affine(code[term].B)
	if !a.OK {
		return Constraint{}, false
	}
	rel := RelNE
	if !condTrue {
		rel = RelEQ
	}
	return Constraint{Diff: a, Rel: rel}, true
}
