package dataflow

import (
	"fmt"
	"strings"
	"testing"

	"maligo/internal/clc"
	"maligo/internal/clc/ir"
)

// FuzzSolver throws compiler-accepted kernels at the dataflow engine
// and checks the solver's structural invariants on whatever comes out:
// it never panics, stored interval facts are never empty (Lo <= Hi),
// every reachable instruction sits in exactly one block, the fixpoint
// is deterministic (two runs agree fact for fact), and facts are
// monotone along straight-line flow — transferring the environment
// before an instruction yields exactly the environment the solver
// reports after it.
func FuzzSolver(f *testing.F) {
	f.Add(`__kernel void k(__global float* p) { p[get_global_id(0)] = 0.0f; }`)
	f.Add(`__kernel void k(__global int* p, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) s += i;
    p[0] = s;
}`)
	f.Add(`__kernel void k(__local int* l) {
    int i = get_local_id(0);
    if (i < 2) { l[i] = i; }
    barrier(1);
    l[0] = l[i];
}`)
	f.Add(`int h(int x) { return x - 3; }
__kernel void k(__global int* p) {
    for (int i = 0; i <= 8; i++) { p[h(i)] = i; }
}`)

	f.Fuzz(func(t *testing.T, src string) {
		prog, err := clc.Compile("fuzz.cl", src, "")
		if err != nil {
			return // only compiler-accepted inputs are in scope
		}
		for _, name := range prog.KernelNames() {
			k := prog.Kernels[name]
			facts := Analyze(k)
			checkInvariants(t, k, facts)
			if d1, d2 := dumpFacts(k, facts), dumpFacts(k, Analyze(k)); d1 != d2 {
				t.Fatalf("%s: solver nondeterministic:\n%s\n--- vs ---\n%s", name, d1, d2)
			}
		}
	})
}

func checkInvariants(t *testing.T, k *ir.Kernel, f *Facts) {
	t.Helper()
	owner := make([]int, len(k.Code))
	for i := range owner {
		owner[i] = -1
	}
	for _, b := range f.G.Blocks {
		if b.Start > b.End || b.Start < 0 || b.End > len(k.Code) {
			t.Fatalf("block %d spans [%d,%d) outside code of %d instrs", b.ID, b.Start, b.End, len(k.Code))
		}
		for i := b.Start; i < b.End; i++ {
			if owner[i] != -1 {
				t.Fatalf("instr %d in blocks %d and %d", i, owner[i], b.ID)
			}
			owner[i] = b.ID
		}
	}
	for i := range k.Code {
		if owner[i] == -1 {
			t.Fatalf("instr %d in no block", i)
		}
		if b := f.G.BlockOf(i); b == nil || b.ID != owner[i] {
			t.Fatalf("BlockOf(%d) disagrees with block spans", i)
		}
	}

	f.Each(func(i int, e *Env) {
		in := &k.Code[i]
		for _, slot := range []int32{in.A, in.B, in.C} {
			if slot < 0 {
				continue
			}
			if iv := e.Interval(slot); iv.Empty() {
				t.Fatalf("instr %d slot %d: stored empty interval %v", i, slot, iv)
			}
			// The point-query path (replay from the block's in-env) and
			// the Each path (incremental transfer) must agree exactly —
			// the solver reached a fixpoint, not a flickering state.
			if q := f.IntervalBefore(i, slot); q != e.Interval(slot) {
				t.Fatalf("instr %d slot %d: IntervalBefore %v != Each view %v", i, slot, q, e.Interval(slot))
			}
			if q := f.AffineBefore(i, slot); q != e.Affine(slot) {
				t.Fatalf("instr %d slot %d: AffineBefore %+v != Each view %+v", i, slot, q, e.Affine(slot))
			}
			if q := f.DivergentBefore(i, ir.BankI, slot); q != e.Divergent(ir.BankI, slot) {
				t.Fatalf("instr %d slot %d: DivergentBefore %v != Each view %v", i, slot, q, e.Divergent(ir.BankI, slot))
			}
			if after := f.IntervalAfter(i, slot); after.Empty() {
				t.Fatalf("instr %d slot %d: IntervalAfter empty %v", i, slot, after)
			}
		}
		if f.DivergentControl(i) != e.DivergentControl() {
			t.Fatalf("instr %d: DivergentControl query disagrees with Each view", i)
		}
	})

	for _, l := range f.Loops() {
		if l.Trip < -1 {
			t.Fatalf("loop at block %d: trip %d < -1", l.Header, l.Trip)
		}
		if !l.Blocks[l.Header] || !l.Blocks[l.Latch] {
			t.Fatalf("loop at block %d: header/latch outside body", l.Header)
		}
	}
}

// dumpFacts renders every queryable fact to a canonical string.
func dumpFacts(k *ir.Kernel, f *Facts) string {
	var sb strings.Builder
	f.Each(func(i int, e *Env) {
		in := &k.Code[i]
		fmt.Fprintf(&sb, "%d infl=%v", i, e.DivergentControl())
		for _, slot := range []int32{in.A, in.B, in.C} {
			if slot < 0 {
				continue
			}
			fmt.Fprintf(&sb, " %d:%v/%+v/%v", slot, e.Interval(slot), e.Affine(slot), e.Divergent(ir.BankI, slot))
		}
		sb.WriteByte('\n')
	})
	return sb.String()
}
