package dataflow

import (
	"fmt"
	"math"

	"maligo/internal/clc/types"
)

// NegInf and PosInf are the sentinel bounds of unbounded intervals.
const (
	NegInf = math.MinInt64
	PosInf = math.MaxInt64
)

// Interval is an inclusive signed value range. The full range acts as
// "unknown" (top); Lo > Hi never occurs in stored facts — refinement
// that produces an empty range marks the edge unexecutable instead.
type Interval struct {
	Lo, Hi int64
}

// Top is the unbounded interval.
var Top = Interval{NegInf, PosInf}

// IsTop reports whether the interval carries no information.
func (v Interval) IsTop() bool { return v.Lo == NegInf && v.Hi == PosInf }

// Const returns the value when the interval pins exactly one.
func (v Interval) Const() (int64, bool) { return v.Lo, v.Lo == v.Hi }

// Empty reports an unsatisfiable range (only produced transiently by
// branch refinement).
func (v Interval) Empty() bool { return v.Lo > v.Hi }

// Contains reports whether x lies in the range.
func (v Interval) Contains(x int64) bool { return v.Lo <= x && x <= v.Hi }

// Hull returns the smallest interval covering both.
func (v Interval) Hull(o Interval) Interval {
	if o.Lo < v.Lo {
		v.Lo = o.Lo
	}
	if o.Hi > v.Hi {
		v.Hi = o.Hi
	}
	return v
}

func (v Interval) String() string {
	lo, hi := "-inf", "+inf"
	if v.Lo != NegInf {
		lo = fmt.Sprint(v.Lo)
	}
	if v.Hi != PosInf {
		hi = fmt.Sprint(v.Hi)
	}
	return "[" + lo + "," + hi + "]"
}

// addSat adds with saturation at the infinities.
func addSat(a, b int64) int64 {
	if a == NegInf || b == NegInf {
		return NegInf
	}
	if a == PosInf || b == PosInf {
		return PosInf
	}
	r := a + b
	if b > 0 && r < a {
		return PosInf
	}
	if b < 0 && r > a {
		return NegInf
	}
	return r
}

// mulSat multiplies with saturation at the infinities.
func mulSat(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	neg := (a < 0) != (b < 0)
	if a == NegInf || a == PosInf || b == NegInf || b == PosInf ||
		(a == math.MinInt64 && b == -1) || (b == math.MinInt64 && a == -1) {
		if neg {
			return NegInf
		}
		return PosInf
	}
	r := a * b
	if r/b != a {
		if neg {
			return NegInf
		}
		return PosInf
	}
	return r
}

// Add returns the interval sum.
func (v Interval) Add(o Interval) Interval {
	return Interval{addSat(v.Lo, o.Lo), addSat(v.Hi, o.Hi)}
}

// Neg returns the interval of -x.
func (v Interval) Neg() Interval {
	return Interval{mulSat(v.Hi, -1), mulSat(v.Lo, -1)}
}

// Sub returns the interval difference.
func (v Interval) Sub(o Interval) Interval { return v.Add(o.Neg()) }

// Mul returns the interval product.
func (v Interval) Mul(o Interval) Interval {
	c := [4]int64{
		mulSat(v.Lo, o.Lo), mulSat(v.Lo, o.Hi),
		mulSat(v.Hi, o.Lo), mulSat(v.Hi, o.Hi),
	}
	r := Interval{c[0], c[0]}
	for _, x := range c[1:] {
		if x < r.Lo {
			r.Lo = x
		}
		if x > r.Hi {
			r.Hi = x
		}
	}
	return r
}

// baseRange returns the representable range of an integer base type.
// ok is false for long/ulong (and non-integer bases), whose storage
// slots span the whole int64 range.
func baseRange(b types.Base) (Interval, bool) {
	switch b {
	case types.Bool:
		return Interval{0, 1}, true
	case types.Char:
		return Interval{-128, 127}, true
	case types.UChar:
		return Interval{0, 255}, true
	case types.Short:
		return Interval{-32768, 32767}, true
	case types.UShort:
		return Interval{0, 65535}, true
	case types.Int:
		return Interval{math.MinInt32, math.MaxInt32}, true
	case types.UInt:
		return Interval{0, math.MaxUint32}, true
	}
	return Top, false
}

// clampBase widens a computed interval to the base type's full range
// when the computation may wrap (the VM wraps results to the base
// type, so the post-wrap value always lies within the base range).
func clampBase(v Interval, b types.Base) Interval {
	r, ok := baseRange(b)
	if !ok {
		if v.Empty() {
			return Top
		}
		return v
	}
	if v.Lo >= r.Lo && v.Hi <= r.Hi {
		return v
	}
	return r
}

// NoSym marks an Affine with no symbolic term.
const NoSym = int32(-1)

// Affine is a symbolic value of the form
//
//	C + Lid*get_local_id(0) + Gid*get_global_id(0) + SymC*sym
//
// where sym is the kernel-entry value of a parameter register slot
// (Sym). Base addresses of __local/__private arrays are encoded
// constants, so they fold into C; __global buffer bases appear as Sym
// terms. OK=false is top (not an affine form).
type Affine struct {
	OK   bool
	C    int64
	Lid  int64
	Gid  int64
	Sym  int32
	SymC int64
}

// AffineConst returns the affine form of a constant.
func AffineConst(c int64) Affine { return Affine{OK: true, C: c, Sym: NoSym} }

// IsConst reports a pure constant and its value.
func (a Affine) IsConst() (int64, bool) {
	return a.C, a.OK && a.Lid == 0 && a.Gid == 0 && a.SymC == 0
}

// norm clears a dangling Sym when its coefficient cancelled.
func (a Affine) norm() Affine {
	if a.SymC == 0 {
		a.Sym = NoSym
	}
	if !a.OK {
		return Affine{}
	}
	return a
}

func addOv(a, b int64) (int64, bool) {
	r := a + b
	if (b > 0 && r < a) || (b < 0 && r > a) {
		return 0, false
	}
	return r, true
}

func mulOv(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	r := a * b
	if (a == math.MinInt64 && b == -1) || (b == math.MinInt64 && a == -1) || r/b != a {
		return 0, false
	}
	return r, true
}

// Add returns a+o, or top when the forms don't combine.
func (a Affine) Add(o Affine) Affine {
	if !a.OK || !o.OK {
		return Affine{}
	}
	r := Affine{OK: true, Sym: a.Sym, SymC: a.SymC}
	var ok bool
	if r.C, ok = addOv(a.C, o.C); !ok {
		return Affine{}
	}
	if r.Lid, ok = addOv(a.Lid, o.Lid); !ok {
		return Affine{}
	}
	if r.Gid, ok = addOv(a.Gid, o.Gid); !ok {
		return Affine{}
	}
	switch {
	case o.SymC == 0:
	case a.SymC == 0:
		r.Sym, r.SymC = o.Sym, o.SymC
	case a.Sym == o.Sym:
		if r.SymC, ok = addOv(a.SymC, o.SymC); !ok {
			return Affine{}
		}
	default: // two distinct symbols don't fit the form
		return Affine{}
	}
	return r.norm()
}

// Scale returns a*k, or top on coefficient overflow.
func (a Affine) Scale(k int64) Affine {
	if !a.OK {
		return Affine{}
	}
	r := Affine{OK: true, Sym: a.Sym}
	var ok bool
	if r.C, ok = mulOv(a.C, k); !ok {
		return Affine{}
	}
	if r.Lid, ok = mulOv(a.Lid, k); !ok {
		return Affine{}
	}
	if r.Gid, ok = mulOv(a.Gid, k); !ok {
		return Affine{}
	}
	if r.SymC, ok = mulOv(a.SymC, k); !ok {
		return Affine{}
	}
	return r.norm()
}

// Sub returns a-o.
func (a Affine) Sub(o Affine) Affine { return a.Add(o.Scale(-1)) }

// Uniform reports whether the value is the same for every work-item of
// a work-group (no lid term; gid = group base + lid varies per item).
func (a Affine) Uniform() bool { return a.OK && a.Lid == 0 && a.Gid == 0 }

// AtLid evaluates the form for a given local id. Valid only when the
// form has no gid or symbolic term.
func (a Affine) AtLid(l int64) (int64, bool) {
	if !a.OK || a.Gid != 0 || a.SymC != 0 {
		return 0, false
	}
	return a.C + a.Lid*l, true
}

func (a Affine) String() string {
	if !a.OK {
		return "top"
	}
	s := fmt.Sprintf("%d", a.C)
	if a.Lid != 0 {
		s += fmt.Sprintf("%+d*lid", a.Lid)
	}
	if a.Gid != 0 {
		s += fmt.Sprintf("%+d*gid", a.Gid)
	}
	if a.SymC != 0 {
		s += fmt.Sprintf("%+d*sym(r%d)", a.SymC, a.Sym)
	}
	return s
}
