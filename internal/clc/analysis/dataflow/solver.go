package dataflow

import (
	"maligo/internal/clc/ir"
)

// widenAfter is the number of joins into one block before interval
// bounds are widened to infinity, bounding fixpoint iteration.
const widenAfter = 16

// Facts is the analysis result for one kernel: per-block entry
// environments, edge executability, and divergence-influenced blocks,
// with query helpers that replay the transfer function inside a block.
type Facts struct {
	G *Graph

	in   []*env // per block; nil = never reached
	exec map[[2]int]bool
	infl []bool // block executes under divergent control

	du   *DefUse
	segs *segments
}

// Analyze runs the dataflow engine over a kernel.
func Analyze(k *ir.Kernel) *Facts {
	g := BuildGraph(k)
	f := &Facts{G: g, infl: make([]bool, len(g.Blocks))}
	// Divergence-influenced blocks force their definitions divergent,
	// which can make more branch conditions divergent; iterate to a
	// fixpoint (monotone, bounded by the block count).
	for round := 0; ; round++ {
		f.in, f.exec = solve(g, f.infl)
		next := f.influenced()
		grew := false
		for b, v := range next {
			if v && !f.infl[b] {
				f.infl[b] = true
				grew = true
			}
		}
		if !grew || round > len(g.Blocks) {
			break
		}
	}
	return f
}

// solve runs the combined worklist iteration and returns per-block
// entry environments plus edge executability keyed by (block, succ
// index).
func solve(g *Graph, forced []bool) ([]*env, map[[2]int]bool) {
	in := make([]*env, len(g.Blocks))
	exec := map[[2]int]bool{}
	joins := make([]int, len(g.Blocks))

	in[0] = entryEnv(g.Kernel)
	work := []int{0}
	queued := make([]bool, len(g.Blocks))
	queued[0] = true
	steps := 0
	maxSteps := (len(g.Blocks) + 1) * 256

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		steps++
		forceWiden := steps > maxSteps

		outs, ex := flowBlock(g, b, in[b], forced[b])
		blk := g.Blocks[b]
		for si, s := range blk.Succs {
			key := [2]int{b, si}
			if !ex[si] {
				// Keep any earlier true: executability is monotone.
				if !exec[key] {
					exec[key] = false
				}
				continue
			}
			exec[key] = true
			changed := false
			if in[s] == nil {
				in[s] = outs[si].clone()
				changed = true
			} else {
				joins[s]++
				changed = joinInto(in[s], outs[si], joins[s] > widenAfter || forceWiden)
			}
			if changed && !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return in, exec
}

// flowBlock transfers an entry environment through a block and splits
// it per outgoing edge, applying branch refinement. Returns one env
// per successor and whether each edge is executable.
func flowBlock(g *Graph, b int, entry *env, forced bool) ([]*env, []bool) {
	blk := g.Blocks[b]
	code := g.Kernel.Code
	e := entry.clone()
	term := blk.Terminator()
	for i := blk.Start; i < blk.End; i++ {
		if i == term {
			break
		}
		transfer(e, &code[i], forced)
	}

	nsucc := len(blk.Succs)
	outs := make([]*env, nsucc)
	ex := make([]bool, nsucc)
	if term < 0 || nsucc == 0 {
		for i := range outs {
			outs[i], ex[i] = e, true
		}
		return outs, ex
	}
	t := &code[term]
	switch t.Op {
	case ir.JmpIf, ir.JmpIfZ:
		cond := e.interval(t.B)
		mayNonzero := cond.Lo != 0 || cond.Hi != 0
		mayZero := cond.Contains(0)
		// Successor 0 is the jump target, successor 1 the fallthrough.
		// For JmpIf the target is the nonzero ("true") edge; for JmpIfZ
		// it is the zero ("false") edge.
		condTrue := [2]bool{t.Op == ir.JmpIf, t.Op != ir.JmpIf}
		for si := 0; si < nsucc; si++ {
			if condTrue[si] {
				ex[si] = mayNonzero
			} else {
				ex[si] = mayZero
			}
			out := e.clone()
			if refineEdge(g, blk, term, out, condTrue[si]) {
				ex[si] = false
			}
			outs[si] = out
		}
	default:
		transfer(e, t, forced)
		for i := range outs {
			outs[i], ex[i] = e, true
		}
	}
	return outs, ex
}

// refineEdge narrows the edge environment under the branch condition
// (cond != 0 when condTrue). Returns true when the refinement is
// unsatisfiable, i.e. the edge cannot execute.
func refineEdge(g *Graph, blk *Block, term int, e *env, condTrue bool) bool {
	code := g.Kernel.Code
	cond := code[term].B

	// The condition register itself.
	cv := e.interval(cond)
	if condTrue {
		if cv.Lo == 0 {
			cv.Lo = 1
		}
		if cv.Hi == 0 {
			cv.Hi = -1
		}
	} else {
		cv = Interval{0, 0}
	}
	if cv.Empty() {
		return true
	}
	e.setIV(cond, cv)

	// If the condition was produced by an integer compare whose
	// operands survive to the branch, narrow the operands too.
	def := condDef(code, blk, term)
	if def < 0 {
		return false
	}
	d := &code[def]
	switch d.Op {
	case ir.CmpLtI, ir.CmpLeI, ir.CmpEqI, ir.CmpNeI:
	default:
		return false
	}
	if d.Width > 1 {
		return false
	}
	if !d.Base.IsSigned() {
		// Unsigned compares only refine when both sides are known
		// nonnegative (otherwise slot values don't order like int64).
		if e.interval(d.B).Lo < 0 || e.interval(d.C).Lo < 0 {
			return false
		}
	}
	b, c := e.interval(d.B), e.interval(d.C)
	op := d.Op
	truth := condTrue
	for {
		switch {
		case op == ir.CmpLtI && truth:
			b.Hi = min64(b.Hi, addSat(c.Hi, -1))
			c.Lo = max64(c.Lo, addSat(b.Lo, 1))
		case op == ir.CmpLtI: // !(b < c)  =>  b >= c
			b.Lo = max64(b.Lo, c.Lo)
			c.Hi = min64(c.Hi, b.Hi)
		case op == ir.CmpLeI && truth:
			b.Hi = min64(b.Hi, c.Hi)
			c.Lo = max64(c.Lo, b.Lo)
		case op == ir.CmpLeI: // b > c
			b.Lo = max64(b.Lo, addSat(c.Lo, 1))
			c.Hi = min64(c.Hi, addSat(b.Hi, -1))
		case op == ir.CmpEqI && truth:
			b.Lo, b.Hi = max64(b.Lo, c.Lo), min64(b.Hi, c.Hi)
			c = b
		case op == ir.CmpEqI: // b != c: trim constant boundaries
			if k, ok := c.Const(); ok {
				if b.Lo == k {
					b.Lo = addSat(k, 1)
				}
				if b.Hi == k {
					b.Hi = addSat(k, -1)
				}
			}
			if k, ok := b.Const(); ok {
				if c.Lo == k {
					c.Lo = addSat(k, 1)
				}
				if c.Hi == k {
					c.Hi = addSat(k, -1)
				}
			}
		case op == ir.CmpNeI:
			op, truth = ir.CmpEqI, !truth
			continue
		}
		break
	}
	if b.Empty() || c.Empty() {
		return true
	}
	e.setIV(d.B, b)
	e.setIV(d.C, c)
	return false
}

// condDef locates the last in-block definition of the branch condition
// register before the terminator, provided the compared operands are
// not clobbered between the definition and the branch.
func condDef(code []ir.Instr, blk *Block, term int) int {
	cond := ir.RegRef{Bank: ir.BankI, Slot: code[term].B, Width: 1}
	def := -1
	for i := term - 1; i >= blk.Start; i-- {
		if d, ok := ir.Def(&code[i]); ok && d.Overlaps(cond) {
			def = i
			break
		}
	}
	if def < 0 {
		return -1
	}
	d := &code[def]
	ops := []ir.RegRef{
		{Bank: ir.BankI, Slot: d.B, Width: 1},
		{Bank: ir.BankI, Slot: d.C, Width: 1},
	}
	for i := def + 1; i < term; i++ {
		if w, ok := ir.Def(&code[i]); ok {
			for _, o := range ops {
				if w.Overlaps(o) {
					return -1
				}
			}
		}
	}
	return def
}

// influenced returns the divergence-influence set: for every branch
// with a divergent condition and both edges live, the blocks on paths
// from the branch to its immediate postdominator.
func (f *Facts) influenced() []bool {
	g := f.G
	out := make([]bool, len(g.Blocks))
	for _, b := range g.RPO {
		blk := g.Blocks[b]
		term := blk.Terminator()
		if term < 0 {
			continue
		}
		t := &g.Kernel.Code[term]
		if t.Op != ir.JmpIf && t.Op != ir.JmpIfZ {
			continue
		}
		if !f.exec[[2]int{b, 0}] || !f.exec[[2]int{b, 1}] {
			continue
		}
		if !f.CondDivergent(term) {
			continue
		}
		stop := g.PostIdom[b]
		var mark func(x int)
		seen := make([]bool, len(g.Blocks))
		mark = func(x int) {
			if x == stop || seen[x] {
				return
			}
			seen[x] = true
			out[x] = true
			for _, s := range g.Blocks[x].Succs {
				mark(s)
			}
		}
		for _, s := range blk.Succs {
			mark(s)
		}
	}
	return out
}

// EnvBefore returns the environment immediately before instruction i.
// The result is a fresh snapshot the caller may keep. Returns nil when
// the instruction is unreachable.
func (f *Facts) envBefore(i int) *env {
	blk := f.G.BlockOf(i)
	if f.in[blk.ID] == nil {
		return nil
	}
	e := f.in[blk.ID].clone()
	for j := blk.Start; j < i; j++ {
		transfer(e, &f.G.Kernel.Code[j], f.infl[blk.ID])
	}
	return e
}

// Reachable reports whether instruction i can execute.
func (f *Facts) Reachable(i int) bool {
	return f.in[f.G.BlockOf(i).ID] != nil
}

// IntervalBefore returns the value range of an integer slot just
// before instruction i.
func (f *Facts) IntervalBefore(i int, slot int32) Interval {
	e := f.envBefore(i)
	if e == nil {
		return Top
	}
	return e.interval(slot)
}

// IntervalAfter returns the value range of an integer slot just after
// instruction i executes.
func (f *Facts) IntervalAfter(i int, slot int32) Interval {
	e := f.envBefore(i)
	if e == nil {
		return Top
	}
	transfer(e, &f.G.Kernel.Code[i], f.infl[f.G.BlockOf(i).ID])
	return e.interval(slot)
}

// AffineBefore returns the affine form of an integer slot just before
// instruction i.
func (f *Facts) AffineBefore(i int, slot int32) Affine {
	e := f.envBefore(i)
	if e == nil {
		return Affine{}
	}
	return e.affine(slot)
}

// DivergentBefore reports whether a slot's value may differ between
// work-items of one group just before instruction i.
func (f *Facts) DivergentBefore(i int, bank int, slot int32) bool {
	e := f.envBefore(i)
	if e == nil {
		return false
	}
	return e.divergent(bank, slot)
}

// CondDivergent reports whether the condition of the branch at
// instruction i is divergent.
func (f *Facts) CondDivergent(i int) bool {
	return f.DivergentBefore(i, ir.BankI, f.G.Kernel.Code[i].B)
}

// DivergentControl reports whether instruction i executes under
// divergent control flow (some work-items of a group may reach it
// while others do not).
func (f *Facts) DivergentControl(i int) bool {
	return f.infl[f.G.BlockOf(i).ID]
}

// Each visits every reachable instruction in code order along with the
// environment in force just before it. The environment is reused
// between callbacks: snapshot any fact you need to keep.
func (f *Facts) Each(fn func(i int, e *Env)) {
	code := f.G.Kernel.Code
	for _, blk := range f.G.Blocks {
		if blk.ID == f.G.Exit || f.in[blk.ID] == nil {
			continue
		}
		e := f.in[blk.ID].clone()
		view := &Env{e: e, infl: f.infl[blk.ID]}
		for i := blk.Start; i < blk.End; i++ {
			fn(i, view)
			transfer(e, &code[i], f.infl[blk.ID])
		}
	}
}

// Env is a read-only view of the dataflow state at one program point,
// as passed to Each callbacks.
type Env struct {
	e    *env
	infl bool
}

// Interval returns the value range of an integer slot.
func (v *Env) Interval(slot int32) Interval { return v.e.interval(slot) }

// Affine returns the affine form of an integer slot.
func (v *Env) Affine(slot int32) Affine { return v.e.affine(slot) }

// Divergent reports per-work-item divergence of a slot.
func (v *Env) Divergent(bank int, slot int32) bool { return v.e.divergent(bank, slot) }

// DivergentControl reports whether this point executes under divergent
// control flow.
func (v *Env) DivergentControl() bool { return v.infl }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
