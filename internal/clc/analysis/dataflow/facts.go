package dataflow

import (
	"maligo/internal/clc/builtin"
	"maligo/internal/clc/ir"
	"maligo/internal/clc/types"
)

// typeBool aliases the bool base for the conversion-normalization check.
const typeBool = types.Bool

// maxWorkItemID bounds work-item ids and sizes: the simulated platform
// (internal/cl) rejects NDRanges beyond int32, so query results always
// fit an int without wrapping.
const maxWorkItemID = int64(1)<<31 - 1

// env is the combined dataflow state at a program point: per-slot
// value intervals and affine forms for the integer bank, and per-slot
// divergence bits for both banks. Missing map entries mean top
// (interval/affine unknown, value uniform across the work-group).
type env struct {
	iv  map[int32]Interval
	af  map[int32]Affine
	dvI map[int32]bool
	dvF map[int32]bool
}

func newEnv() *env {
	return &env{
		iv:  map[int32]Interval{},
		af:  map[int32]Affine{},
		dvI: map[int32]bool{},
		dvF: map[int32]bool{},
	}
}

func (e *env) clone() *env {
	c := newEnv()
	for k, v := range e.iv { // maligo:allow maporder distinct keys fill the clone
		c.iv[k] = v
	}
	for k, v := range e.af { // maligo:allow maporder distinct keys fill the clone
		c.af[k] = v
	}
	for k := range e.dvI { // maligo:allow maporder distinct keys fill the clone
		c.dvI[k] = true
	}
	for k := range e.dvF { // maligo:allow maporder distinct keys fill the clone
		c.dvF[k] = true
	}
	return c
}

func (e *env) interval(slot int32) Interval {
	if v, ok := e.iv[slot]; ok {
		return v
	}
	return Top
}

func (e *env) affine(slot int32) Affine {
	if v, ok := e.af[slot]; ok {
		return v
	}
	return Affine{}
}

func (e *env) setIV(slot int32, v Interval) {
	if v.IsTop() {
		delete(e.iv, slot)
	} else {
		e.iv[slot] = v
	}
}

func (e *env) setAF(slot int32, a Affine) {
	if !a.OK {
		delete(e.af, slot)
	} else {
		e.af[slot] = a
	}
}

func (e *env) divergent(bank int, slot int32) bool {
	if bank == ir.BankI {
		return e.dvI[slot]
	}
	return e.dvF[slot]
}

func (e *env) setDiv(bank int, slot int32, d bool) {
	m := e.dvI
	if bank == ir.BankF {
		m = e.dvF
	}
	if d {
		m[slot] = true
	} else {
		delete(m, slot)
	}
}

// joinInto merges src into dst, returning whether dst changed. widen
// replaces growing interval bounds with infinities so loops converge.
func joinInto(dst, src *env, widen bool) bool {
	changed := false
	for k, v := range dst.iv { // maligo:allow maporder per-key joins commute
		s, ok := src.iv[k]
		if !ok {
			delete(dst.iv, k)
			changed = true
			continue
		}
		h := v.Hull(s)
		if widen && h != v {
			if h.Lo < v.Lo {
				h.Lo = NegInf
			}
			if h.Hi > v.Hi {
				h.Hi = PosInf
			}
		}
		if h != v {
			if h.IsTop() {
				delete(dst.iv, k)
			} else {
				dst.iv[k] = h
			}
			changed = true
		}
	}
	for k, v := range dst.af { // maligo:allow maporder per-key joins commute
		if s, ok := src.af[k]; !ok || s != v {
			delete(dst.af, k)
			changed = true
		}
	}
	for k := range src.dvI { // maligo:allow maporder per-key joins commute
		if !dst.dvI[k] {
			dst.dvI[k] = true
			changed = true
		}
	}
	for k := range src.dvF { // maligo:allow maporder per-key joins commute
		if !dst.dvF[k] {
			dst.dvF[k] = true
			changed = true
		}
	}
	return changed
}

// entryEnv seeds the kernel-entry state: every parameter is a uniform
// symbolic value clamped to its scalar range; everything else is top.
func entryEnv(k *ir.Kernel) *env {
	e := newEnv()
	for _, p := range k.Params {
		switch p.Class {
		case ir.ParamScalarI:
			e.setAF(p.Slot, Affine{OK: true, Sym: p.Slot, SymC: 1})
			if p.Type != nil {
				if r, ok := baseRange(p.Type.Base); ok {
					e.setIV(p.Slot, r)
				}
			}
		case ir.ParamGlobalPtr, ir.ParamLocalPtr:
			e.setAF(p.Slot, Affine{OK: true, Sym: p.Slot, SymC: 1})
		}
	}
	return e
}

// transfer applies one instruction to the environment in place.
// forceDiv marks definitions as divergent regardless of operands
// (used for blocks under divergent control).
func transfer(e *env, in *ir.Instr, forceDiv bool) {
	w := int32(in.Width)
	if w == 0 {
		w = 1
	}

	// Divergence: destination is divergent when any read register is,
	// when the instruction is an inherently divergent source, or when
	// it executes under divergent control.
	def, hasDef := ir.Def(in)
	if hasDef {
		d := forceDiv
		ir.Uses(in, func(r ir.RegRef) {
			for s := r.Slot; s < r.Slot+r.Width && !d; s++ {
				if e.divergent(r.Bank, s) {
					d = true
				}
			}
		})
		switch in.Op {
		case ir.LoadI, ir.LoadF, ir.AtomicOp:
			d = true
		case ir.CallB:
			id := builtin.ID(in.Imm)
			if id == builtin.GetLocalID || id == builtin.GetGlobalID {
				d = true
			}
		}
		// Value facts are computed below from the pre-write state;
		// divergence is written after them.
		defer func() {
			for s := def.Slot; s < def.Slot+def.Width; s++ {
				e.setDiv(def.Bank, s, d)
			}
		}()
	}

	// kill clears integer value facts for the written range; ops below
	// overwrite with better facts when they can.
	kill := func() {
		if hasDef && def.Bank == ir.BankI {
			for s := def.Slot; s < def.Slot+def.Width; s++ {
				delete(e.iv, s)
				delete(e.af, s)
			}
		}
	}

	bin := func(f func(b, c Interval) Interval, g func(b, c Affine) Affine) {
		for l := int32(0); l < w; l++ {
			nv := clampBase(f(e.interval(in.B+l), e.interval(in.C+l)), in.Base)
			na := Affine{}
			if g != nil {
				na = g(e.affine(in.B+l), e.affine(in.C+l))
			}
			e.setIV(in.A+l, nv)
			e.setAF(in.A+l, na)
		}
	}

	switch in.Op {
	case ir.ImmI:
		for l := int32(0); l < w; l++ {
			e.setIV(in.A+l, Interval{in.Imm, in.Imm})
			e.setAF(in.A+l, AffineConst(in.Imm))
		}
	case ir.MovI:
		for l := int32(0); l < w; l++ {
			e.setIV(in.A+l, e.interval(in.B+l))
			e.setAF(in.A+l, e.affine(in.B+l))
		}
	case ir.BcastI:
		for l := int32(0); l < w; l++ {
			e.setIV(in.A+l, e.interval(in.B))
			e.setAF(in.A+l, e.affine(in.B))
		}
	case ir.AddI:
		bin(Interval.Add, Affine.Add)
	case ir.SubI:
		bin(Interval.Sub, Affine.Sub)
	case ir.MulI:
		bin(Interval.Mul, func(b, c Affine) Affine {
			if k, ok := c.IsConst(); ok {
				return b.Scale(k)
			}
			if k, ok := b.IsConst(); ok {
				return c.Scale(k)
			}
			return Affine{}
		})
	case ir.DivI:
		bin(func(b, c Interval) Interval {
			if k, ok := c.Const(); ok && k > 0 && b.Lo != NegInf && b.Hi != PosInf {
				return Interval{b.Lo / k, b.Hi / k}
			}
			return Top
		}, nil)
	case ir.RemI:
		bin(func(b, c Interval) Interval {
			if k, ok := c.Const(); ok && k > 0 {
				if b.Lo >= 0 {
					hi := k - 1
					if b.Hi < hi {
						hi = b.Hi
					}
					return Interval{0, hi}
				}
				return Interval{-(k - 1), k - 1}
			}
			return Top
		}, nil)
	case ir.AndI:
		bin(func(b, c Interval) Interval {
			if k, ok := c.Const(); ok && k >= 0 && b.Lo >= 0 {
				return Interval{0, k}
			}
			if k, ok := b.Const(); ok && k >= 0 && c.Lo >= 0 {
				return Interval{0, k}
			}
			return Top
		}, nil)
	case ir.OrI, ir.XorI:
		bin(func(b, c Interval) Interval { return Top }, nil)
	case ir.ShlI:
		bin(func(b, c Interval) Interval {
			if k, ok := c.Const(); ok && k >= 0 && k < 63 {
				return b.Mul(Interval{1 << k, 1 << k})
			}
			return Top
		}, func(b, c Affine) Affine {
			if k, ok := c.IsConst(); ok && k >= 0 && k < 63 {
				return b.Scale(1 << k)
			}
			return Affine{}
		})
	case ir.ShrI:
		bin(func(b, c Interval) Interval {
			k, ok := c.Const()
			if !ok || k < 0 || k > 63 {
				return Top
			}
			if b.Lo >= 0 || in.Base.IsSigned() {
				lo, hi := b.Lo, b.Hi
				if lo != NegInf {
					lo >>= k
				}
				if hi != PosInf {
					hi >>= k
				}
				return Interval{lo, hi}
			}
			return Top
		}, nil)
	case ir.NegI:
		for l := int32(0); l < w; l++ {
			e.setIV(in.A+l, clampBase(e.interval(in.B+l).Neg(), in.Base))
			e.setAF(in.A+l, e.affine(in.B+l).Scale(-1))
		}
	case ir.NotI:
		for l := int32(0); l < w; l++ {
			v := e.interval(in.B + l)
			e.setIV(in.A+l, clampBase(Interval{addSat(mulSat(v.Hi, -1), -1), addSat(mulSat(v.Lo, -1), -1)}, in.Base))
			e.setAF(in.A+l, Affine{})
		}
	case ir.CmpEqI, ir.CmpNeI, ir.CmpLtI, ir.CmpLeI:
		for l := int32(0); l < w; l++ {
			e.setIV(in.A+l, evalCmp(in.Op, e.interval(in.B+l), e.interval(in.C+l), in.Base.IsSigned()))
			e.setAF(in.A+l, Affine{})
		}
	case ir.CmpEqF, ir.CmpNeF, ir.CmpLtF, ir.CmpLeF:
		kill()
		for l := int32(0); l < w; l++ {
			e.setIV(in.A+l, Interval{0, 1})
		}
	case ir.SelI:
		for l := int32(0); l < w; l++ {
			cond := e.interval(in.B + l)
			switch {
			case cond.Lo > 0 || cond.Hi < 0: // definitely nonzero
				e.setIV(in.A+l, e.interval(in.C+l))
				e.setAF(in.A+l, e.affine(in.C+l))
			case cond.Lo == 0 && cond.Hi == 0:
				e.setIV(in.A+l, e.interval(in.D+l))
				e.setAF(in.A+l, e.affine(in.D+l))
			default:
				e.setIV(in.A+l, e.interval(in.C+l).Hull(e.interval(in.D+l)))
				e.setAF(in.A+l, Affine{})
			}
		}
	case ir.CvtII:
		for l := int32(0); l < w; l++ {
			v := e.interval(in.B + l)
			a := e.affine(in.B + l)
			if in.Base == typeBool {
				// Bool conversion normalizes to 0/1.
				switch {
				case v.Lo > 0 || v.Hi < 0:
					v, a = Interval{1, 1}, AffineConst(1)
				case v.Lo == 0 && v.Hi == 0:
					v, a = Interval{0, 0}, AffineConst(0)
				default:
					v, a = Interval{0, 1}, Affine{}
				}
			} else if r, bounded := baseRange(in.Base); bounded && (v.Lo < r.Lo || v.Hi > r.Hi) {
				v, a = r, Affine{}
			}
			e.setIV(in.A+l, v)
			e.setAF(in.A+l, a)
		}
	case ir.CvtFI:
		kill()
		for l := int32(0); l < w; l++ {
			if r, ok := baseRange(in.Base); ok {
				e.setIV(in.A+l, r)
			}
		}
	case ir.LoadI:
		kill()
		for l := int32(0); l < w; l++ {
			if r, ok := baseRange(in.Base); ok {
				e.setIV(in.A+l, r)
			}
		}
	case ir.CallB:
		kill()
		if def.Bank == ir.BankI {
			id := builtin.ID(in.Imm)
			if id.IsWorkItemQuery() {
				dim, dimKnown := e.interval(in.B).Const()
				// The simulated platform bounds every id and size by
				// int32, so int conversions of query results are exact
				// and affine forms survive them.
				v := Interval{0, maxWorkItemID}
				var a Affine
				switch id {
				case builtin.GetLocalID:
					if dimKnown && dim == 0 {
						a = Affine{OK: true, Lid: 1, Sym: NoSym}
					}
				case builtin.GetGlobalID:
					if dimKnown && dim == 0 {
						a = Affine{OK: true, Gid: 1, Sym: NoSym}
					}
				case builtin.GetLocalSize, builtin.GetGlobalSize, builtin.GetNumGroups:
					v = Interval{1, maxWorkItemID}
				}
				e.setIV(in.A, v)
				e.setAF(in.A, a)
			} else if id == builtin.GetWorkDim {
				e.setIV(in.A, Interval{1, 3})
			} else {
				for s := def.Slot; s < def.Slot+def.Width; s++ {
					if r, ok := baseRange(in.Base); ok {
						e.setIV(s, r)
					}
				}
			}
		}
	case ir.AtomicOp:
		kill()
		if def.Bank == ir.BankI {
			if r, ok := baseRange(in.Base); ok {
				e.setIV(def.Slot, r)
			}
		}
	default:
		// Float-bank ops, stores, jumps, barriers: no integer value
		// facts to update beyond the generic kill.
		kill()
	}
}

// evalCmp folds a comparison over intervals into {0,1} when decided.
func evalCmp(op ir.Op, b, c Interval, signed bool) Interval {
	if !signed && (b.Lo < 0 || c.Lo < 0) {
		// Unsigned compare with possibly-wrapped operands: undecided.
		return Interval{0, 1}
	}
	t, f := Interval{1, 1}, Interval{0, 0}
	switch op {
	case ir.CmpLtI:
		if b.Hi < c.Lo {
			return t
		}
		if b.Lo >= c.Hi {
			return f
		}
	case ir.CmpLeI:
		if b.Hi <= c.Lo {
			return t
		}
		if b.Lo > c.Hi {
			return f
		}
	case ir.CmpEqI:
		if bv, ok := b.Const(); ok {
			if cv, ok2 := c.Const(); ok2 && bv == cv {
				return t
			}
		}
		if b.Hi < c.Lo || c.Hi < b.Lo {
			return f
		}
	case ir.CmpNeI:
		if bv, ok := b.Const(); ok {
			if cv, ok2 := c.Const(); ok2 && bv == cv {
				return f
			}
		}
		if b.Hi < c.Lo || c.Hi < b.Lo {
			return t
		}
	}
	return Interval{0, 1}
}
