package dataflow

import (
	"maligo/internal/clc/ir"
)

// Barrier-phase analysis. A "phase" (barrier interval) is the period
// between two consecutive barriers of a work-group. Two accesses can
// land in the same phase iff some program point can reach both of them
// without crossing a barrier: divergent branching lets different
// work-items run different arms of the same phase, so reachability is
// measured from a common ancestor, not between the accesses
// themselves.

// segments splits the CFG at BarrierOp instructions. Node i covers a
// barrier-free straight-line range; edges that cross a barrier are
// excluded from the reachability relation.
type segments struct {
	segAt []int // instruction index -> segment id
	n     int
	// reach[a] is the set of segments reachable from a without
	// crossing a barrier (reflexive).
	reach [][]bool
}

func (f *Facts) phaseSegments() *segments {
	if f.segs != nil {
		return f.segs
	}
	g := f.G
	code := g.Kernel.Code
	s := &segments{segAt: make([]int, len(code))}

	// Assign segment ids: a new segment starts at each block start and
	// after each barrier.
	firstSeg := make([]int, len(g.Blocks))
	lastSeg := make([]int, len(g.Blocks))
	for _, b := range g.Blocks {
		if b.ID == g.Exit {
			firstSeg[b.ID], lastSeg[b.ID] = -1, -1
			continue
		}
		firstSeg[b.ID] = s.n
		for i := b.Start; i < b.End; i++ {
			s.segAt[i] = s.n
			if code[i].Op == ir.BarrierOp {
				s.n++
			}
		}
		lastSeg[b.ID] = s.n
		s.n++
	}

	// Barrier-free edges: within a block only if the block has no
	// barrier between the segments (by construction consecutive
	// in-block segments are separated by barriers, so no in-block
	// edges at all); across blocks from the last segment of a block to
	// the first segment of each successor.
	succs := make([][]int, s.n)
	for _, b := range g.Blocks {
		if b.ID == g.Exit {
			continue
		}
		for _, sc := range b.Succs {
			if sc == g.Exit {
				continue
			}
			succs[lastSeg[b.ID]] = append(succs[lastSeg[b.ID]], firstSeg[sc])
		}
	}

	s.reach = make([][]bool, s.n)
	for a := 0; a < s.n; a++ {
		r := make([]bool, s.n)
		var dfs func(x int)
		dfs = func(x int) {
			if r[x] {
				return
			}
			r[x] = true
			for _, y := range succs[x] {
				dfs(y)
			}
		}
		dfs(a)
		s.reach[a] = r
	}
	f.segs = s
	return s
}

// MaySharePhase reports whether the accesses at instructions i and j
// can execute (possibly by different work-items) within the same
// barrier interval: some segment reaches both without a barrier.
func (f *Facts) MaySharePhase(i, j int) bool {
	s := f.phaseSegments()
	si, sj := s.segAt[i], s.segAt[j]
	if si == sj {
		return true
	}
	for a := 0; a < s.n; a++ {
		if s.reach[a][si] && s.reach[a][sj] {
			return true
		}
	}
	return false
}
