package dataflow

import (
	"sort"

	"maligo/internal/clc/ir"
)

// DefUse holds SSA-style def-use chains computed by classic reaching
// definitions over (bank, slot) pairs. Because lowering reuses slots
// for named variables, a use can see several reaching definitions;
// the chains enumerate all of them.
type DefUse struct {
	g *Graph
	// in[b] maps a slot key to the definition instruction indices that
	// reach the entry of block b.
	in []map[regKey][]int
}

type regKey struct {
	bank int
	slot int32
}

func keysOf(r ir.RegRef) []regKey {
	ks := make([]regKey, r.Width)
	for i := int32(0); i < r.Width; i++ {
		ks[i] = regKey{r.Bank, r.Slot + i}
	}
	return ks
}

// DefUse lazily computes and caches the def-use chains.
func (f *Facts) DefUse() *DefUse {
	if f.du == nil {
		f.du = buildDefUse(f.G)
	}
	return f.du
}

func buildDefUse(g *Graph) *DefUse {
	code := g.Kernel.Code
	du := &DefUse{g: g, in: make([]map[regKey][]int, len(g.Blocks))}

	// Per-block gen sets: last definition of each slot in the block.
	gen := make([]map[regKey]int, len(g.Blocks))
	for _, b := range g.Blocks {
		m := map[regKey]int{}
		for i := b.Start; i < b.End; i++ {
			if d, ok := ir.Def(&code[i]); ok {
				for _, k := range keysOf(d) {
					m[k] = i
				}
			}
		}
		gen[b.ID] = m
	}

	merge := func(dst map[regKey][]int, src map[regKey][]int) bool {
		changed := false
		for k, defs := range src { // maligo:allow maporder per-key def lists merge independently
			have := dst[k]
			for _, d := range defs {
				found := false
				for _, h := range have {
					if h == d {
						found = true
						break
					}
				}
				if !found {
					have = append(have, d)
					changed = true
				}
			}
			dst[k] = have
		}
		return changed
	}

	out := make([]map[regKey][]int, len(g.Blocks))
	for i := range out {
		out[i] = map[regKey][]int{}
	}
	du.in[0] = map[regKey][]int{}
	work := append([]int(nil), g.RPO...)
	queued := make([]bool, len(g.Blocks))
	for _, b := range work {
		queued[b] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		if du.in[b] == nil {
			du.in[b] = map[regKey][]int{}
		}
		// out = gen ∪ (in minus killed)
		newOut := map[regKey][]int{}
		for k, defs := range du.in[b] { // maligo:allow maporder distinct keys fill another map
			if _, killed := gen[b][k]; !killed {
				newOut[k] = defs
			}
		}
		for k, d := range gen[b] { // maligo:allow maporder distinct keys fill another map
			newOut[k] = []int{d}
		}
		changed := false
		for k, defs := range newOut { // maligo:allow maporder per-key merges commute
			if merge(out[b], map[regKey][]int{k: defs}) {
				changed = true
			}
		}
		if !changed && len(out[b]) > 0 {
			// No growth; successors already saw this state.
			continue
		}
		for _, s := range g.Blocks[b].Succs {
			if du.in[s] == nil {
				du.in[s] = map[regKey][]int{}
			}
			if merge(du.in[s], out[b]) && !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return du
}

// DefsAt returns the definition sites whose values can reach the use
// of register r at instruction i, sorted ascending.
func (du *DefUse) DefsAt(i int, r ir.RegRef) []int {
	blk := du.g.BlockOf(i)
	set := map[int]bool{}
	resolved := map[regKey]bool{}
	// Walk the block prefix: the last in-block def of each slot wins.
	for j := i - 1; j >= blk.Start; j-- {
		if d, ok := ir.Def(&du.g.Kernel.Code[j]); ok && d.Overlaps(r) {
			for _, k := range keysOf(d) {
				if k.bank == r.Bank && k.slot >= r.Slot && k.slot < r.Slot+r.Width && !resolved[k] {
					resolved[k] = true
					set[j] = true
				}
			}
		}
	}
	if du.in[blk.ID] != nil {
		for _, k := range keysOf(r) {
			if resolved[k] {
				continue
			}
			for _, d := range du.in[blk.ID][k] {
				set[d] = true
			}
		}
	}
	defs := make([]int, 0, len(set))
	for d := range set { // maligo:allow maporder sorted on the next line
		defs = append(defs, d)
	}
	sort.Ints(defs)
	return defs
}

// UsesOf returns the instruction indices that may use the value
// defined at instruction def, sorted ascending.
func (du *DefUse) UsesOf(def int) []int {
	d, ok := ir.Def(&du.g.Kernel.Code[def])
	if !ok {
		return nil
	}
	var uses []int
	code := du.g.Kernel.Code
	for i := range code {
		hit := false
		ir.Uses(&code[i], func(r ir.RegRef) {
			if hit || !r.Overlaps(d) {
				return
			}
			for _, rd := range du.DefsAt(i, r) {
				if rd == def {
					hit = true
					return
				}
			}
		})
		if hit {
			uses = append(uses, i)
		}
	}
	return uses
}
