package analysis

import (
	"fmt"

	"maligo/internal/clc/ast"
	"maligo/internal/clc/builtin"
	"maligo/internal/clc/sema"
	"maligo/internal/clc/token"
	"maligo/internal/platform"
)

// inductionVar recognizes the canonical for-loop shape
// `for (int i = ...; i < ...; i++)` (or += 1) and returns the
// induction variable's symbol.
func inductionVar(res *sema.Result, f *ast.ForStmt) *sema.Symbol {
	var name string
	switch init := f.Init.(type) {
	case *ast.DeclStmt:
		if len(init.Decls) != 1 || init.Decls[0].Init == nil {
			return nil
		}
		name = init.Decls[0].Name
	case *ast.ExprStmt:
		as, ok := init.X.(*ast.AssignExpr)
		if !ok || as.Op != token.ASSIGN {
			return nil
		}
		id, ok := unparen(as.LHS).(*ast.Ident)
		if !ok {
			return nil
		}
		name = id.Name
	default:
		return nil
	}

	var sym *sema.Symbol
	post := unparen(f.Post)
	switch p := post.(type) {
	case *ast.PostfixExpr:
		if p.Op != token.INC {
			return nil
		}
		sym = symOf(res, p.X)
	case *ast.UnaryExpr:
		if p.Op != token.INC {
			return nil
		}
		sym = symOf(res, p.X)
	case *ast.AssignExpr:
		if p.Op != token.ADD_ASSIGN {
			return nil
		}
		if v, ok := constEval(res, p.RHS); !ok || v != 1 {
			return nil
		}
		sym = symOf(res, p.LHS)
	default:
		return nil
	}
	if sym == nil || sym.Name != name {
		return nil
	}
	return sym
}

// globalScalarParam reports whether e indexes a __global or
// __constant pointer parameter with a scalar element type, returning
// the parameter symbol.
func globalScalarParam(res *sema.Result, e *ast.IndexExpr) *sema.Symbol {
	sym := symOf(res, e.X)
	if sym == nil || sym.Kind != sema.SymParam || sym.Type == nil || !sym.Type.IsPointer() {
		return nil
	}
	if sym.Type.Space != ast.GlobalSpace && sym.Type.Space != ast.ConstantSpace {
		return nil
	}
	if sym.Type.Elem == nil || !sym.Type.Elem.IsScalar() {
		return nil
	}
	return sym
}

// irTripByLine maps source lines of loop headers to the exact trip
// count the dataflow engine derived (-1 for uncounted loops). Syntax
// passes use it to attach iteration facts to for-statements.
func irTripByLine(c *Context) map[int]int64 {
	trips := map[int]int64{}
	f := c.Facts()
	if f == nil {
		return trips
	}
	code := c.IR.Code
	for _, l := range f.Loops() {
		hb := f.G.Blocks[l.Header]
		for i := hb.Start; i < hb.End && i < len(code); i++ {
			if line := code[i].Pos.Line; line > 0 {
				trips[line] = l.Trip
			}
		}
	}
	return trips
}

// passVectorize flags unit-stride scalar accesses to global memory
// inside loops: the paper's headline Mali optimization is rewriting
// such loops with vloadN/vstoreN so the load/store pipeline moves
// 128-bit lines instead of scalars. Kernels that already operate on
// wide vectors are skipped, as are loops the dataflow engine proves
// execute at most once (no stride to coalesce).
func passVectorize(c *Context) {
	if c.IR != nil && c.IR.MaxVectorWidth >= 4 {
		return // already vectorized
	}
	trips := irTripByLine(c)
	walkStmts(c.Fn.Body, func(s ast.Stmt) {
		f, ok := s.(*ast.ForStmt)
		if !ok {
			return
		}
		ind := inductionVar(c.Sema, f)
		if ind == nil {
			return
		}
		if f.Cond != nil {
			if trip, ok := trips[f.Cond.Pos().Line]; ok && trip >= 0 && trip < 2 {
				return // executes at most once: nothing to vectorize
			}
		}
		isVar := func(e ast.Expr) bool { return symOf(c.Sema, e) == ind }
		seen := make(map[*sema.Symbol]bool)
		allExprs(f.Body, func(e ast.Expr) {
			ix, ok := e.(*ast.IndexExpr)
			if !ok {
				return
			}
			sym := globalScalarParam(c.Sema, ix)
			if sym == nil || seen[sym] {
				return
			}
			if stride, ok := strideOf(c.Sema, ix.Index, isVar); ok && stride == 1 {
				seen[sym] = true
				c.Report(Warning, ix.Pos(),
					fmt.Sprintf("scalar %s access '%s[...]' in a unit-stride loop", sym.Type.Space, sym.Name),
					"use vload4/vstore4 (or a vector element type) so each access moves a 128-bit line")
			}
		})
	})
}

// passConstParam flags __global pointer parameters that are only read
// but not declared const; the paper's §V-D shows const/restrict
// qualifiers enabling measurable speedups on Mali.
func passConstParam(c *Context) {
	written := writtenPointerParams(c)
	for _, p := range c.Fn.Params {
		pt := c.Sema.ParamTypes[p]
		if pt == nil || !pt.IsPointer() || pt.Space != ast.GlobalSpace || pt.Const {
			continue
		}
		if written[p] {
			continue
		}
		c.Report(Info, p.NamePos,
			fmt.Sprintf("pointer parameter '%s' is never written; declare it const", p.Name),
			"read-only buffers let the compiler cache loads and relax ordering")
	}
}

// passRestrictParam flags kernels with two or more mutable __global
// pointer parameters where some lack restrict: without it the
// compiler must assume aliasing and cannot reorder loads across
// stores.
func passRestrictParam(c *Context) {
	var global []*ast.Param
	for _, p := range c.Fn.Params {
		pt := c.Sema.ParamTypes[p]
		if pt != nil && pt.IsPointer() && pt.Space == ast.GlobalSpace {
			global = append(global, p)
		}
	}
	if len(global) < 2 {
		return // a single buffer cannot alias another parameter
	}
	for _, p := range global {
		if c.Sema.ParamTypes[p].Restrict {
			continue
		}
		c.Report(Info, p.NamePos,
			fmt.Sprintf("pointer parameter '%s' may alias other buffer parameters; declare it restrict", p.Name),
			"restrict lets the compiler overlap loads with stores to other buffers")
	}
}

// writtenPointerParams returns the set of pointer parameters the
// kernel may write through: assignment/inc-dec targets, vstore
// destinations, atomic operands, and pointers passed to helper
// functions (conservatively assumed written).
func writtenPointerParams(c *Context) map[*ast.Param]bool {
	written := make(map[*sema.Symbol]bool)
	mark := func(sym *sema.Symbol) {
		if sym != nil {
			written[sym] = true
		}
	}
	allExprs(c.Fn.Body, func(e ast.Expr) {
		assignTargets(c.Sema, e, mark)
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return
		}
		info := c.Sema.Calls[call]
		if info == nil {
			return
		}
		switch info.Kind {
		case sema.CallBuiltin:
			if _, ok := info.Builtin.IsVstore(); ok && len(call.Args) == 3 {
				mark(baseSym(c.Sema, call.Args[2]))
			}
			if info.Builtin.IsAtomic() && len(call.Args) > 0 {
				mark(baseSym(c.Sema, call.Args[0]))
			}
		case sema.CallUser:
			for _, a := range call.Args {
				if sym := symOf(c.Sema, a); sym != nil && sym.Type != nil && sym.Type.IsPointer() {
					mark(sym)
				}
			}
		}
	})
	out := make(map[*ast.Param]bool)
	for sym := range written { // maligo:allow maporder fills another map keyed by the same symbols
		if p, ok := sym.Decl.(*ast.Param); ok && written[sym] {
			out[p] = true
		}
	}
	return out
}

// passCopyPrivate flags loops that stage __global data into a private
// array element by element. On a discrete GPU that hides latency; on
// the unified-memory SoC of the paper the "copy" just moves bytes
// through the same LPDDR controller twice (§V-A argues mapping over
// copying for the same reason on the host side).
func passCopyPrivate(c *Context) {
	walkStmts(c.Fn.Body, func(s ast.Stmt) {
		switch s.(type) {
		case *ast.ForStmt, *ast.WhileStmt, *ast.DoWhileStmt:
		default:
			return
		}
		var body ast.Stmt
		switch l := s.(type) {
		case *ast.ForStmt:
			body = l.Body
		case *ast.WhileStmt:
			body = l.Body
		case *ast.DoWhileStmt:
			body = l.Body
		}
		reported := make(map[*sema.Symbol]bool)
		allExprs(body, func(e ast.Expr) {
			as, ok := e.(*ast.AssignExpr)
			if !ok {
				return
			}
			lhs, ok := unparen(as.LHS).(*ast.IndexExpr)
			if !ok {
				return
			}
			dst := symOf(c.Sema, lhs.X)
			if dst == nil || dst.Kind != sema.SymArray || dst.Space != ast.PrivateSpace || reported[dst] {
				return
			}
			fromGlobal := false
			walkExprs(as.RHS, func(r ast.Expr) {
				if ix, ok := r.(*ast.IndexExpr); ok && globalScalarParam(c.Sema, ix) != nil {
					fromGlobal = true
				}
			})
			if fromGlobal {
				reported[dst] = true
				c.Report(Warning, as.Pos(),
					fmt.Sprintf("loop copies __global data into private array '%s' element by element", dst.Name),
					"the SoC has one physical memory; index the __global pointer directly or vload into registers")
			}
		})
	})
}

// passSoA flags constant-strided accesses to global buffers indexed
// by work-item id — the signature of an array-of-structures layout.
// A structure-of-arrays layout makes the same accesses unit-stride so
// consecutive work-items touch consecutive addresses (§V-C).
func passSoA(c *Context) {
	env := newAffineEnv(c.Sema, c.Fn)
	// A "work-item index" is get_global_id/get_local_id(0) itself or a
	// local derived from it with unit coefficient.
	isItemVar := func(e ast.Expr) bool {
		if id, dim, ok := workItemCall(c.Sema, e); ok && dim == 0 &&
			(id == builtin.GetGlobalID || id == builtin.GetLocalID) {
			return true
		}
		if sym := symOf(c.Sema, e); sym != nil {
			if v, ok := env.vals[sym]; ok && v.lidCoeff() == 1 {
				return true
			}
		}
		return false
	}
	type key struct {
		sym    *sema.Symbol
		stride int64
	}
	seen := make(map[key]bool)
	allExprs(c.Fn.Body, func(e ast.Expr) {
		ix, ok := e.(*ast.IndexExpr)
		if !ok {
			return
		}
		sym := globalScalarParam(c.Sema, ix)
		if sym == nil {
			return
		}
		stride, ok := strideOf(c.Sema, ix.Index, isItemVar)
		if !ok || stride < 2 || stride > 16 {
			return
		}
		k := key{sym, stride}
		if seen[k] {
			return
		}
		seen[k] = true
		c.Report(Warning, ix.Pos(),
			fmt.Sprintf("stride-%d access to '%s' indexed by work-item id suggests an AoS layout", stride, sym.Name),
			"split the structure into per-field arrays (SoA) so consecutive work-items access consecutive elements")
	})
}

// loopVarName extracts the variable initialized in a for-statement's
// init clause, for diagnostic display only.
func loopVarName(f *ast.ForStmt) string {
	switch init := f.Init.(type) {
	case *ast.DeclStmt:
		if len(init.Decls) == 1 {
			return init.Decls[0].Name
		}
	case *ast.ExprStmt:
		if as, ok := init.X.(*ast.AssignExpr); ok {
			if id, ok := unparen(as.LHS).(*ast.Ident); ok {
				return id.Name
			}
		}
	}
	return ""
}

// passUnroll flags loops with a small constant trip count: the
// simulated sequencer charges per-iteration branch overhead that
// manual unrolling removes (§V-E). Trip counts come from the dataflow
// engine's loop recognizer, so non-unit steps and folded bounds are
// handled (`for (j = 0; j <= 8; j += 2)` has trip count 5).
func passUnroll(c *Context) {
	trips := irTripByLine(c)
	walkStmts(c.Fn.Body, func(s ast.Stmt) {
		f, ok := s.(*ast.ForStmt)
		if !ok || f.Cond == nil {
			return
		}
		trip, ok := trips[f.Cond.Pos().Line]
		if !ok || trip < 2 || trip > 8 {
			return
		}
		name := loopVarName(f)
		if name == "" {
			return
		}
		c.Report(Info, f.Pos(),
			fmt.Sprintf("loop over '%s' has constant trip count %d", name, trip),
			"unroll it manually; short loops pay more in branches than in body work")
	})
}

// passRegBudget compares the lowered kernel's estimated register
// demand against the platform's per-thread budget — the static
// version of the CL_OUT_OF_RESOURCES failures the paper hits when
// combining wide vectors with double precision.
func passRegBudget(c *Context) {
	if c.IR == nil {
		return
	}
	demand := float64(c.IR.RegisterFootprint()) * platform.GPURegFootprintScale
	if demand <= platform.GPUMaxRegBytesPerThread {
		return
	}
	c.Report(Warning, c.Fn.Pos(),
		fmt.Sprintf("estimated register demand %.0f B/thread exceeds the %.0f B budget; enqueue will fail with CL_OUT_OF_RESOURCES",
			demand, platform.GPUMaxRegBytesPerThread),
		"narrow vector widths, prefer float over double, or split the kernel")
}
