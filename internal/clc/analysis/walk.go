package analysis

import (
	"maligo/internal/clc/ast"
	"maligo/internal/clc/builtin"
	"maligo/internal/clc/sema"
	"maligo/internal/clc/token"
)

// walkStmts visits s and every statement nested inside it, pre-order.
func walkStmts(s ast.Stmt, fn func(ast.Stmt)) {
	if s == nil {
		return
	}
	fn(s)
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, c := range s.List {
			walkStmts(c, fn)
		}
	case *ast.IfStmt:
		walkStmts(s.Then, fn)
		walkStmts(s.Else, fn)
	case *ast.ForStmt:
		walkStmts(s.Init, fn)
		walkStmts(s.Body, fn)
	case *ast.WhileStmt:
		walkStmts(s.Body, fn)
	case *ast.DoWhileStmt:
		walkStmts(s.Body, fn)
	}
}

// walkExprs visits every expression appearing in e, pre-order.
func walkExprs(e ast.Expr, fn func(ast.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch e := e.(type) {
	case *ast.BinaryExpr:
		walkExprs(e.X, fn)
		walkExprs(e.Y, fn)
	case *ast.UnaryExpr:
		walkExprs(e.X, fn)
	case *ast.PostfixExpr:
		walkExprs(e.X, fn)
	case *ast.AssignExpr:
		walkExprs(e.LHS, fn)
		walkExprs(e.RHS, fn)
	case *ast.CondExpr:
		walkExprs(e.Cond, fn)
		walkExprs(e.Then, fn)
		walkExprs(e.Else, fn)
	case *ast.CallExpr:
		for _, a := range e.Args {
			walkExprs(a, fn)
		}
	case *ast.IndexExpr:
		walkExprs(e.X, fn)
		walkExprs(e.Index, fn)
	case *ast.MemberExpr:
		walkExprs(e.X, fn)
	case *ast.CastExpr:
		walkExprs(e.X, fn)
	case *ast.VectorLit:
		for _, a := range e.Elems {
			walkExprs(a, fn)
		}
	case *ast.ParenExpr:
		walkExprs(e.X, fn)
	}
}

// stmtExprs visits every expression directly contained in s, without
// descending into nested statements.
func stmtExprs(s ast.Stmt, fn func(ast.Expr)) {
	switch s := s.(type) {
	case *ast.DeclStmt:
		for _, d := range s.Decls {
			walkExprs(d.Init, fn)
		}
	case *ast.ExprStmt:
		walkExprs(s.X, fn)
	case *ast.IfStmt:
		walkExprs(s.Cond, fn)
	case *ast.ForStmt:
		walkExprs(s.Cond, fn)
		walkExprs(s.Post, fn)
	case *ast.WhileStmt:
		walkExprs(s.Cond, fn)
	case *ast.DoWhileStmt:
		walkExprs(s.Cond, fn)
	case *ast.ReturnStmt:
		walkExprs(s.X, fn)
	}
}

// allExprs visits every expression in the statement tree rooted at s.
func allExprs(s ast.Stmt, fn func(ast.Expr)) {
	walkStmts(s, func(inner ast.Stmt) { stmtExprs(inner, fn) })
}

// unparen strips grouping parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// symOf resolves an identifier expression to its symbol, or nil.
func symOf(res *sema.Result, e ast.Expr) *sema.Symbol {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return res.Syms[id]
}

// builtinCall reports whether e is a call to the given builtin.
func builtinCall(res *sema.Result, e ast.Expr, id builtin.ID) (*ast.CallExpr, bool) {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	info := res.Calls[call]
	if info == nil || info.Kind != sema.CallBuiltin || info.Builtin != id {
		return nil, false
	}
	return call, true
}

// workItemCall reports whether e is a work-item query builtin call,
// returning the builtin and its constant dimension argument (-1 when
// the dimension is not a constant).
func workItemCall(res *sema.Result, e ast.Expr) (builtin.ID, int64, bool) {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return 0, 0, false
	}
	info := res.Calls[call]
	if info == nil || info.Kind != sema.CallBuiltin || !info.Builtin.IsWorkItemQuery() {
		return 0, 0, false
	}
	dim := int64(-1)
	if len(call.Args) == 1 {
		if v, ok := constEval(res, call.Args[0]); ok {
			dim = v
		}
	}
	return info.Builtin, dim, true
}

// constEval evaluates an integer constant expression, tolerating
// parens, casts, unary +/-/~ and the usual binary operators. It
// returns false for anything it cannot prove constant.
func constEval(res *sema.Result, e ast.Expr) (int64, bool) {
	switch e := unparen(e).(type) {
	case *ast.IntLit:
		return e.Value, true
	case *ast.CastExpr:
		return constEval(res, e.X)
	case *ast.UnaryExpr:
		v, ok := constEval(res, e.X)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case token.ADD:
			return v, true
		case token.SUB:
			return -v, true
		case token.NOT:
			return ^v, true
		}
	case *ast.BinaryExpr:
		x, ok := constEval(res, e.X)
		if !ok {
			return 0, false
		}
		y, ok := constEval(res, e.Y)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case token.ADD:
			return x + y, true
		case token.SUB:
			return x - y, true
		case token.MUL:
			return x * y, true
		case token.QUO:
			if y != 0 {
				return x / y, true
			}
		case token.REM:
			if y != 0 {
				return x % y, true
			}
		case token.AND:
			return x & y, true
		case token.OR:
			return x | y, true
		case token.XOR:
			return x ^ y, true
		case token.SHL:
			if y >= 0 && y < 63 {
				return x << uint(y), true
			}
		case token.SHR:
			if y >= 0 && y < 63 {
				return x >> uint(y), true
			}
		}
	}
	return 0, false
}

// assignTargets visits every symbol e writes to: assignment LHS
// targets and ++/-- operands, looking through index/member/deref
// forms to the base identifier.
func assignTargets(res *sema.Result, e ast.Expr, fn func(*sema.Symbol)) {
	walkExprs(e, func(x ast.Expr) {
		switch x := x.(type) {
		case *ast.AssignExpr:
			if s := baseSym(res, x.LHS); s != nil {
				fn(s)
			}
		case *ast.PostfixExpr:
			if s := baseSym(res, x.X); s != nil {
				fn(s)
			}
		case *ast.UnaryExpr:
			if x.Op == token.INC || x.Op == token.DEC {
				if s := baseSym(res, x.X); s != nil {
					fn(s)
				}
			}
		}
	})
}

// baseSym finds the base symbol of an lvalue expression: the x in
// x, x[i], x.lo, *x, (&x[i]).
func baseSym(res *sema.Result, e ast.Expr) *sema.Symbol {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return res.Syms[x]
		case *ast.IndexExpr:
			e = x.X
		case *ast.MemberExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op == token.MUL || x.Op == token.AND || x.Op == token.INC || x.Op == token.DEC {
				e = x.X
				continue
			}
			return nil
		default:
			return nil
		}
	}
}

// containsBarrier reports whether the statement tree executes
// barrier(), either directly or through a helper function.
func containsBarrier(res *sema.Result, s ast.Stmt, seen map[*ast.FuncDecl]bool) bool {
	found := false
	allExprs(s, func(e ast.Expr) {
		if found {
			return
		}
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return
		}
		info := res.Calls[call]
		if info == nil {
			return
		}
		switch info.Kind {
		case sema.CallBuiltin:
			if info.Builtin == builtin.Barrier {
				found = true
			}
		case sema.CallUser:
			if info.Target != nil && !seen[info.Target] {
				seen[info.Target] = true
				if containsBarrier(res, info.Target.Body, seen) {
					found = true
				}
			}
		}
	})
	return found
}
