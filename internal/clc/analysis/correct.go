package analysis

import (
	"fmt"

	"maligo/internal/clc/analysis/dataflow"
	"maligo/internal/clc/ir"
	"maligo/internal/clc/token"
)

// The correctness passes (barrierdiv, race, bounds) run on lowered IR
// and query the tier-2 dataflow engine. Working on IR instead of
// syntax makes them interprocedural for free — helper calls are
// inlined during lowering, so an access inside a helper participates
// with its own source position — and the engine's value ranges, edge
// executability and guard constraints remove whole classes of false
// positives (guarded loops, statically dead branches) that the
// syntax-level predecessors reported.

// passBarrierDiv reports barrier() instructions reachable under
// work-item-dependent control flow. Work-items that skip the barrier
// deadlock the group (the VM raises ErrBarrierDivergence at run time;
// this pass catches it at build time).
func passBarrierDiv(c *Context) {
	f := c.Facts()
	if f == nil {
		return
	}
	f.Each(func(i int, e *dataflow.Env) {
		if c.IR.Code[i].Op != ir.BarrierOp {
			return
		}
		if !e.DivergentControl() {
			return
		}
		c.Report(Error, c.IR.Code[i].Pos,
			"barrier() under work-item-dependent control flow",
			"every work-item of the group must reach the same barrier; hoist it out of the divergent branch")
	})
}

// ---------------------------------------------------------------------------
// Static race detection.

// lidDomain bounds the brute-force local-id search; it covers every
// legal work-group size of the simulated device.
const lidDomain = 128

// irAccess is one reachable memory access with its affine address and
// the guard constraints under which it executes.
type irAccess struct {
	instr int
	// Region identity: accesses are only comparable within one region.
	// param >= 0 selects a pointer-parameter buffer (the param slot);
	// param < 0 selects an address space of in-kernel arrays.
	param int32
	space int // ir.Space* tag
	name  string

	// Byte offset of the first accessed byte as base + c + lidCoeff*l
	// for work-item l (gid = group base + lid, and pairs are only
	// compared when their gid coefficients agree, so the group base
	// cancels).
	c        int64
	lidCoeff int64
	gidCoeff int64

	span   int64
	write  bool
	atomic bool
	pos    token.Pos

	cons []dataflow.Constraint        // per-lid evaluable guards
	uniq map[dataflow.Constraint]bool // single-item guards
}

// admit reports whether work-item l can execute the access.
func (a *irAccess) admit(l int64) bool {
	for _, con := range a.cons {
		if holds, ok := con.EvalLid(l); ok && !holds {
			return false
		}
	}
	return true
}

// at returns the byte offset accessed by work-item l.
func (a *irAccess) at(l int64) int64 { return a.c + a.lidCoeff*l }

// passRace proves intra-work-group write/write and read/write
// conflicts on __local and __global memory when every participating
// index is affine in the work-item id. Non-affine indices and
// data-dependent divergent guards are skipped, trading recall for a
// near-zero false-positive rate.
func passRace(c *Context) {
	f := c.Facts()
	if f == nil {
		return
	}
	accesses := collectIRAccesses(c, f)
	reportIRConflicts(c, f, accesses)
}

// collectIRAccesses walks every reachable memory instruction and
// returns the analyzable __local/__global accesses.
func collectIRAccesses(c *Context, f *dataflow.Facts) []irAccess {
	k := c.IR
	type guardInfo struct {
		cons   []dataflow.Constraint
		opaque bool
	}
	guardCache := map[int]guardInfo{}
	guardsFor := func(instr int) guardInfo {
		b := f.G.BlockOf(instr).ID
		if gi, ok := guardCache[b]; ok {
			return gi
		}
		cons, opaque := f.GuardsFor(b)
		gi := guardInfo{cons, opaque}
		guardCache[b] = gi
		return gi
	}

	var out []irAccess
	f.Each(func(i int, e *dataflow.Env) {
		in := &k.Code[i]
		var write, atomic bool
		switch in.Op {
		case ir.LoadI, ir.LoadF:
		case ir.StoreI, ir.StoreF:
			write = true
		case ir.AtomicOp:
			write, atomic = true, true
		default:
			return
		}
		aff := e.Affine(in.B)
		if !aff.OK {
			return
		}
		a := irAccess{
			instr:    i,
			c:        aff.C,
			lidCoeff: aff.Lid + aff.Gid,
			gidCoeff: aff.Gid,
			write:    write,
			atomic:   atomic,
			pos:      in.Pos,
		}
		w := int64(in.Width)
		if w == 0 {
			w = 1
		}
		a.span = int64(in.Base.Size()) * w
		if a.span <= 0 {
			return
		}
		switch {
		case aff.SymC == 1:
			p := paramBySlot(k, aff.Sym)
			if p == nil {
				return
			}
			if p.Class == ir.ParamLocalPtr {
				a.space = ir.SpaceLocal
			} else {
				a.space = ir.SpaceGlobal
			}
			a.param, a.name = aff.Sym, p.Name
		case aff.SymC == 0:
			space, off := ir.DecodeAddr(aff.C)
			if space != ir.SpaceLocal {
				return // private arenas are per-item; constants read-only
			}
			a.param, a.space, a.c = -1, space, off
		default:
			return
		}
		gi := guardsFor(i)
		if gi.opaque {
			return // data-dependent divergent guard: not analyzable
		}
		for _, con := range gi.cons {
			switch {
			case con.Diff.Gid == 0 && con.Diff.SymC == 0:
				a.cons = append(a.cons, con)
			case con.Unique():
				if a.uniq == nil {
					a.uniq = map[dataflow.Constraint]bool{}
				}
				a.uniq[con] = true
			default:
				return // divergent subset we cannot reason about
			}
		}
		out = append(out, a)
	})
	return out
}

func paramBySlot(k *ir.Kernel, slot int32) *ir.Param {
	for i := range k.Params {
		p := &k.Params[i]
		if p.Slot != slot {
			continue
		}
		if p.Class == ir.ParamGlobalPtr || p.Class == ir.ParamLocalPtr {
			return p
		}
		return nil
	}
	return nil
}

func spaceName(space int) string {
	if space == ir.SpaceLocal {
		return "__local"
	}
	return "__global"
}

// regionName resolves the display name for the conflicting bytes: the
// parameter name for buffer accesses, or the declared array containing
// the byte for in-kernel __local arrays.
func regionName(k *ir.Kernel, a *irAccess, byteOff int64) string {
	if a.param >= 0 {
		return a.name
	}
	addr := ir.EncodeAddr(a.space, byteOff)
	for i := range k.Arrays {
		if k.Arrays[i].Space == a.space && k.Arrays[i].Contains(addr) {
			return k.Arrays[i].Name
		}
	}
	return "memory"
}

// reportIRConflicts brute-forces every comparable access pair over the
// local-id domain and reports provable same-interval conflicts.
func reportIRConflicts(c *Context, f *dataflow.Facts, accesses []irAccess) {
	type pairKey struct{ a, b token.Pos }
	reported := map[pairKey]bool{}
	for i := 0; i < len(accesses); i++ {
		for j := i; j < len(accesses); j++ {
			a, b := &accesses[i], &accesses[j]
			if a.param != b.param || a.space != b.space {
				continue
			}
			if !a.write && !b.write {
				continue
			}
			if a.atomic && b.atomic {
				continue // atomics serialize against each other
			}
			// The group-base terms only cancel when both accesses carry
			// the same gid coefficient.
			if a.gidCoeff != b.gidCoeff {
				continue
			}
			// Accesses under the same single-item guard are executed by
			// one work-item in program order; a single-item access
			// cannot race itself either.
			if i == j && len(a.uniq) > 0 {
				continue
			}
			if i != j && sharedUnique(a, b) {
				continue
			}
			if !f.MaySharePhase(a.instr, b.instr) {
				continue
			}
			l1, l2, found := findIRConflict(a, b)
			if !found {
				continue
			}
			key := pairKey{a.pos, b.pos}
			if reported[key] {
				continue
			}
			reported[key] = true
			what := "write/write"
			if !a.write || !b.write {
				what = "read/write"
			}
			if a.atomic != b.atomic {
				what = "atomic/plain"
			}
			name := regionName(c.IR, a, a.at(l1))
			space := spaceName(a.space)
			var msg string
			switch {
			case i == j && len(a.cons) == 0:
				msg = fmt.Sprintf("intra-work-group %s race on %s '%s': every work-item stores to the same bytes in the same barrier interval",
					what, space, name)
			case i == j:
				msg = fmt.Sprintf("intra-work-group %s race on %s '%s': work-items %d and %d touch the same bytes in the same barrier interval",
					what, space, name, l1, l2)
			default:
				msg = fmt.Sprintf("intra-work-group %s race on %s '%s': work-items %d and %d touch the same bytes in the same barrier interval (other access at %s)",
					what, space, name, l1, l2, earlierPos(a.pos, b.pos))
			}
			c.Report(Error, laterPos(a.pos, b.pos), msg,
				"separate the accesses with barrier(CLK_LOCAL_MEM_FENCE) or make the index work-item-private")
		}
	}
}

// sharedUnique reports whether both accesses sit under a common
// single-item guard (the same canonical constraint admits at most one
// work-item, which then executes both accesses in program order).
func sharedUnique(a, b *irAccess) bool {
	for con := range a.uniq { // maligo:allow maporder pure membership test
		if b.uniq[con] {
			return true
		}
	}
	return false
}

// findIRConflict searches the lid domain for two distinct admitted
// work-items whose accesses overlap in bytes.
func findIRConflict(a, b *irAccess) (int64, int64, bool) {
	for l1 := int64(0); l1 < lidDomain; l1++ {
		if !a.admit(l1) {
			continue
		}
		s1 := a.at(l1)
		for l2 := int64(0); l2 < lidDomain; l2++ {
			if l1 == l2 || !b.admit(l2) {
				continue
			}
			s2 := b.at(l2)
			if s1 < s2+b.span && s2 < s1+a.span {
				return l1, l2, true
			}
		}
	}
	return 0, 0, false
}

func earlierPos(a, b token.Pos) token.Pos {
	if a.Line < b.Line || (a.Line == b.Line && a.Col <= b.Col) {
		return a
	}
	return b
}

func laterPos(a, b token.Pos) token.Pos {
	if a.Line > b.Line || (a.Line == b.Line && a.Col > b.Col) {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// Bounds checking.

// passBounds reports accesses to fixed-size __local/__private arrays
// whose address provably (constant index) or possibly (derived value
// range) falls outside the declared extent. Unreachable code is not
// checked — the engine's edge executability prunes statically dead
// branches — and launch-dependent indices (lid/gid terms) are skipped
// because group sizes are not known statically.
func passBounds(c *Context) {
	f := c.Facts()
	if f == nil {
		return
	}
	k := c.IR
	f.Each(func(i int, e *dataflow.Env) {
		in := &k.Code[i]
		switch in.Op {
		case ir.LoadI, ir.LoadF, ir.StoreI, ir.StoreF:
		default:
			return
		}
		aff := e.Affine(in.B)
		if aff.OK && (aff.Lid != 0 || aff.Gid != 0 || aff.SymC != 0) {
			return // depends on ids or runtime pointers
		}
		iv := e.Interval(in.B)
		if iv.Lo == dataflow.NegInf || iv.Hi == dataflow.PosInf || iv.Hi-iv.Lo > 1<<24 {
			return // unbounded or junk-bounded address
		}
		spaceLo, offLo := ir.DecodeAddr(iv.Lo)
		spaceHi, offHi := ir.DecodeAddr(iv.Hi)
		if spaceLo != spaceHi {
			return
		}
		if spaceLo != ir.SpaceLocal && spaceLo != ir.SpacePrivate {
			return
		}
		w := int64(in.Width)
		if w == 0 {
			w = 1
		}
		span := int64(in.Base.Size()) * w
		arr := findArray(k, spaceLo, offLo)
		if arr == nil || arr.ElemSize <= 0 {
			return
		}
		relLo := offLo - arr.Offset
		relEnd := offHi + span - arr.Offset
		if relLo >= 0 && relEnd <= arr.Bytes {
			return
		}
		if offLo == offHi {
			idx := floorDiv(relLo, arr.ElemSize)
			c.Report(Error, in.Pos,
				fmt.Sprintf("index %d is out of bounds for '%s[%d]'", idx, arr.Name, arr.Len),
				"the access wraps or faults at run time; fix the index or the array length")
			return
		}
		idx := floorDiv(relLo, arr.ElemSize)
		if relEnd > arr.Bytes {
			idx = floorDiv(offHi-arr.Offset, arr.ElemSize)
		}
		c.Report(Warning, in.Pos,
			fmt.Sprintf("index may reach %d, out of bounds for '%s[%d]'", idx, arr.Name, arr.Len),
			"the derived value range of the index extends past the array; tighten the loop bound or guard")
	})
}

// findArray picks the declared array an offset indexes from: the one
// whose extent contains it, else the nearest array starting at or
// below it (an overflowing index lands past its own array), else the
// nearest above (a negative index lands before it).
func findArray(k *ir.Kernel, space int, off int64) *ir.ArrayDecl {
	var floor, above *ir.ArrayDecl
	for i := range k.Arrays {
		a := &k.Arrays[i]
		if a.Space != space {
			continue
		}
		if a.Offset <= off && (floor == nil || a.Offset > floor.Offset) {
			floor = a
		}
		if a.Offset > off && (above == nil || a.Offset < above.Offset) {
			above = a
		}
	}
	if floor != nil {
		return floor
	}
	return above
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
