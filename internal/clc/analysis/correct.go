package analysis

import (
	"fmt"

	"maligo/internal/clc/ast"
	"maligo/internal/clc/builtin"
	"maligo/internal/clc/sema"
	"maligo/internal/clc/token"
)

// passBarrierDiv reports barrier() calls reachable under work-item-
// dependent control flow. Work-items that skip the barrier deadlock
// the group (the VM raises ErrBarrierDivergence at run time; this
// pass catches it at build time).
func passBarrierDiv(c *Context) {
	u := newUniformity(c.Sema, c.Fn)
	seen := make(map[*ast.FuncDecl]bool)

	checkCall := func(e ast.Expr, div bool) {
		walkExprs(e, func(x ast.Expr) {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return
			}
			info := c.Sema.Calls[call]
			if info == nil || !div {
				return
			}
			direct := info.Kind == sema.CallBuiltin && info.Builtin == builtin.Barrier
			viaHelper := info.Kind == sema.CallUser && info.Target != nil &&
				containsBarrier(c.Sema, info.Target.Body, seen)
			if direct {
				c.Report(Error, call.Pos(),
					"barrier() under work-item-dependent control flow",
					"every work-item of the group must reach the same barrier; hoist it out of the divergent branch")
			} else if viaHelper {
				c.Report(Error, call.Pos(),
					fmt.Sprintf("call to '%s' executes barrier() under work-item-dependent control flow", call.Fun.Name),
					"every work-item of the group must reach the same barrier; hoist the call out of the divergent branch")
			}
		})
	}

	var walk func(s ast.Stmt, div bool)
	walk = func(s ast.Stmt, div bool) {
		switch s := s.(type) {
		case nil:
		case *ast.BlockStmt:
			for _, inner := range s.List {
				walk(inner, div)
			}
		case *ast.IfStmt:
			branch := div || u.Divergent(s.Cond)
			walk(s.Then, branch)
			walk(s.Else, branch)
		case *ast.ForStmt:
			walk(s.Init, div)
			body := div || u.Divergent(s.Cond)
			checkCall(s.Post, body)
			walk(s.Body, body)
		case *ast.WhileStmt:
			walk(s.Body, div || u.Divergent(s.Cond))
		case *ast.DoWhileStmt:
			walk(s.Body, div || u.Divergent(s.Cond))
		default:
			stmtExprs(s, func(e ast.Expr) { checkCall(e, div) })
		}
	}
	walk(c.Fn.Body, false)
}

// ---------------------------------------------------------------------------
// Static race detection.

// guardKind classifies the divergent conditions an access sits under.
type guardKind int

const (
	guardAll    guardKind = iota // every work-item executes the access
	guardLidEq                   // only local id == lidVal executes it
	guardUnique                  // at most one (unknown) work-item executes it
	guardOpaque                  // data-dependent subset; not analyzable
)

type guard struct {
	kind   guardKind
	lidVal int64
	cond   ast.Expr // the divergent condition, to recognize accesses sharing a guard
}

// memAccess is one static memory access with its affine address.
type memAccess struct {
	sym    *sema.Symbol
	space  ast.AddressSpace
	start  affine // byte offset of the first accessed byte
	span   int64  // bytes accessed
	write  bool
	atomic bool
	pos    token.Pos
	phase  int
	guard  guard
}

// lidDomain bounds the brute-force local-id search; it covers every
// legal work-group size of the simulated device.
const lidDomain = 128

// passRace proves intra-work-group write/write and read/write
// conflicts on __local and __global memory when every participating
// index is affine in the work-item id. Non-affine indices, data-
// dependent guards and cross-phase pairs are skipped, trading recall
// for a near-zero false-positive rate.
func passRace(c *Context) {
	u := newUniformity(c.Sema, c.Fn)
	env := newAffineEnv(c.Sema, c.Fn)
	col := &raceCollector{ctx: c, u: u, env: env}
	col.walk(c.Fn.Body, guard{kind: guardAll})
	col.reportConflicts()
}

type raceCollector struct {
	ctx      *Context
	u        *uniformity
	env      *affineEnv
	phase    int
	accesses []memAccess
}

// classify merges the enclosing guard with a new condition.
func (rc *raceCollector) classify(outer guard, cond ast.Expr) guard {
	if cond == nil || !rc.u.Divergent(cond) {
		return outer // uniform: all items agree, no per-item filtering
	}
	if outer.kind == guardOpaque {
		return outer
	}
	g := guard{kind: guardOpaque, cond: cond}
	if be, ok := unparen(cond).(*ast.BinaryExpr); ok && be.Op == token.EQL {
		lhs := rc.env.eval(be.X)
		rhs := rc.env.eval(be.Y)
		if lhs.ok && rhs.ok {
			diff := lhs.sub(rhs)
			switch {
			case diff.lidCoeff() == 0:
				// Identical for all items; uniform after all.
				return outer
			case diff.ag == 0 && diff.c%diff.al == 0:
				l := -diff.c / diff.al
				if l >= 0 && l < lidDomain {
					g = guard{kind: guardLidEq, lidVal: l, cond: cond}
				} else {
					g = guard{kind: guardUnique, cond: cond} // dead in-domain; be safe
				}
			default:
				// gid == K etc.: exactly one item, unknown lid.
				g = guard{kind: guardUnique, cond: cond}
			}
		}
	}
	// Merge with the outer guard.
	switch {
	case outer.kind == guardAll:
		return g
	case g.kind == guardOpaque || outer.kind == guardOpaque:
		return guard{kind: guardOpaque, cond: cond}
	case outer.kind == guardLidEq && g.kind == guardLidEq && outer.lidVal != g.lidVal:
		return guard{kind: guardOpaque, cond: cond} // contradictory: dead code
	case g.kind == guardLidEq:
		return g
	default:
		return outer
	}
}

func (rc *raceCollector) walk(s ast.Stmt, g guard) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, inner := range s.List {
			rc.walk(inner, g)
		}
	case *ast.IfStmt:
		rc.walk(s.Then, rc.classify(g, s.Cond))
		if s.Else != nil {
			// The else branch of a divergent condition is an unknown
			// complement subset; of a uniform condition, all items.
			eg := g
			if rc.u.Divergent(s.Cond) {
				eg = guard{kind: guardOpaque, cond: s.Cond}
			}
			rc.walk(s.Else, eg)
		}
	case *ast.ForStmt:
		rc.walk(s.Init, g)
		bg := rc.classify(g, s.Cond)
		rc.collectExpr(s.Post, bg, false)
		rc.walk(s.Body, bg)
	case *ast.WhileStmt:
		rc.walk(s.Body, rc.classify(g, s.Cond))
	case *ast.DoWhileStmt:
		rc.walk(s.Body, rc.classify(g, s.Cond))
	case *ast.ExprStmt:
		if _, ok := builtinCall(rc.ctx.Sema, s.X, builtin.Barrier); ok {
			rc.phase++
			return
		}
		rc.collectExpr(s.X, g, false)
	case *ast.DeclStmt:
		for _, d := range s.Decls {
			rc.collectExpr(d.Init, g, false)
		}
	case *ast.ReturnStmt:
		rc.collectExpr(s.X, g, false)
	}
}

// record adds an access to sym through an index expression.
func (rc *raceCollector) record(sym *sema.Symbol, idx ast.Expr, elemBytes, spanBytes int64, write, atomic bool, pos token.Pos, g guard) {
	if sym == nil || g.kind == guardOpaque {
		return
	}
	var space ast.AddressSpace
	switch {
	case sym.Kind == sema.SymArray:
		space = sym.Space
	case sym.Kind == sema.SymParam && sym.Type != nil && sym.Type.IsPointer():
		space = sym.Type.Space
	default:
		return
	}
	if space != ast.LocalSpace && space != ast.GlobalSpace {
		return // __constant and __private cannot race within a group
	}
	aff := rc.env.eval(idx)
	if !aff.ok {
		return
	}
	rc.accesses = append(rc.accesses, memAccess{
		sym:    sym,
		space:  space,
		start:  aff.scale(elemBytes),
		span:   spanBytes,
		write:  write,
		atomic: atomic,
		pos:    pos,
		phase:  rc.phase,
		guard:  g,
	})
}

// elemSize returns the byte size of one indexed element of sym.
func elemSize(sym *sema.Symbol) int64 {
	if sym == nil || sym.Type == nil {
		return 0
	}
	t := sym.Type
	if sym.Kind == sema.SymParam && t.IsPointer() {
		t = t.Elem
	}
	if t == nil {
		return 0
	}
	return int64(t.Size())
}

// collectExpr records every memory access in e. isWrite marks the
// expression itself as a store target (used for assignment LHS).
func (rc *raceCollector) collectExpr(e ast.Expr, g guard, isWrite bool) {
	if e == nil {
		return
	}
	switch e := unparen(e).(type) {
	case *ast.AssignExpr:
		// Compound assignment reads then writes the target.
		if lhs, ok := unparen(e.LHS).(*ast.IndexExpr); ok {
			if e.Op != token.ASSIGN {
				rc.collectIndex(lhs, g, false)
			}
			rc.collectIndex(lhs, g, true)
			rc.collectExpr(lhs.Index, g, false)
		} else {
			rc.collectExpr(e.LHS, g, false)
		}
		rc.collectExpr(e.RHS, g, false)
	case *ast.PostfixExpr:
		if x, ok := unparen(e.X).(*ast.IndexExpr); ok {
			rc.collectIndex(x, g, false)
			rc.collectIndex(x, g, true)
			rc.collectExpr(x.Index, g, false)
		} else {
			rc.collectExpr(e.X, g, false)
		}
	case *ast.UnaryExpr:
		if e.Op == token.INC || e.Op == token.DEC {
			if x, ok := unparen(e.X).(*ast.IndexExpr); ok {
				rc.collectIndex(x, g, false)
				rc.collectIndex(x, g, true)
				rc.collectExpr(x.Index, g, false)
				return
			}
		}
		rc.collectExpr(e.X, g, false)
	case *ast.IndexExpr:
		rc.collectIndex(e, g, isWrite)
		rc.collectExpr(e.Index, g, false)
	case *ast.CallExpr:
		info := rc.ctx.Sema.Calls[e]
		if info != nil && info.Kind == sema.CallBuiltin {
			if n, ok := info.Builtin.IsVload(); ok && len(e.Args) == 2 {
				rc.collectVec(e, n, false, g)
				return
			}
			if n, ok := info.Builtin.IsVstore(); ok && len(e.Args) == 3 {
				rc.collectExpr(e.Args[0], g, false)
				rc.collectVec(e, n, true, g)
				return
			}
			if info.Builtin.IsAtomic() && len(e.Args) > 0 {
				// atomic_op(&p[i], ...) — an atomic access to p[i].
				if addr, ok := unparen(e.Args[0]).(*ast.UnaryExpr); ok && addr.Op == token.AND {
					if ix, ok := unparen(addr.X).(*ast.IndexExpr); ok {
						sym := symOf(rc.ctx.Sema, ix.X)
						es := elemSize(sym)
						if es > 0 {
							rc.record(sym, ix.Index, es, es, true, true, ix.Pos(), g)
						}
						rc.collectExpr(ix.Index, g, false)
					}
				}
				for _, a := range e.Args[1:] {
					rc.collectExpr(a, g, false)
				}
				return
			}
		}
		for _, a := range e.Args {
			rc.collectExpr(a, g, false)
		}
	case *ast.BinaryExpr:
		rc.collectExpr(e.X, g, false)
		rc.collectExpr(e.Y, g, false)
	case *ast.CondExpr:
		rc.collectExpr(e.Cond, g, false)
		rc.collectExpr(e.Then, g, false)
		rc.collectExpr(e.Else, g, false)
	case *ast.MemberExpr:
		rc.collectExpr(e.X, g, isWrite)
	case *ast.CastExpr:
		rc.collectExpr(e.X, g, false)
	case *ast.VectorLit:
		for _, el := range e.Elems {
			rc.collectExpr(el, g, false)
		}
	}
}

func (rc *raceCollector) collectIndex(ix *ast.IndexExpr, g guard, write bool) {
	sym := symOf(rc.ctx.Sema, ix.X)
	es := elemSize(sym)
	if es <= 0 {
		return
	}
	rc.record(sym, ix.Index, es, es, write, false, ix.Pos(), g)
}

// collectVec records a vloadN/vstoreN access: the offset argument is
// in units of N elements.
func (rc *raceCollector) collectVec(call *ast.CallExpr, n int, write bool, g guard) {
	ptrArg := call.Args[len(call.Args)-1]
	offArg := call.Args[len(call.Args)-2]
	if write {
		offArg = call.Args[1]
		ptrArg = call.Args[2]
	}
	sym := symOf(rc.ctx.Sema, ptrArg)
	es := elemSize(sym)
	if es <= 0 {
		return
	}
	rc.record(sym, offArg, es*int64(n), es*int64(n), write, false, call.Pos(), g)
	rc.collectExpr(offArg, g, false)
}

// reportConflicts brute-forces every comparable access pair over the
// local-id domain and reports provable same-phase conflicts.
func (rc *raceCollector) reportConflicts() {
	type pairKey struct {
		a, b token.Pos
	}
	reported := make(map[pairKey]bool)
	for i := 0; i < len(rc.accesses); i++ {
		for j := i; j < len(rc.accesses); j++ {
			a, b := rc.accesses[i], rc.accesses[j]
			if a.sym != b.sym || a.phase != b.phase {
				continue
			}
			if !a.write && !b.write {
				continue
			}
			if a.atomic && b.atomic {
				continue // atomics serialize against each other
			}
			// The groupBase terms only cancel when both accesses carry
			// the same get_global_id coefficient.
			if a.start.ag != b.start.ag {
				continue
			}
			// Accesses under the same single-item guard are executed by
			// one work-item in program order.
			if a.guard.cond != nil && a.guard.cond == b.guard.cond &&
				a.guard.kind != guardAll && b.guard.kind != guardAll {
				continue
			}
			if i == j && a.guard.kind != guardAll {
				continue // a single-item access cannot race itself
			}
			l1, l2, found := findConflict(a, b)
			if !found {
				continue
			}
			key := pairKey{a.pos, b.pos}
			if reported[key] {
				continue
			}
			reported[key] = true
			what := "write/write"
			if !a.write || !b.write {
				what = "read/write"
			}
			if a.atomic != b.atomic {
				what = "atomic/plain"
			}
			msg := fmt.Sprintf("intra-work-group %s race on %s '%s': work-items %d and %d touch the same bytes in the same barrier interval (other access at %s)",
				what, a.space, a.sym.Name, l1, l2, earlierPos(a.pos, b.pos))
			if i == j {
				msg = fmt.Sprintf("intra-work-group %s race on %s '%s': every work-item stores to the same bytes in the same barrier interval",
					what, a.space, a.sym.Name)
			}
			rc.ctx.Report(Error, laterPos(a.pos, b.pos), msg,
				"separate the accesses with barrier(CLK_LOCAL_MEM_FENCE) or make the index work-item-private")
		}
	}
}

// findConflict searches the lid domain for two distinct work-items
// whose accesses overlap in bytes while both guards are satisfied.
func findConflict(a, b memAccess) (int64, int64, bool) {
	admit := func(g guard, l int64) bool {
		switch g.kind {
		case guardLidEq:
			return l == g.lidVal
		default: // guardAll, guardUnique (some single unknown item)
			return true
		}
	}
	for l1 := int64(0); l1 < lidDomain; l1++ {
		if !admit(a.guard, l1) {
			continue
		}
		s1 := a.start.at(l1)
		for l2 := int64(0); l2 < lidDomain; l2++ {
			if l1 == l2 || !admit(b.guard, l2) {
				continue
			}
			s2 := b.start.at(l2)
			if s1 < s2+b.span && s2 < s1+a.span {
				return l1, l2, true
			}
		}
	}
	return 0, 0, false
}

func earlierPos(a, b token.Pos) token.Pos {
	if a.Line < b.Line || (a.Line == b.Line && a.Col <= b.Col) {
		return a
	}
	return b
}

func laterPos(a, b token.Pos) token.Pos {
	if a.Line > b.Line || (a.Line == b.Line && a.Col > b.Col) {
		return a
	}
	return b
}

// passBounds reports constant array indices that fall outside the
// declared bounds of fixed-size __private/__local arrays.
func passBounds(c *Context) {
	allExprs(c.Fn.Body, func(e ast.Expr) {
		ix, ok := e.(*ast.IndexExpr)
		if !ok {
			return
		}
		sym := symOf(c.Sema, ix.X)
		if sym == nil || sym.ArrayLen <= 0 {
			return
		}
		if sym.Kind != sema.SymArray && sym.Kind != sema.SymFileVar {
			return
		}
		idx, ok := constEval(c.Sema, ix.Index)
		if !ok {
			return
		}
		if idx >= 0 && idx < int64(sym.ArrayLen) {
			return
		}
		c.Report(Error, ix.Pos(),
			fmt.Sprintf("index %d is out of bounds for '%s[%d]'", idx, sym.Name, sym.ArrayLen),
			"the access wraps or faults at run time; fix the index or the array length")
	})
}
