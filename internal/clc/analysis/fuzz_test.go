package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"maligo/internal/clc"
	"maligo/internal/clc/analysis"
)

// FuzzAnalyze asserts the analyzer never panics on any input the
// compiler accepts: whatever clc.CompileArtifacts swallows, every
// pass must digest.
func FuzzAnalyze(f *testing.F) {
	entries, err := os.ReadDir(goldenDir)
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".cl") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(goldenDir, e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Add(`__kernel void k(__global float* p) { p[get_global_id(0)] = 0.0f; }`)
	f.Add(`__kernel void k(__local int* l) { int i = get_local_id(0); l[i] = i; barrier(1); l[0] = l[i]; }`)
	f.Add(`int h(int x) { return x * 2; } __kernel void k(__global int* p, int n) { for (int i = 0; i < 4; i++) { p[h(i)] += i; } }`)

	f.Fuzz(func(t *testing.T, src string) {
		art, err := clc.CompileArtifacts("fuzz.cl", src, "")
		if err != nil {
			return // only compiler-accepted inputs are in scope
		}
		analysis.Analyze(art)
	})
}
