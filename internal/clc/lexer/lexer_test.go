package lexer

import (
	"testing"

	"maligo/internal/clc/token"
)

func kinds(src string) []token.Kind {
	lx := New(src)
	var out []token.Kind
	for _, t := range lx.Tokenize() {
		out = append(out, t.Kind)
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	got := kinds("a = b + 42;")
	want := []token.Kind{token.IDENT, token.ASSIGN, token.IDENT, token.ADD,
		token.INTLIT, token.SEMICOLON, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	cases := map[string]token.Kind{
		"+": token.ADD, "-": token.SUB, "*": token.MUL, "/": token.QUO, "%": token.REM,
		"+=": token.ADD_ASSIGN, "-=": token.SUB_ASSIGN, "*=": token.MUL_ASSIGN,
		"/=": token.QUO_ASSIGN, "%=": token.REM_ASSIGN,
		"&": token.AND, "|": token.OR, "^": token.XOR, "~": token.NOT,
		"&=": token.AND_ASSIGN, "|=": token.OR_ASSIGN, "^=": token.XOR_ASSIGN,
		"<<": token.SHL, ">>": token.SHR, "<<=": token.SHL_ASSIGN, ">>=": token.SHR_ASSIGN,
		"&&": token.LAND, "||": token.LOR, "!": token.LNOT,
		"==": token.EQL, "!=": token.NEQ, "<": token.LSS, ">": token.GTR,
		"<=": token.LEQ, ">=": token.GEQ,
		"++": token.INC, "--": token.DEC, "->": token.ARROW,
		"?": token.QUESTION, ":": token.COLON, ".": token.PERIOD, ",": token.COMMA,
		"(": token.LPAREN, ")": token.RPAREN, "[": token.LBRACK, "]": token.RBRACK,
		"{": token.LBRACE, "}": token.RBRACE,
	}
	for src, want := range cases {
		lx := New(src)
		tok := lx.Next()
		if tok.Kind != want {
			t.Errorf("lex(%q) = %v, want %v", src, tok.Kind, want)
		}
		if next := lx.Next(); next.Kind != token.EOF {
			t.Errorf("lex(%q): trailing token %v", src, next)
		}
	}
}

func TestNumberLiterals(t *testing.T) {
	cases := []struct {
		src  string
		kind token.Kind
	}{
		{"0", token.INTLIT},
		{"123", token.INTLIT},
		{"0x1F", token.INTLIT},
		{"42u", token.INTLIT},
		{"42UL", token.INTLIT},
		{"1.5", token.FLOATLIT},
		{"1.5f", token.FLOATLIT},
		{".5", token.FLOATLIT},
		{"1e10", token.FLOATLIT},
		{"1.5e-3", token.FLOATLIT},
		{"2E+4f", token.FLOATLIT},
		{"3f", token.FLOATLIT}, // suffix makes it float
	}
	for _, c := range cases {
		lx := New(c.src)
		tok := lx.Next()
		if tok.Kind != c.kind {
			t.Errorf("lex(%q) = %v (%q), want %v", c.src, tok.Kind, tok.Lit, c.kind)
		}
		if tok.Lit != c.src {
			t.Errorf("lex(%q) literal = %q", c.src, tok.Lit)
		}
	}
}

func TestDotAfterNumberVsMember(t *testing.T) {
	// "v.x" must lex as IDENT PERIOD IDENT, not a float.
	got := kinds("v.x")
	want := []token.Kind{token.IDENT, token.PERIOD, token.IDENT, token.EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("v.x lexed as %v", got)
		}
	}
}

func TestComments(t *testing.T) {
	src := `
// line comment with * and /
a /* block
   comment */ b
`
	got := kinds(src)
	want := []token.Kind{token.IDENT, token.IDENT, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("comments not skipped: %v", got)
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	lx := New("a /* never closed")
	lx.Tokenize()
	if len(lx.Errors()) == 0 {
		t.Fatal("expected an error for unterminated block comment")
	}
}

func TestPositions(t *testing.T) {
	lx := New("a\n  bb\n")
	toks := lx.Tokenize()
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("bb at %v, want 2:3", toks[1].Pos)
	}
}

func TestCharAndStringLiterals(t *testing.T) {
	lx := New(`'x' "hello\n"`)
	toks := lx.Tokenize()
	if toks[0].Kind != token.CHARLIT || toks[0].Lit != "x" {
		t.Errorf("char literal = %v", toks[0])
	}
	if toks[1].Kind != token.STRINGLIT || toks[1].Lit != "hello\n" {
		t.Errorf("string literal = %v", toks[1])
	}
}

func TestIllegalCharacter(t *testing.T) {
	lx := New("a @ b")
	toks := lx.Tokenize()
	found := false
	for _, tok := range toks {
		if tok.Kind == token.ILLEGAL {
			found = true
		}
	}
	if !found || len(lx.Errors()) == 0 {
		t.Fatal("expected ILLEGAL token and error for '@'")
	}
}

func TestEOFIsSticky(t *testing.T) {
	lx := New("")
	for i := 0; i < 3; i++ {
		if tok := lx.Next(); tok.Kind != token.EOF {
			t.Fatalf("Next() after EOF = %v", tok)
		}
	}
}

func TestKeywordRecognition(t *testing.T) {
	got := kinds("__kernel void f(__global const float* restrict p) { return; }")
	want := []token.Kind{
		token.KwKernel, token.KwVoid, token.IDENT, token.LPAREN,
		token.KwGlobal, token.KwConst, token.IDENT, token.MUL, token.KwRestrict,
		token.IDENT, token.RPAREN, token.LBRACE, token.KwReturn, token.SEMICOLON,
		token.RBRACE, token.EOF,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}
