// Package lexer converts OpenCL C source text into a stream of tokens.
//
// The lexer operates on already-preprocessed source (see package
// preproc); it still skips comments so it can be used directly on
// sources that need no macro expansion.
package lexer

import (
	"fmt"
	"strings"

	"maligo/internal/clc/token"
)

// Error is a lexical error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans one compilation unit.
type Lexer struct {
	src  string
	off  int // byte offset of the next unread character
	line int
	col  int
	errs []*Error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errs }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

// skipSpace consumes whitespace and comments.
func (l *Lexer) skipSpace() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next returns the next token. At end of input it returns an EOF token
// indefinitely.
func (l *Lexer) Next() token.Token {
	l.skipSpace()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		return l.lexIdent(pos)
	case isDigit(c) || (c == '.' && isDigit(l.peek2())):
		return l.lexNumber(pos)
	case c == '\'':
		return l.lexChar(pos)
	case c == '"':
		return l.lexString(pos)
	}
	return l.lexOperator(pos)
}

// Tokenize scans the whole input.
func (l *Lexer) Tokenize() []token.Token {
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}

func (l *Lexer) lexIdent(pos token.Pos) token.Token {
	start := l.off
	for l.off < len(l.src) && isIdentCont(l.peek()) {
		l.advance()
	}
	lit := l.src[start:l.off]
	kind := token.Lookup(lit)
	if kind != token.IDENT {
		return token.Token{Kind: kind, Lit: lit, Pos: pos}
	}
	return token.Token{Kind: token.IDENT, Lit: lit, Pos: pos}
}

func (l *Lexer) lexNumber(pos token.Pos) token.Token {
	start := l.off
	isFloat := false
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		for l.off < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
		}
	} else {
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		if l.peek() == '.' {
			isFloat = true
			l.advance()
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		if l.peek() == 'e' || l.peek() == 'E' {
			if isDigit(l.peek2()) || ((l.peek2() == '+' || l.peek2() == '-') && l.off+2 < len(l.src) && isDigit(l.src[l.off+2])) {
				isFloat = true
				l.advance() // e
				if l.peek() == '+' || l.peek() == '-' {
					l.advance()
				}
				for l.off < len(l.src) && isDigit(l.peek()) {
					l.advance()
				}
			}
		}
	}
	// Suffixes: f/F marks float; u/U/l/L are integer suffixes.
	for l.off < len(l.src) {
		switch l.peek() {
		case 'f', 'F':
			isFloat = true
			l.advance()
		case 'u', 'U', 'l', 'L':
			l.advance()
		default:
			goto done
		}
	}
done:
	lit := l.src[start:l.off]
	if isFloat {
		return token.Token{Kind: token.FLOATLIT, Lit: lit, Pos: pos}
	}
	return token.Token{Kind: token.INTLIT, Lit: lit, Pos: pos}
}

func (l *Lexer) lexChar(pos token.Pos) token.Token {
	l.advance() // opening quote
	var sb strings.Builder
	for l.off < len(l.src) && l.peek() != '\'' {
		c := l.advance()
		if c == '\\' && l.off < len(l.src) {
			sb.WriteByte(unescape(l.advance()))
			continue
		}
		sb.WriteByte(c)
	}
	if l.off >= len(l.src) {
		l.errorf(pos, "unterminated character literal")
		return token.Token{Kind: token.ILLEGAL, Lit: sb.String(), Pos: pos}
	}
	l.advance() // closing quote
	if sb.Len() != 1 {
		l.errorf(pos, "character literal must contain exactly one character")
	}
	return token.Token{Kind: token.CHARLIT, Lit: sb.String(), Pos: pos}
}

func (l *Lexer) lexString(pos token.Pos) token.Token {
	l.advance() // opening quote
	var sb strings.Builder
	for l.off < len(l.src) && l.peek() != '"' {
		c := l.advance()
		if c == '\\' && l.off < len(l.src) {
			sb.WriteByte(unescape(l.advance()))
			continue
		}
		if c == '\n' {
			l.errorf(pos, "newline in string literal")
			return token.Token{Kind: token.ILLEGAL, Lit: sb.String(), Pos: pos}
		}
		sb.WriteByte(c)
	}
	if l.off >= len(l.src) {
		l.errorf(pos, "unterminated string literal")
		return token.Token{Kind: token.ILLEGAL, Lit: sb.String(), Pos: pos}
	}
	l.advance()
	return token.Token{Kind: token.STRINGLIT, Lit: sb.String(), Pos: pos}
}

func unescape(c byte) byte {
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	case '\\':
		return '\\'
	case '\'':
		return '\''
	case '"':
		return '"'
	}
	return c
}

func (l *Lexer) lexOperator(pos token.Pos) token.Token {
	c := l.advance()
	two := func(next byte, with, without token.Kind) token.Token {
		if l.peek() == next {
			l.advance()
			return token.Token{Kind: with, Pos: pos}
		}
		return token.Token{Kind: without, Pos: pos}
	}
	switch c {
	case '+':
		if l.peek() == '+' {
			l.advance()
			return token.Token{Kind: token.INC, Pos: pos}
		}
		return two('=', token.ADD_ASSIGN, token.ADD)
	case '-':
		if l.peek() == '-' {
			l.advance()
			return token.Token{Kind: token.DEC, Pos: pos}
		}
		if l.peek() == '>' {
			l.advance()
			return token.Token{Kind: token.ARROW, Pos: pos}
		}
		return two('=', token.SUB_ASSIGN, token.SUB)
	case '*':
		return two('=', token.MUL_ASSIGN, token.MUL)
	case '/':
		return two('=', token.QUO_ASSIGN, token.QUO)
	case '%':
		return two('=', token.REM_ASSIGN, token.REM)
	case '&':
		if l.peek() == '&' {
			l.advance()
			return token.Token{Kind: token.LAND, Pos: pos}
		}
		return two('=', token.AND_ASSIGN, token.AND)
	case '|':
		if l.peek() == '|' {
			l.advance()
			return token.Token{Kind: token.LOR, Pos: pos}
		}
		return two('=', token.OR_ASSIGN, token.OR)
	case '^':
		return two('=', token.XOR_ASSIGN, token.XOR)
	case '~':
		return token.Token{Kind: token.NOT, Pos: pos}
	case '!':
		return two('=', token.NEQ, token.LNOT)
	case '=':
		return two('=', token.EQL, token.ASSIGN)
	case '<':
		if l.peek() == '<' {
			l.advance()
			return two('=', token.SHL_ASSIGN, token.SHL)
		}
		return two('=', token.LEQ, token.LSS)
	case '>':
		if l.peek() == '>' {
			l.advance()
			return two('=', token.SHR_ASSIGN, token.SHR)
		}
		return two('=', token.GEQ, token.GTR)
	case '?':
		return token.Token{Kind: token.QUESTION, Pos: pos}
	case ':':
		return token.Token{Kind: token.COLON, Pos: pos}
	case ';':
		return token.Token{Kind: token.SEMICOLON, Pos: pos}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: pos}
	case '.':
		return token.Token{Kind: token.PERIOD, Pos: pos}
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: pos}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: pos}
	case '[':
		return token.Token{Kind: token.LBRACK, Pos: pos}
	case ']':
		return token.Token{Kind: token.RBRACK, Pos: pos}
	case '{':
		return token.Token{Kind: token.LBRACE, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: pos}
	}
	l.errorf(pos, "illegal character %q", string(rune(c)))
	return token.Token{Kind: token.ILLEGAL, Lit: string(rune(c)), Pos: pos}
}
