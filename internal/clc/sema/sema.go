// Package sema performs semantic analysis of parsed OpenCL C: name
// resolution, type checking, constant folding for array bounds,
// swizzle validation, builtin signature checking, and the structural
// rules of OpenCL C (kernel signatures, address-space constraints, no
// recursion). Its Result feeds the IR lowering in package ir.
package sema

import (
	"fmt"

	"maligo/internal/clc/ast"
	"maligo/internal/clc/builtin"
	"maligo/internal/clc/parser"
	"maligo/internal/clc/token"
	"maligo/internal/clc/types"
)

// Error is a semantic error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// SymKind classifies a resolved symbol.
type SymKind int

// Symbol kinds.
const (
	SymParam SymKind = iota
	SymVar
	SymArray   // fixed-size array variable (private or local)
	SymFileVar // file-scope __constant variable
	SymFunc
)

// Symbol is a named entity visible in some scope.
type Symbol struct {
	Name     string
	Kind     SymKind
	Type     *types.Type      // element type for arrays
	Space    ast.AddressSpace // storage space for arrays / file vars
	ArrayLen int
	Const    bool
	Decl     ast.Node
	Func     *ast.FuncDecl // for SymFunc
}

// CallKind classifies what a CallExpr invokes.
type CallKind int

// Call kinds.
const (
	CallUser CallKind = iota
	CallBuiltin
	CallConvert // convert_<type>() / as_<type>()
)

// CallInfo is sema's resolution of one call site.
type CallInfo struct {
	Kind    CallKind
	Builtin builtin.ID
	Target  *ast.FuncDecl
	ConvTo  *types.Type // for CallConvert
}

// Result carries all facts the lowering pass needs.
type Result struct {
	File      *ast.File
	Types     map[ast.Expr]*types.Type
	Syms      map[*ast.Ident]*Symbol
	Calls     map[*ast.CallExpr]*CallInfo
	Swizzles  map[*ast.MemberExpr][]int
	ArrayLens map[*ast.Declarator]int
	Funcs     map[string]*ast.FuncDecl
	Kernels   []*ast.FuncDecl
	FileVars  []*fileVar
	Typedefs  map[string]*types.Type
	// FuncRets maps each function to its semantic return type.
	FuncRets map[*ast.FuncDecl]*types.Type
	// ParamTypes maps each function param to its semantic type.
	ParamTypes map[*ast.Param]*types.Type
}

type fileVar struct {
	Sym  *Symbol
	Init []float64 // scalar/array initializer values, as float64
	IsFP bool
}

// FileVarInit exposes a file-scope constant's initializer for lowering.
func (r *Result) FileVarInit(sym *Symbol) ([]float64, bool) {
	for _, fv := range r.FileVars {
		if fv.Sym == sym {
			return fv.Init, true
		}
	}
	return nil, false
}

type checker struct {
	res    *Result
	scopes []map[string]*Symbol
	curFn  *ast.FuncDecl
	curRet *types.Type
	loop   int
	errs   []error
}

// Check analyzes a parsed file.
func Check(file *ast.File) (*Result, error) {
	c := &checker{
		res: &Result{
			File:       file,
			Types:      make(map[ast.Expr]*types.Type),
			Syms:       make(map[*ast.Ident]*Symbol),
			Calls:      make(map[*ast.CallExpr]*CallInfo),
			Swizzles:   make(map[*ast.MemberExpr][]int),
			ArrayLens:  make(map[*ast.Declarator]int),
			Funcs:      make(map[string]*ast.FuncDecl),
			Typedefs:   make(map[string]*types.Type),
			FuncRets:   make(map[*ast.FuncDecl]*types.Type),
			ParamTypes: make(map[*ast.Param]*types.Type),
		},
	}
	c.push() // file scope

	// Pass 1: typedefs, file vars, function signatures.
	for _, d := range file.Decls {
		switch d := d.(type) {
		case *ast.TypedefDecl:
			t := c.resolveType(d.Type)
			if t == nil {
				continue
			}
			c.res.Typedefs[d.Name] = t
		case *ast.FileVarDecl:
			c.checkFileVar(d)
		case *ast.FuncDecl:
			if _, dup := c.res.Funcs[d.Name]; dup {
				c.errorf(d.Pos(), "function %s redefined", d.Name)
				continue
			}
			c.res.Funcs[d.Name] = d
			ret := c.resolveType(d.Ret)
			if ret == nil {
				ret = types.VoidType
			}
			c.res.FuncRets[d] = ret
			if d.IsKernel {
				if !ret.IsVoid() {
					c.errorf(d.Pos(), "kernel %s must return void", d.Name)
				}
				c.res.Kernels = append(c.res.Kernels, d)
			}
			for _, p := range d.Params {
				pt := c.resolveType(p.Type)
				if pt == nil {
					pt = types.IntType
				}
				c.res.ParamTypes[p] = pt
				if d.IsKernel && pt.IsPointer() && pt.Space == ast.PrivateSpace {
					c.errorf(p.Type.Pos(), "kernel pointer argument %s must be __global, __local or __constant", p.Name)
				}
			}
		}
	}

	// Pass 2: function bodies. Redefinitions diagnosed in pass 1 have
	// no recorded signature and are skipped.
	for _, d := range file.Decls {
		fn, ok := d.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if _, known := c.res.FuncRets[fn]; !known {
			continue
		}
		c.checkFunc(fn)
	}

	c.checkNoRecursion()

	if len(c.errs) > 0 {
		return nil, c.errs[0]
	}
	return c.res, nil
}

// Compile is a convenience that parses and checks in one step.
func Compile(name, src string) (*Result, error) {
	file, err := parser.Parse(name, src)
	if err != nil {
		return nil, err
	}
	return Check(file)
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) push() { c.scopes = append(c.scopes, make(map[string]*Symbol)) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(sym *Symbol, pos token.Pos) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[sym.Name]; dup {
		c.errorf(pos, "%s redeclared in this scope", sym.Name)
		return
	}
	top[sym.Name] = sym
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

// resolveType converts a source TypeName to a semantic type.
func (c *checker) resolveType(tn *ast.TypeName) *types.Type {
	var base *types.Type
	if t, ok := c.res.Typedefs[tn.Name]; ok {
		base = t
	} else {
		base = types.ByName(tn.Name)
	}
	if base == nil {
		c.errorf(tn.Pos(), "unknown type %q", tn.Name)
		return nil
	}
	t := base
	for i := 0; i < tn.PtrDepth; i++ {
		t = types.Pointer(t, tn.Space, tn.Const, tn.Restrict)
	}
	if tn.PtrDepth == 0 && t.IsVoid() {
		return types.VoidType
	}
	return t
}

func (c *checker) checkFileVar(d *ast.FileVarDecl) {
	t := c.resolveType(d.Type)
	if t == nil {
		return
	}
	if d.Type.Space != ast.ConstantSpace {
		c.errorf(d.Pos(), "file-scope variables must be __constant in OpenCL C")
		return
	}
	for _, dec := range d.Decls {
		sym := &Symbol{Name: dec.Name, Kind: SymFileVar, Type: t, Space: ast.ConstantSpace, Const: true, Decl: d}
		n := 0
		var vals []float64
		if dec.ArrayLen != nil {
			ln, ok := c.constInt(dec.ArrayLen)
			if !ok || ln <= 0 {
				c.errorf(dec.NamePos, "array length of %s must be a positive integer constant", dec.Name)
				continue
			}
			n = int(ln)
			sym.Kind = SymFileVar
			sym.ArrayLen = n
		}
		if dec.Init == nil {
			c.errorf(dec.NamePos, "__constant variable %s must be initialized", dec.Name)
			continue
		}
		if agg, ok := dec.Init.(*ast.VectorLit); ok && agg.To == nil {
			for _, e := range agg.Elems {
				v, ok := c.constFloat(e)
				if !ok {
					c.errorf(e.Pos(), "initializer element must be constant")
					v = 0
				}
				vals = append(vals, v)
			}
			if n == 0 {
				n = len(vals)
				sym.ArrayLen = n
			}
			if len(vals) > n {
				c.errorf(dec.NamePos, "too many initializers for %s", dec.Name)
			}
			for len(vals) < n {
				vals = append(vals, 0)
			}
		} else {
			v, ok := c.constFloat(dec.Init)
			if !ok {
				c.errorf(dec.Init.Pos(), "__constant initializer must be constant")
			}
			vals = []float64{v}
		}
		c.res.ArrayLens[dec] = sym.ArrayLen
		c.declare(sym, dec.NamePos)
		c.res.FileVars = append(c.res.FileVars, &fileVar{Sym: sym, Init: vals, IsFP: t.Base.IsFloat()})
	}
}

func (c *checker) checkFunc(fn *ast.FuncDecl) {
	c.curFn = fn
	c.curRet = c.res.FuncRets[fn]
	c.push()
	for _, p := range fn.Params {
		pt := c.res.ParamTypes[p]
		if p.Name == "" {
			continue
		}
		c.declare(&Symbol{Name: p.Name, Kind: SymParam, Type: pt, Space: spaceOf(pt), Const: pt.IsPointer() && pt.Const, Decl: p}, p.NamePos)
	}
	c.checkBlock(fn.Body)
	c.pop()
	c.curFn = nil
}

func spaceOf(t *types.Type) ast.AddressSpace {
	if t.IsPointer() {
		return t.Space
	}
	return ast.PrivateSpace
}

func (c *checker) checkBlock(b *ast.BlockStmt) {
	c.push()
	for _, s := range b.List {
		c.checkStmt(s)
	}
	c.pop()
}

func (c *checker) checkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.checkBlock(s)
	case *ast.EmptyStmt:
	case *ast.DeclStmt:
		c.checkDecl(s)
	case *ast.ExprStmt:
		c.checkExpr(s.X)
	case *ast.IfStmt:
		ct := c.checkExpr(s.Cond)
		c.wantScalarCond(ct, s.Cond)
		c.checkStmt(s.Then)
		if s.Else != nil {
			c.checkStmt(s.Else)
		}
	case *ast.ForStmt:
		c.push()
		if s.Init != nil {
			c.checkStmt(s.Init)
		}
		if s.Cond != nil {
			c.wantScalarCond(c.checkExpr(s.Cond), s.Cond)
		}
		if s.Post != nil {
			c.checkExpr(s.Post)
		}
		c.loop++
		c.checkStmt(s.Body)
		c.loop--
		c.pop()
	case *ast.WhileStmt:
		c.wantScalarCond(c.checkExpr(s.Cond), s.Cond)
		c.loop++
		c.checkStmt(s.Body)
		c.loop--
	case *ast.DoWhileStmt:
		c.loop++
		c.checkStmt(s.Body)
		c.loop--
		c.wantScalarCond(c.checkExpr(s.Cond), s.Cond)
	case *ast.ReturnStmt:
		if s.X == nil {
			if c.curRet != nil && !c.curRet.IsVoid() {
				c.errorf(s.Pos(), "missing return value in %s", c.curFn.Name)
			}
			return
		}
		t := c.checkExpr(s.X)
		if c.curRet == nil || c.curRet.IsVoid() {
			c.errorf(s.Pos(), "return with value in void function %s", c.curFn.Name)
			return
		}
		if t != nil && !c.assignable(c.curRet, t) {
			c.errorf(s.Pos(), "cannot return %s as %s", t, c.curRet)
		}
	case *ast.BreakStmt, *ast.ContinueStmt:
		if c.loop == 0 {
			c.errorf(s.Pos(), "break/continue outside loop")
		}
	default:
		c.errorf(s.Pos(), "unsupported statement")
	}
}

func (c *checker) wantScalarCond(t *types.Type, e ast.Expr) {
	if t == nil {
		return
	}
	if !t.IsScalar() && !t.IsPointer() {
		c.errorf(e.Pos(), "condition must be scalar, got %s", t)
	}
}

func (c *checker) checkDecl(s *ast.DeclStmt) {
	base := c.resolveType(s.Type)
	if base == nil {
		return
	}
	space := s.Type.Space
	for _, dec := range s.Decls {
		t := base
		for i := 0; i < dec.PtrDepth; i++ {
			t = types.Pointer(t, space, s.Type.Const, s.Type.Restrict)
		}
		if dec.ArrayLen != nil {
			ln, ok := c.constInt(dec.ArrayLen)
			if !ok || ln <= 0 {
				c.errorf(dec.NamePos, "array length of %s must be a positive integer constant", dec.Name)
				continue
			}
			if t.IsPointer() {
				c.errorf(dec.NamePos, "arrays of pointers are not supported")
				continue
			}
			sym := &Symbol{Name: dec.Name, Kind: SymArray, Type: t, Space: space, ArrayLen: int(ln), Const: s.Type.Const, Decl: s}
			c.res.ArrayLens[dec] = int(ln)
			c.declare(sym, dec.NamePos)
			if dec.Init != nil {
				c.errorf(dec.NamePos, "array initializers are only supported for file-scope __constant arrays")
			}
			continue
		}
		if space == ast.LocalSpace && !t.IsPointer() {
			c.errorf(dec.NamePos, "__local variables must be arrays in the clc dialect (use __local T name[N])")
			continue
		}
		sym := &Symbol{Name: dec.Name, Kind: SymVar, Type: t, Space: ast.PrivateSpace, Const: s.Type.Const && !t.IsPointer(), Decl: s}
		if dec.Init != nil {
			it := c.checkExpr(dec.Init)
			if it != nil && !c.assignable(t, it) {
				c.errorf(dec.Init.Pos(), "cannot initialize %s (%s) with %s", dec.Name, t, it)
			}
		}
		c.declare(sym, dec.NamePos)
	}
}

// assignable reports whether a value of type 'from' can be assigned to
// type 'to', applying C implicit conversion rules extended with OpenCL
// scalar-to-vector splats.
func (c *checker) assignable(to, from *types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	if to.Equal(from) {
		return true
	}
	if to.IsArith() && from.IsArith() {
		if to.IsVector() && from.IsVector() {
			return to.Width == from.Width // implicit vector base conversion allowed
		}
		if to.IsVector() && from.IsScalar() {
			return true // splat
		}
		if to.IsScalar() && from.IsVector() {
			return false
		}
		return true
	}
	if to.IsPointer() && from.IsPointer() {
		// Same space; element types must match or one side void.
		if to.Space != from.Space {
			return false
		}
		return to.Elem.Equal(from.Elem) || to.Elem.IsVoid() || from.Elem.IsVoid()
	}
	if to.IsScalar() && to.Base.IsInteger() && from.IsPointer() {
		return false
	}
	return false
}
