package sema

import (
	"strings"
	"testing"

	"maligo/internal/clc/types"
)

func check(t *testing.T, src string) *Result {
	t.Helper()
	res, err := Compile("test.cl", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return res
}

func wantError(t *testing.T, src, fragment string) {
	t.Helper()
	_, err := Compile("bad.cl", src)
	if err == nil {
		t.Fatalf("expected error containing %q, got none", fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("error %q does not contain %q", err, fragment)
	}
}

func TestSimpleKernel(t *testing.T) {
	res := check(t, `
__kernel void k(__global const float* a, __global float* b, const uint n) {
    size_t i = get_global_id(0);
    if (i < n) {
        b[i] = a[i] * 2.0f;
    }
}`)
	if len(res.Kernels) != 1 || res.Kernels[0].Name != "k" {
		t.Fatalf("kernels = %v", res.Kernels)
	}
}

func TestTypeAnnotations(t *testing.T) {
	res := check(t, `
__kernel void k(__global float* p) {
    float4 v = (float4)(1.0f, 2.0f, 3.0f, 4.0f);
    float s = dot(v, v);
    p[0] = s + v.w;
}`)
	// Every expression node must carry a type.
	count := 0
	for _, ty := range res.Types {
		if ty == nil {
			t.Fatal("nil type recorded")
		}
		count++
	}
	if count < 10 {
		t.Fatalf("too few typed expressions: %d", count)
	}
}

func TestKernelMustReturnVoid(t *testing.T) {
	wantError(t, `__kernel int k(void) { return 1; }`, "must return void")
}

func TestKernelPointerSpace(t *testing.T) {
	wantError(t, `__kernel void k(float* p) { }`, "__global, __local or __constant")
}

func TestUndeclared(t *testing.T) {
	wantError(t, `__kernel void k(void) { x = 1; }`, "undeclared")
}

func TestRedeclared(t *testing.T) {
	wantError(t, `__kernel void k(void) { int x = 1; float x = 2.0f; }`, "redeclared")
}

func TestScopeShadowingAllowed(t *testing.T) {
	check(t, `__kernel void k(__global int* p) {
		int x = 1;
		{ float x = 2.0f; p[0] = (int)x; }
		p[1] = x;
	}`)
}

func TestConstAssignment(t *testing.T) {
	wantError(t, `__kernel void k(void) { const int x = 1; x = 2; }`, "cannot assign to const")
}

func TestConstantPointerStore(t *testing.T) {
	wantError(t, `__kernel void k(__global const float* p) { p[0] = 1.0f; }`, "const")
}

func TestRecursionRejected(t *testing.T) {
	wantError(t, `
int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }
__kernel void k(__global int* p) { p[0] = fact(5); }
`, "recursive")
}

func TestMutualRecursionRejected(t *testing.T) {
	wantError(t, `
int g(int n);
int f(int n) { return g(n); }
int g(int n) { return f(n); }
__kernel void k(__global int* p) { p[0] = f(1); }
`, "")
}

func TestBadSwizzle(t *testing.T) {
	wantError(t, `__kernel void k(void) { float2 v; float x = v.z; }`, "component")
}

func TestSwizzleRecorded(t *testing.T) {
	res := check(t, `__kernel void k(__global float* p) {
		float4 v = (float4)(1.0f);
		p[0] = v.w;
		float2 h = v.hi;
		p[1] = h.x;
	}`)
	found := 0
	for _, idx := range res.Swizzles {
		found++
		if len(idx) == 0 {
			t.Fatal("empty swizzle")
		}
	}
	if found != 3 {
		t.Fatalf("swizzles recorded = %d, want 3", found)
	}
}

func TestParseSwizzle(t *testing.T) {
	cases := []struct {
		sel   string
		width int
		want  []int
		ok    bool
	}{
		{"x", 4, []int{0}, true},
		{"w", 4, []int{3}, true},
		{"xyzw", 4, []int{0, 1, 2, 3}, true},
		{"xy", 2, []int{0, 1}, true},
		{"s0", 8, []int{0}, true},
		{"s7", 8, []int{7}, true},
		{"s01", 4, []int{0, 1}, true},
		{"lo", 4, []int{0, 1}, true},
		{"hi", 4, []int{2, 3}, true},
		{"even", 4, []int{0, 2}, true},
		{"odd", 4, []int{1, 3}, true},
		{"z", 2, nil, false},
		{"s9", 8, nil, false},
		{"q", 4, nil, false},
	}
	for _, c := range cases {
		got, ok := ParseSwizzle(c.sel, c.width)
		if ok != c.ok {
			t.Errorf("ParseSwizzle(%q, %d) ok = %v, want %v", c.sel, c.width, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("ParseSwizzle(%q, %d) = %v, want %v", c.sel, c.width, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ParseSwizzle(%q, %d) = %v, want %v", c.sel, c.width, got, c.want)
				break
			}
		}
	}
}

func TestVectorWidthMismatch(t *testing.T) {
	wantError(t, `__kernel void k(void) { float4 a; float2 b; float4 c = a + b; }`, "width")
}

func TestVectorLiteralCount(t *testing.T) {
	wantError(t, `__kernel void k(void) { float4 v = (float4)(1.0f, 2.0f); }`, "components")
}

func TestBuiltinSignatures(t *testing.T) {
	check(t, `__kernel void k(__global float* p, __global int* q) {
		float4 v = (float4)(2.0f);
		p[0] = sqrt(p[1]) + fmax(p[2], 1.0f) + dot(v, v) + length(v);
		p[1] = clamp(p[1], 0.0f, 1.0f) + mad(p[2], p[3], p[4]);
		q[0] = min(q[1], 7) + abs(q[2]);
		q[1] = (int)get_local_size(0);
		atomic_add(&q[0], 1);
		barrier(1);
	}`)
}

func TestBuiltinArity(t *testing.T) {
	wantError(t, `__kernel void k(__global float* p) { p[0] = sqrt(p[0], p[1]); }`, "expects")
}

func TestSqrtOnInt(t *testing.T) {
	wantError(t, `__kernel void k(__global int* p) { p[0] = (int)sqrt(p[0]); }`, "floating-point")
}

func TestAtomicPointerChecks(t *testing.T) {
	wantError(t, `__kernel void k(__global float* p) { atomic_add(&p[0], 1); }`, "int or uint")
}

func TestVloadTyping(t *testing.T) {
	res := check(t, `__kernel void k(__global const float* p, __global float* q) {
		float4 v = vload4(0, p);
		vstore4(v, 0, q);
	}`)
	_ = res
	wantError(t, `__kernel void k(__global const float* p) { float2 v = vload4(0, p); }`, "initialize")
}

func TestConvertFunctions(t *testing.T) {
	check(t, `__kernel void k(__global float* p, __global int* q) {
		int4 iv = (int4)(1);
		float4 fv = convert_float4(iv);
		q[0] = convert_int(p[0]);
		p[0] = fv.x;
	}`)
	wantError(t, `__kernel void k(void) { int4 v = (int4)(1); float2 f = convert_float2(v); }`, "width")
}

func TestCallUndefined(t *testing.T) {
	wantError(t, `__kernel void k(void) { frob(1); }`, "undefined function")
}

func TestCallKernelFromDevice(t *testing.T) {
	wantError(t, `
__kernel void a(__global int* p) { p[0] = 1; }
__kernel void b(__global int* p) { a(p); }
`, "kernels cannot be called")
}

func TestArgumentCountAndTypes(t *testing.T) {
	wantError(t, `
float f(float x, float y) { return x + y; }
__kernel void k(__global float* p) { p[0] = f(1.0f); }
`, "expects 2 arguments")
}

func TestFileScopeConstant(t *testing.T) {
	res := check(t, `
__constant float w[4] = {1.0f, 2.0f, 3.0f, 4.0f};
__kernel void k(__global float* p) { p[0] = w[2]; }
`)
	if len(res.FileVars) != 1 {
		t.Fatalf("file vars = %d", len(res.FileVars))
	}
	init, ok := res.FileVarInit(res.FileVars[0].Sym)
	if !ok || len(init) != 4 || init[2] != 3 {
		t.Fatalf("init = %v", init)
	}
}

func TestFileScopeMustBeConstant(t *testing.T) {
	wantError(t, `__global float g = 1.0f;`, "__constant")
}

func TestLocalScalarRejected(t *testing.T) {
	wantError(t, `__kernel void k(void) { __local float x; }`, "__local")
}

func TestBreakOutsideLoop(t *testing.T) {
	wantError(t, `__kernel void k(void) { break; }`, "outside loop")
}

func TestConditionMustBeScalar(t *testing.T) {
	wantError(t, `__kernel void k(void) { float4 v = (float4)(1.0f); if (v) {} }`, "scalar")
}

func TestVectorTernary(t *testing.T) {
	check(t, `__kernel void k(__global float* p) {
		float4 a = (float4)(1.0f);
		float4 b = (float4)(2.0f);
		int4 m = a < b;
		float4 r = m ? a : b;
		p[0] = r.x;
	}`)
}

func TestIntLiteralTypes(t *testing.T) {
	res := check(t, `__kernel void k(__global ulong* p) { p[0] = 1u + 2; }`)
	found := false
	for e, ty := range res.Types {
		_ = e
		if ty.Equal(types.UIntType) {
			found = true
		}
	}
	if !found {
		t.Fatal("no uint-typed expression found (1u)")
	}
}

func TestFuncRedefinition(t *testing.T) {
	wantError(t, `
float f(float x) { return x; }
float f(float x) { return x + 1.0f; }
`, "redefined")
}

func TestPointerComparisonsAndArithmetic(t *testing.T) {
	check(t, `__kernel void k(__global float* p, __global float* q, __global long* out) {
		out[0] = q - p;
		out[1] = (long)(p < q);
		__global float* r = p + 4;
		r += 2;
		r--;
		out[2] = r - p;
	}`)
}

func TestDerefAndAddressOf(t *testing.T) {
	check(t, `__kernel void k(__global float* p, __global int* bins) {
		*p = 1.0f;
		float v = *(p + 3);
		p[1] = v;
		atomic_add(&bins[2], 1);
	}`)
	wantError(t, `__kernel void k(void) { float x; float* px = &x; }`, "address-of")
}

func TestTernaryMismatchedArms(t *testing.T) {
	wantError(t, `__kernel void k(__global float* p, __global int* q) {
		p[0] = (p[0] > 0.0f) ? p : q;
	}`, "")
}

func TestPostfixOnRValue(t *testing.T) {
	wantError(t, `__kernel void k(void) { int x = 1; (x + 1)++; }`, "lvalue")
}

func TestAssignToRValue(t *testing.T) {
	wantError(t, `__kernel void k(void) { int x; x + 1 = 3; }`, "lvalue")
}

func TestBitwiseOnFloats(t *testing.T) {
	wantError(t, `__kernel void k(void) { float a; float b; float c = a & b; }`, "integer")
}

func TestRemainderOnFloats(t *testing.T) {
	wantError(t, `__kernel void k(void) { float a; float c = a % 2.0f; }`, "integer")
}

func TestVectorCondTernaryWidthMismatch(t *testing.T) {
	wantError(t, `__kernel void k(void) {
		float4 a = (float4)(1.0f);
		float2 b = (float2)(1.0f);
		int4 m = a < a;
		float2 r = m ? b : b;
	}`, "")
}

func TestSwizzleWriteComposition(t *testing.T) {
	res := check(t, `__kernel void k(__global float* p) {
		float4 v = (float4)(1.0f, 2.0f, 3.0f, 4.0f);
		v.hi.x = 9.0f; // composed swizzle write: lane 2
		p[0] = v.z;
	}`)
	_ = res
}

func TestUnknownTypeName(t *testing.T) {
	wantError(t, `__kernel void k(__global quux* p) { }`, "expected type name")
}

func TestTypedefResolution(t *testing.T) {
	check(t, `
typedef float real_t;
__kernel void k(__global real_t* p) {
	real_t v = p[0] * (real_t)2;
	p[0] = v;
}`)
}

func TestNegativeArrayLength(t *testing.T) {
	wantError(t, `__kernel void k(void) { float a[0 - 4]; }`, "positive")
}

func TestNonConstantArrayLength(t *testing.T) {
	wantError(t, `__kernel void k(const int n) { float a[n]; }`, "constant")
}

func TestSizeofConstantFolding(t *testing.T) {
	check(t, `
__constant int sz = sizeof(float4);
__kernel void k(__global int* p) { p[0] = sz; }
`)
}
