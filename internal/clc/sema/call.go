package sema

import (
	"sort"
	"strings"

	"maligo/internal/clc/ast"
	"maligo/internal/clc/builtin"
	"maligo/internal/clc/token"
	"maligo/internal/clc/types"
)

func (c *checker) callType(e *ast.CallExpr) *types.Type {
	name := e.Fun.Name

	// convert_<type>() and as_<type>() conversions.
	if strings.HasPrefix(name, "convert_") || strings.HasPrefix(name, "as_") {
		target := strings.TrimPrefix(strings.TrimPrefix(name, "convert_"), "as_")
		// Strip rounding/saturation suffixes like _sat or _rte.
		if i := strings.Index(target, "_"); i >= 0 {
			target = target[:i]
		}
		to := types.ByName(target)
		if to == nil || to.IsVoid() {
			c.errorf(e.Pos(), "unknown conversion target in %s", name)
			return nil
		}
		if len(e.Args) != 1 {
			c.errorf(e.Pos(), "%s takes exactly one argument", name)
			return nil
		}
		at := c.checkExpr(e.Args[0])
		if at == nil {
			return nil
		}
		if !at.IsArith() {
			c.errorf(e.Pos(), "%s requires an arithmetic argument, got %s", name, at)
			return nil
		}
		aw, tw := 1, 1
		if at.IsVector() {
			aw = at.Width
		}
		if to.IsVector() {
			tw = to.Width
		}
		if aw != tw {
			c.errorf(e.Pos(), "%s: width mismatch (%s -> %s)", name, at, to)
			return nil
		}
		c.res.Calls[e] = &CallInfo{Kind: CallConvert, ConvTo: to}
		return to
	}

	// User-defined functions shadow nothing: OpenCL builtins are
	// reserved, so check user functions first only when not a builtin.
	if id := builtin.Lookup(name); id != builtin.Invalid {
		return c.builtinType(e, id)
	}

	fn, ok := c.res.Funcs[name]
	if !ok {
		c.errorf(e.Pos(), "call to undefined function %q", name)
		return nil
	}
	if fn.IsKernel {
		c.errorf(e.Pos(), "kernels cannot be called from device code in OpenCL 1.x")
		return nil
	}
	if len(e.Args) != len(fn.Params) {
		c.errorf(e.Pos(), "%s expects %d arguments, got %d", name, len(fn.Params), len(e.Args))
		return nil
	}
	for i, a := range e.Args {
		at := c.checkExpr(a)
		pt := c.res.ParamTypes[fn.Params[i]]
		if at == nil || pt == nil {
			continue
		}
		if !c.assignable(pt, at) {
			c.errorf(a.Pos(), "argument %d of %s: cannot pass %s as %s", i+1, name, at, pt)
		}
	}
	c.res.Calls[e] = &CallInfo{Kind: CallUser, Target: fn}
	return c.res.FuncRets[fn]
}

func (c *checker) builtinType(e *ast.CallExpr, id builtin.ID) *types.Type {
	args := make([]*types.Type, len(e.Args))
	for i, a := range e.Args {
		args[i] = c.checkExpr(a)
		if args[i] == nil {
			return nil
		}
	}
	record := func(t *types.Type) *types.Type {
		c.res.Calls[e] = &CallInfo{Kind: CallBuiltin, Builtin: id}
		return t
	}
	wantArgs := func(n int) bool {
		if len(args) != n {
			c.errorf(e.Pos(), "%s expects %d arguments, got %d", id, n, len(args))
			return false
		}
		return true
	}

	switch {
	case id.IsWorkItemQuery():
		if !wantArgs(1) {
			return nil
		}
		if !args[0].IsScalar() || !args[0].Base.IsInteger() {
			c.errorf(e.Pos(), "%s dimension must be an integer", id)
		}
		return record(types.ULongType)
	case id == builtin.GetWorkDim:
		if !wantArgs(0) {
			return nil
		}
		return record(types.UIntType)
	case id == builtin.Barrier, id == builtin.MemFence:
		if !wantArgs(1) {
			return nil
		}
		if c.curFn != nil && !c.curFn.IsKernel {
			// Allowed in helpers too (inlined), but record for clarity.
		}
		return record(types.VoidType)
	}

	if w, ok := id.IsVload(); ok {
		if !wantArgs(2) {
			return nil
		}
		off, ptr := args[0], args[1]
		if !off.IsScalar() || !off.Base.IsInteger() {
			c.errorf(e.Args[0].Pos(), "vload offset must be an integer")
		}
		if !ptr.IsPointer() || !ptr.Elem.IsScalar() {
			c.errorf(e.Args[1].Pos(), "vload pointer must point to a scalar type, got %s", ptr)
			return nil
		}
		return record(types.Vector(ptr.Elem.Base, w))
	}
	if w, ok := id.IsVstore(); ok {
		if !wantArgs(3) {
			return nil
		}
		data, off, ptr := args[0], args[1], args[2]
		if !off.IsScalar() || !off.Base.IsInteger() {
			c.errorf(e.Args[1].Pos(), "vstore offset must be an integer")
		}
		if !ptr.IsPointer() || !ptr.Elem.IsScalar() {
			c.errorf(e.Args[2].Pos(), "vstore pointer must point to a scalar type, got %s", ptr)
			return nil
		}
		if ptr.Const || ptr.Space == ast.ConstantSpace {
			c.errorf(e.Args[2].Pos(), "vstore through const/__constant pointer")
		}
		if !data.IsVector() || data.Width != w || data.Base != ptr.Elem.Base {
			c.errorf(e.Args[0].Pos(), "vstore%d data must be %s%d, got %s", w, ptr.Elem.Base, w, data)
		}
		return record(types.VoidType)
	}

	if id.IsAtomic() {
		nargs := 2
		switch id {
		case builtin.AtomicInc, builtin.AtomicDec:
			nargs = 1
		case builtin.AtomicCmpXchg:
			nargs = 3
		}
		if !wantArgs(nargs) {
			return nil
		}
		ptr := args[0]
		if !ptr.IsPointer() || !ptr.Elem.IsScalar() ||
			!(ptr.Elem.Base == types.Int || ptr.Elem.Base == types.UInt) {
			c.errorf(e.Args[0].Pos(), "%s requires a pointer to int or uint, got %s", id, ptr)
			return nil
		}
		if ptr.Space != ast.GlobalSpace && ptr.Space != ast.LocalSpace {
			c.errorf(e.Args[0].Pos(), "%s requires a __global or __local pointer", id)
		}
		for i := 1; i < nargs; i++ {
			if !args[i].IsScalar() || !args[i].Base.IsInteger() {
				c.errorf(e.Args[i].Pos(), "%s operand must be an integer", id)
			}
		}
		return record(ptr.Elem)
	}

	switch id {
	case builtin.Sqrt, builtin.Rsqrt, builtin.Cbrt, builtin.Exp, builtin.Exp2,
		builtin.Log, builtin.Log2, builtin.Sin, builtin.Cos, builtin.Tan,
		builtin.Fabs, builtin.Floor, builtin.Ceil, builtin.Round, builtin.Trunc,
		builtin.NativeSin, builtin.NativeCos, builtin.NativeExp, builtin.NativeLog,
		builtin.NativeSqrt, builtin.NativeRsqrt, builtin.NativeRecip, builtin.Normalize:
		if !wantArgs(1) {
			return nil
		}
		if !args[0].IsFloatArith() {
			c.errorf(e.Pos(), "%s requires a floating-point argument, got %s", id, args[0])
			return nil
		}
		return record(args[0])
	case builtin.Pow, builtin.Hypot, builtin.Fmin, builtin.Fmax, builtin.Fmod,
		builtin.Step, builtin.NativeDivide:
		if !wantArgs(2) {
			return nil
		}
		t := c.genType2(e, args[0], args[1])
		if t == nil {
			return nil
		}
		if !t.IsFloatArith() {
			c.errorf(e.Pos(), "%s requires floating-point arguments", id)
			return nil
		}
		return record(t)
	case builtin.Fma, builtin.Mad, builtin.Mix:
		if !wantArgs(3) {
			return nil
		}
		t := c.genType2(e, args[0], args[1])
		if t == nil {
			return nil
		}
		t = c.genType2(e, t, args[2])
		if t == nil {
			return nil
		}
		if !t.IsFloatArith() {
			c.errorf(e.Pos(), "%s requires floating-point arguments", id)
			return nil
		}
		return record(t)
	case builtin.Min, builtin.Max:
		if !wantArgs(2) {
			return nil
		}
		t := c.genType2(e, args[0], args[1])
		if t == nil {
			return nil
		}
		return record(t)
	case builtin.Abs:
		if !wantArgs(1) {
			return nil
		}
		if !args[0].IsIntegerArith() {
			c.errorf(e.Pos(), "abs requires an integer argument (use fabs for floats), got %s", args[0])
			return nil
		}
		return record(args[0])
	case builtin.Clamp:
		if !wantArgs(3) {
			return nil
		}
		t := c.genType2(e, args[0], args[1])
		if t == nil {
			return nil
		}
		t = c.genType2(e, t, args[2])
		if t == nil {
			return nil
		}
		return record(t)
	case builtin.Select:
		if !wantArgs(3) {
			return nil
		}
		t := c.genType2(e, args[0], args[1])
		if t == nil {
			return nil
		}
		if !args[2].IsIntegerArith() {
			c.errorf(e.Args[2].Pos(), "select condition must be an integer type, got %s", args[2])
		}
		return record(t)
	case builtin.Dot:
		if !wantArgs(2) {
			return nil
		}
		if !args[0].IsFloatArith() || !args[0].Equal(args[1]) {
			c.errorf(e.Pos(), "dot requires two equal float vectors, got %s and %s", args[0], args[1])
			return nil
		}
		return record(types.Scalar(args[0].Base))
	case builtin.Length:
		if !wantArgs(1) {
			return nil
		}
		if !args[0].IsFloatArith() {
			c.errorf(e.Pos(), "length requires a float vector")
			return nil
		}
		return record(types.Scalar(args[0].Base))
	case builtin.Distance:
		if !wantArgs(2) {
			return nil
		}
		if !args[0].IsFloatArith() || !args[0].Equal(args[1]) {
			c.errorf(e.Pos(), "distance requires two equal float vectors")
			return nil
		}
		return record(types.Scalar(args[0].Base))
	}
	c.errorf(e.Pos(), "builtin %s is not supported", id)
	return nil
}

// genType2 merges two gentype arguments per the OpenCL convention that
// one of them may be a scalar matched against a vector.
func (c *checker) genType2(e *ast.CallExpr, a, b *types.Type) *types.Type {
	t, err := types.Promote(a, b)
	if err != nil {
		c.errorf(e.Pos(), "%v", err)
		return nil
	}
	return t
}

// --- constant folding --------------------------------------------------------

// constInt evaluates an integer constant expression.
func (c *checker) constInt(e ast.Expr) (int64, bool) {
	v, isFloat, ok := c.constVal(e)
	if !ok || isFloat {
		return 0, false
	}
	return int64(v), true
}

// constFloat evaluates a numeric constant expression to float64.
func (c *checker) constFloat(e ast.Expr) (float64, bool) {
	v, _, ok := c.constVal(e)
	return v, ok
}

func (c *checker) constVal(e ast.Expr) (val float64, isFloat, ok bool) {
	switch e := e.(type) {
	case *ast.IntLit:
		return float64(e.Value), false, true
	case *ast.FloatLit:
		return e.Value, true, true
	case *ast.ParenExpr:
		return c.constVal(e.X)
	case *ast.UnaryExpr:
		v, f, ok := c.constVal(e.X)
		if !ok {
			return 0, false, false
		}
		switch e.Op {
		case token.SUB:
			return -v, f, true
		case token.NOT:
			if f {
				return 0, false, false
			}
			return float64(^int64(v)), false, true
		case token.LNOT:
			if v == 0 {
				return 1, false, true
			}
			return 0, false, true
		}
		return 0, false, false
	case *ast.BinaryExpr:
		x, fx, ok := c.constVal(e.X)
		if !ok {
			return 0, false, false
		}
		y, fy, ok := c.constVal(e.Y)
		if !ok {
			return 0, false, false
		}
		f := fx || fy
		if !f {
			xi, yi := int64(x), int64(y)
			switch e.Op {
			case token.ADD:
				return float64(xi + yi), false, true
			case token.SUB:
				return float64(xi - yi), false, true
			case token.MUL:
				return float64(xi * yi), false, true
			case token.QUO:
				if yi == 0 {
					return 0, false, false
				}
				return float64(xi / yi), false, true
			case token.REM:
				if yi == 0 {
					return 0, false, false
				}
				return float64(xi % yi), false, true
			case token.SHL:
				return float64(xi << uint(yi)), false, true
			case token.SHR:
				return float64(xi >> uint(yi)), false, true
			case token.AND:
				return float64(xi & yi), false, true
			case token.OR:
				return float64(xi | yi), false, true
			case token.XOR:
				return float64(xi ^ yi), false, true
			}
		}
		switch e.Op {
		case token.ADD:
			return x + y, f, true
		case token.SUB:
			return x - y, f, true
		case token.MUL:
			return x * y, f, true
		case token.QUO:
			if y == 0 {
				return 0, false, false
			}
			return x / y, f, true
		}
		return 0, false, false
	case *ast.SizeofExpr:
		t := c.resolveType(e.To)
		if t == nil {
			return 0, false, false
		}
		return float64(t.Size()), false, true
	}
	return 0, false, false
}

// --- recursion check ---------------------------------------------------------

// checkNoRecursion rejects call cycles: OpenCL C forbids recursion and
// the lowering pass relies on full inlining terminating.
func (c *checker) checkNoRecursion() {
	callees := make(map[string][]string)
	for name, fn := range c.res.Funcs { // maligo:allow maporder fills the callees map keyed by function name
		var list []string
		collectCalls(fn.Body, func(call *ast.CallExpr) {
			if info := c.res.Calls[call]; info != nil && info.Kind == CallUser {
				list = append(list, info.Target.Name)
			}
		})
		callees[name] = list
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var visit func(string) bool
	visit = func(name string) bool {
		switch color[name] {
		case gray:
			return false
		case black:
			return true
		}
		color[name] = gray
		for _, callee := range callees[name] {
			if !visit(callee) {
				if len(c.errs) == 0 || color[name] == gray {
					fn := c.res.Funcs[name]
					c.errorf(fn.Pos(), "recursive call chain involving %s is illegal in OpenCL C", name)
				}
				color[name] = black
				return false
			}
		}
		color[name] = black
		return true
	}
	names := make([]string, 0, len(callees))
	for name := range callees { // maligo:allow maporder sorted on the next line
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		visit(name)
	}
}

func collectCalls(n ast.Node, fn func(*ast.CallExpr)) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.BlockStmt:
		for _, s := range n.List {
			collectCalls(s, fn)
		}
	case *ast.DeclStmt:
		for _, d := range n.Decls {
			if d.Init != nil {
				collectCalls(d.Init, fn)
			}
			if d.ArrayLen != nil {
				collectCalls(d.ArrayLen, fn)
			}
		}
	case *ast.ExprStmt:
		collectCalls(n.X, fn)
	case *ast.IfStmt:
		collectCalls(n.Cond, fn)
		collectCalls(n.Then, fn)
		collectCalls(n.Else, fn)
	case *ast.ForStmt:
		collectCalls(n.Init, fn)
		collectCalls(n.Cond, fn)
		collectCalls(n.Post, fn)
		collectCalls(n.Body, fn)
	case *ast.WhileStmt:
		collectCalls(n.Cond, fn)
		collectCalls(n.Body, fn)
	case *ast.DoWhileStmt:
		collectCalls(n.Body, fn)
		collectCalls(n.Cond, fn)
	case *ast.ReturnStmt:
		collectCalls(n.X, fn)
	case *ast.CallExpr:
		fn(n)
		for _, a := range n.Args {
			collectCalls(a, fn)
		}
	case *ast.BinaryExpr:
		collectCalls(n.X, fn)
		collectCalls(n.Y, fn)
	case *ast.UnaryExpr:
		collectCalls(n.X, fn)
	case *ast.PostfixExpr:
		collectCalls(n.X, fn)
	case *ast.AssignExpr:
		collectCalls(n.LHS, fn)
		collectCalls(n.RHS, fn)
	case *ast.CondExpr:
		collectCalls(n.Cond, fn)
		collectCalls(n.Then, fn)
		collectCalls(n.Else, fn)
	case *ast.IndexExpr:
		collectCalls(n.X, fn)
		collectCalls(n.Index, fn)
	case *ast.MemberExpr:
		collectCalls(n.X, fn)
	case *ast.CastExpr:
		collectCalls(n.X, fn)
	case *ast.VectorLit:
		for _, el := range n.Elems {
			collectCalls(el, fn)
		}
	case *ast.ParenExpr:
		collectCalls(n.X, fn)
	}
}
