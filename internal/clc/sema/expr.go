package sema

import (
	"strings"

	"maligo/internal/clc/ast"
	"maligo/internal/clc/token"
	"maligo/internal/clc/types"
)

// checkExpr type-checks e, records its type, and returns it. A nil
// return means an error was already reported.
func (c *checker) checkExpr(e ast.Expr) *types.Type {
	t := c.exprType(e)
	if t != nil {
		c.res.Types[e] = t
	}
	return t
}

func (c *checker) exprType(e ast.Expr) *types.Type {
	switch e := e.(type) {
	case *ast.IntLit:
		switch {
		case e.Long && e.Unsigned:
			return types.ULongType
		case e.Long:
			return types.LongType
		case e.Unsigned:
			return types.UIntType
		}
		return types.IntType
	case *ast.FloatLit:
		if e.IsF32 {
			return types.FloatType
		}
		return types.DoubleType
	case *ast.Ident:
		sym := c.lookup(e.Name)
		if sym == nil {
			c.errorf(e.Pos(), "undeclared identifier %q", e.Name)
			return nil
		}
		c.res.Syms[e] = sym
		if sym.Kind == SymArray || (sym.Kind == SymFileVar && sym.ArrayLen > 0) {
			// Arrays decay to pointers to their element type.
			return types.Pointer(sym.Type, sym.Space, sym.Const, false)
		}
		return sym.Type
	case *ast.ParenExpr:
		return c.checkExpr(e.X)
	case *ast.BinaryExpr:
		return c.binaryType(e)
	case *ast.UnaryExpr:
		return c.unaryType(e)
	case *ast.PostfixExpr:
		t := c.checkExpr(e.X)
		if t == nil {
			return nil
		}
		if !c.isLValue(e.X) {
			c.errorf(e.Pos(), "operand of %s must be an lvalue", e.Op)
		}
		if !t.IsScalar() && !t.IsPointer() {
			c.errorf(e.Pos(), "%s requires a scalar or pointer operand, got %s", e.Op, t)
		}
		return t
	case *ast.AssignExpr:
		return c.assignType(e)
	case *ast.CondExpr:
		return c.condType(e)
	case *ast.CallExpr:
		return c.callType(e)
	case *ast.IndexExpr:
		pt := c.checkExpr(e.X)
		it := c.checkExpr(e.Index)
		if pt == nil || it == nil {
			return nil
		}
		if !pt.IsPointer() {
			c.errorf(e.Pos(), "indexed expression must be a pointer or array, got %s", pt)
			return nil
		}
		if !it.IsScalar() || !it.Base.IsInteger() {
			c.errorf(e.Index.Pos(), "array index must be an integer, got %s", it)
		}
		return pt.Elem
	case *ast.MemberExpr:
		return c.memberType(e)
	case *ast.CastExpr:
		to := c.resolveType(e.To)
		from := c.checkExpr(e.X)
		if to == nil || from == nil {
			return nil
		}
		if to.IsPointer() {
			if !from.IsPointer() && !(from.IsScalar() && from.Base.IsInteger()) {
				c.errorf(e.Pos(), "cannot cast %s to %s", from, to)
			}
			return to
		}
		if to.IsVector() {
			if from.IsVector() && from.Width != to.Width {
				c.errorf(e.Pos(), "cannot cast %s to %s (width mismatch); use convert_%s", from, to, to)
			}
			return to
		}
		if to.IsScalar() {
			if from.IsVector() {
				c.errorf(e.Pos(), "cannot cast vector %s to scalar %s", from, to)
			}
			return to
		}
		c.errorf(e.Pos(), "invalid cast target %s", to)
		return nil
	case *ast.VectorLit:
		return c.vectorLitType(e)
	case *ast.SizeofExpr:
		t := c.resolveType(e.To)
		if t == nil {
			return nil
		}
		return types.ULongType
	}
	c.errorf(e.Pos(), "unsupported expression")
	return nil
}

func (c *checker) binaryType(e *ast.BinaryExpr) *types.Type {
	xt := c.checkExpr(e.X)
	yt := c.checkExpr(e.Y)
	if xt == nil || yt == nil {
		return nil
	}
	switch e.Op {
	case token.LAND, token.LOR:
		c.wantScalarCond(xt, e.X)
		c.wantScalarCond(yt, e.Y)
		return types.IntType
	case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
		if xt.IsPointer() && yt.IsPointer() {
			return types.IntType
		}
		t, err := types.Promote(xt, yt)
		if err != nil {
			c.errorf(e.Pos(), "invalid comparison: %v", err)
			return nil
		}
		if t.IsVector() {
			// OpenCL vector comparisons yield a signed integer vector.
			return types.Vector(types.Int, t.Width)
		}
		return types.IntType
	case token.ADD, token.SUB:
		// Pointer arithmetic.
		if xt.IsPointer() && yt.IsScalar() && yt.Base.IsInteger() {
			return xt
		}
		if e.Op == token.ADD && yt.IsPointer() && xt.IsScalar() && xt.Base.IsInteger() {
			return yt
		}
		if e.Op == token.SUB && xt.IsPointer() && yt.IsPointer() {
			return types.LongType
		}
	case token.REM, token.AND, token.OR, token.XOR, token.SHL, token.SHR:
		if !xt.IsIntegerArith() || !yt.IsIntegerArith() {
			c.errorf(e.Pos(), "operator %s requires integer operands, got %s and %s", e.Op, xt, yt)
			return nil
		}
	}
	t, err := types.Promote(xt, yt)
	if err != nil {
		c.errorf(e.Pos(), "invalid operands to %s: %v", e.Op, err)
		return nil
	}
	if e.Op == token.SHL || e.Op == token.SHR {
		// Shift result has the (promoted) type of the left operand.
		w := 1
		if xt.IsVector() {
			w = xt.Width
		}
		base := xt.Base
		if base.IsInteger() && base.Rank() < types.Int.Rank() {
			base = types.Int
		}
		return types.Vector(base, w)
	}
	return t
}

func (c *checker) unaryType(e *ast.UnaryExpr) *types.Type {
	t := c.checkExpr(e.X)
	if t == nil {
		return nil
	}
	switch e.Op {
	case token.SUB:
		if !t.IsArith() {
			c.errorf(e.Pos(), "cannot negate %s", t)
			return nil
		}
		return t
	case token.LNOT:
		c.wantScalarCond(t, e.X)
		return types.IntType
	case token.NOT:
		if !t.IsIntegerArith() {
			c.errorf(e.Pos(), "operator ~ requires an integer operand, got %s", t)
			return nil
		}
		return t
	case token.MUL:
		if !t.IsPointer() {
			c.errorf(e.Pos(), "cannot dereference non-pointer %s", t)
			return nil
		}
		return t.Elem
	case token.AND:
		// Address-of: only of lvalue memory (index of pointer, array
		// element, or array identifier) — registers have no address.
		switch x := e.X.(type) {
		case *ast.IndexExpr:
			_ = x
			pt := c.res.Types[e.X]
			if pt == nil {
				return nil
			}
			base := c.res.Types[x.X]
			if base == nil || !base.IsPointer() {
				return nil
			}
			return types.Pointer(pt, base.Space, base.Const, false)
		default:
			c.errorf(e.Pos(), "address-of is only supported on array/pointer elements")
			return nil
		}
	case token.INC, token.DEC:
		if !c.isLValue(e.X) {
			c.errorf(e.Pos(), "operand of %s must be an lvalue", e.Op)
		}
		if !t.IsScalar() && !t.IsPointer() {
			c.errorf(e.Pos(), "%s requires a scalar or pointer operand, got %s", e.Op, t)
		}
		return t
	}
	c.errorf(e.Pos(), "unsupported unary operator %s", e.Op)
	return nil
}

// isLValue reports whether e designates a storage location.
func (c *checker) isLValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		sym := c.res.Syms[e]
		if sym == nil {
			return false
		}
		return sym.Kind == SymVar || sym.Kind == SymParam
	case *ast.IndexExpr:
		return true
	case *ast.UnaryExpr:
		return e.Op == token.MUL
	case *ast.MemberExpr:
		return c.isLValue(e.X)
	case *ast.ParenExpr:
		return c.isLValue(e.X)
	}
	return false
}

func (c *checker) assignType(e *ast.AssignExpr) *types.Type {
	lt := c.checkExpr(e.LHS)
	rt := c.checkExpr(e.RHS)
	if lt == nil || rt == nil {
		return nil
	}
	if !c.isLValue(e.LHS) {
		c.errorf(e.Pos(), "assignment target is not an lvalue")
		return lt
	}
	if id, ok := unparen(e.LHS).(*ast.Ident); ok {
		if sym := c.res.Syms[id]; sym != nil && sym.Const && sym.Kind != SymParam {
			c.errorf(e.Pos(), "cannot assign to const %s", sym.Name)
		}
	}
	if ix, ok := unparen(e.LHS).(*ast.IndexExpr); ok {
		if pt := c.res.Types[ix.X]; pt != nil && pt.IsPointer() && (pt.Const || pt.Space == ast.ConstantSpace) {
			c.errorf(e.Pos(), "cannot store through const/__constant pointer")
		}
	}
	if e.Op != token.ASSIGN {
		// Compound assignment: LHS op RHS must be valid and assignable back.
		if !lt.IsArith() && !lt.IsPointer() {
			c.errorf(e.Pos(), "invalid compound assignment to %s", lt)
			return lt
		}
		if lt.IsPointer() {
			if e.Op != token.ADD_ASSIGN && e.Op != token.SUB_ASSIGN {
				c.errorf(e.Pos(), "invalid pointer compound assignment %s", e.Op)
			}
			return lt
		}
	}
	if !c.assignable(lt, rt) {
		c.errorf(e.Pos(), "cannot assign %s to %s", rt, lt)
	}
	return lt
}

func (c *checker) condType(e *ast.CondExpr) *types.Type {
	ct := c.checkExpr(e.Cond)
	tt := c.checkExpr(e.Then)
	et := c.checkExpr(e.Else)
	if ct == nil || tt == nil || et == nil {
		return nil
	}
	t, err := types.Promote(tt, et)
	if err != nil {
		if tt.IsPointer() && et.IsPointer() && tt.Equal(et) {
			t = tt
		} else {
			c.errorf(e.Pos(), "mismatched ternary arms: %v", err)
			return nil
		}
	}
	if ct.IsVector() {
		if !t.IsVector() || t.Width != ct.Width {
			c.errorf(e.Pos(), "vector ternary requires matching widths (%s vs %s)", ct, t)
			return nil
		}
	} else {
		c.wantScalarCond(ct, e.Cond)
	}
	return t
}

func (c *checker) vectorLitType(e *ast.VectorLit) *types.Type {
	if e.To == nil {
		c.errorf(e.Pos(), "aggregate initializers are only supported for file-scope __constant arrays")
		return nil
	}
	t := c.resolveType(e.To)
	if t == nil {
		return nil
	}
	if !t.IsVector() {
		c.errorf(e.Pos(), "vector literal requires a vector type, got %s", t)
		return nil
	}
	total := 0
	for _, el := range e.Elems {
		et := c.checkExpr(el)
		if et == nil {
			return nil
		}
		switch {
		case et.IsScalar():
			total++
		case et.IsVector():
			total += et.Width
		default:
			c.errorf(el.Pos(), "vector literal element must be arithmetic, got %s", et)
			return nil
		}
	}
	if len(e.Elems) == 1 && total == 1 {
		return t // splat form
	}
	if total != t.Width {
		c.errorf(e.Pos(), "vector literal for %s has %d components, want %d", t, total, t.Width)
	}
	return t
}

// ParseSwizzle parses an OpenCL vector component selector against a
// vector of the given width, returning the selected component indices.
func ParseSwizzle(sel string, width int) ([]int, bool) {
	lower := strings.ToLower(sel)
	switch lower {
	case "lo":
		n := width / 2
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out, true
	case "hi":
		n := width / 2
		out := make([]int, n)
		for i := range out {
			out[i] = width - n + i
		}
		return out, true
	case "even":
		var out []int
		for i := 0; i < width; i += 2 {
			out = append(out, i)
		}
		return out, true
	case "odd":
		var out []int
		for i := 1; i < width; i += 2 {
			out = append(out, i)
		}
		return out, true
	}
	if strings.HasPrefix(lower, "s") && len(lower) > 1 {
		var out []int
		for _, ch := range lower[1:] {
			var idx int
			switch {
			case ch >= '0' && ch <= '9':
				idx = int(ch - '0')
			case ch >= 'a' && ch <= 'f':
				idx = int(ch-'a') + 10
			default:
				return nil, false
			}
			if idx >= width {
				return nil, false
			}
			out = append(out, idx)
		}
		return out, true
	}
	var out []int
	for _, ch := range lower {
		var idx int
		switch ch {
		case 'x':
			idx = 0
		case 'y':
			idx = 1
		case 'z':
			idx = 2
		case 'w':
			idx = 3
		default:
			return nil, false
		}
		if idx >= width {
			return nil, false
		}
		out = append(out, idx)
	}
	return out, len(out) > 0
}

func (c *checker) memberType(e *ast.MemberExpr) *types.Type {
	xt := c.checkExpr(e.X)
	if xt == nil {
		return nil
	}
	if !xt.IsVector() {
		c.errorf(e.SelPos, "component access on non-vector type %s", xt)
		return nil
	}
	idx, ok := ParseSwizzle(e.Sel, xt.Width)
	if !ok {
		c.errorf(e.SelPos, "invalid component selector .%s for %s", e.Sel, xt)
		return nil
	}
	c.res.Swizzles[e] = idx
	if len(idx) == 1 {
		return types.Scalar(xt.Base)
	}
	switch len(idx) {
	case 2, 3, 4, 8, 16:
		return types.Vector(xt.Base, len(idx))
	}
	c.errorf(e.SelPos, "swizzle .%s selects %d components, which is not a valid vector width", e.Sel, len(idx))
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
