package preproc

import (
	"strings"
	"testing"
)

func process(t *testing.T, src string, defs map[string]string) string {
	t.Helper()
	out, err := Process(src, defs)
	if err != nil {
		t.Fatalf("Process: %v", err)
	}
	return out
}

func TestObjectMacro(t *testing.T) {
	out := process(t, "#define N 42\nint x = N;\n", nil)
	if !strings.Contains(out, "int x = 42;") {
		t.Fatalf("output %q", out)
	}
}

func TestMacroIdentifierBoundaries(t *testing.T) {
	out := process(t, "#define N 42\nint NN = N + xN;\n", nil)
	if !strings.Contains(out, "int NN = 42 + xN;") {
		t.Fatalf("boundary expansion broken: %q", out)
	}
}

func TestFunctionMacro(t *testing.T) {
	out := process(t, "#define SQ(x) ((x)*(x))\nfloat y = SQ(a + b);\n", nil)
	if !strings.Contains(out, "((a + b)*(a + b))") {
		t.Fatalf("output %q", out)
	}
}

func TestFunctionMacroNestedParens(t *testing.T) {
	out := process(t, "#define F(a, b) a + b\nint y = F(g(1, 2), 3);\n", nil)
	if !strings.Contains(out, "g(1, 2) + 3") {
		t.Fatalf("output %q", out)
	}
}

func TestFunctionMacroNameWithoutCall(t *testing.T) {
	out := process(t, "#define F(a) a\nint F_count = F(1); int x = F;\n", nil)
	// Bare F without parentheses must not expand.
	if !strings.Contains(out, "int x = F;") {
		t.Fatalf("bare function-macro name expanded: %q", out)
	}
}

func TestNestedMacros(t *testing.T) {
	out := process(t, "#define A B\n#define B 7\nint x = A;\n", nil)
	if !strings.Contains(out, "int x = 7;") {
		t.Fatalf("output %q", out)
	}
}

func TestRecursiveMacroStops(t *testing.T) {
	out := process(t, "#define X X\nint x = X;\n", nil)
	if !strings.Contains(out, "int x = X;") {
		t.Fatalf("self-recursive macro should expand to itself: %q", out)
	}
}

func TestUndef(t *testing.T) {
	out := process(t, "#define N 1\n#undef N\nint x = N;\n", nil)
	if !strings.Contains(out, "int x = N;") {
		t.Fatalf("output %q", out)
	}
}

func TestIfdef(t *testing.T) {
	src := `#ifdef FP64
double
#else
float
#endif
`
	out := process(t, src, map[string]string{"FP64": "1"})
	if !strings.Contains(out, "double") || strings.Contains(out, "float") {
		t.Fatalf("ifdef taken branch wrong: %q", out)
	}
	out = process(t, src, nil)
	if strings.Contains(out, "double") || !strings.Contains(out, "float") {
		t.Fatalf("ifdef else branch wrong: %q", out)
	}
}

func TestIfndefAndNesting(t *testing.T) {
	src := `#ifndef A
#ifdef B
b
#else
nob
#endif
#endif
`
	out := process(t, src, map[string]string{"B": "1"})
	if !strings.Contains(out, "b") || strings.Contains(out, "nob") {
		t.Fatalf("nested conditional wrong: %q", out)
	}
	out = process(t, src, map[string]string{"A": "1", "B": "1"})
	if strings.Contains(out, "b") {
		t.Fatalf("dead outer branch leaked: %q", out)
	}
}

func TestElif(t *testing.T) {
	src := `#if defined(A)
a
#elif defined(B)
b
#else
c
#endif
`
	if out := process(t, src, map[string]string{"B": "1"}); !strings.Contains(out, "b") {
		t.Fatalf("elif branch: %q", out)
	}
	if out := process(t, src, nil); !strings.Contains(out, "c") {
		t.Fatalf("else branch: %q", out)
	}
	if out := process(t, src, map[string]string{"A": "1", "B": "1"}); !strings.Contains(out, "a") || strings.Contains(out, "b") {
		t.Fatalf("first branch must win: %q", out)
	}
}

func TestIfIntegerCondition(t *testing.T) {
	src := "#define V 2\n#if V\nyes\n#endif\n"
	if out := process(t, src, nil); !strings.Contains(out, "yes") {
		t.Fatalf("integer #if: %q", out)
	}
	src = "#define V 0\n#if V\nyes\n#endif\n"
	if out := process(t, src, nil); strings.Contains(out, "yes") {
		t.Fatalf("zero #if taken: %q", out)
	}
}

func TestLineContinuation(t *testing.T) {
	out := process(t, "#define LONG a + \\\n  b\nint x = LONG;\n", nil)
	if !strings.Contains(out, "a +   b") {
		t.Fatalf("continuation: %q", out)
	}
}

func TestLineNumbersPreserved(t *testing.T) {
	src := "#define N 1\n\n\nline4\n"
	out := process(t, src, nil)
	lines := strings.Split(out, "\n")
	if len(lines) < 4 || strings.TrimSpace(lines[3]) != "line4" {
		t.Fatalf("vertical position lost: %q", out)
	}
}

func TestStringsUntouched(t *testing.T) {
	out := process(t, "#define N 1\nchar* s = \"N is N\";\n", nil)
	if !strings.Contains(out, `"N is N"`) {
		t.Fatalf("macro expanded inside string: %q", out)
	}
}

func TestPragmaDropped(t *testing.T) {
	out := process(t, "#pragma OPENCL EXTENSION cl_khr_fp64 : enable\nx\n", nil)
	if strings.Contains(out, "pragma") {
		t.Fatalf("pragma leaked: %q", out)
	}
}

func TestErrors(t *testing.T) {
	for _, src := range []string{
		"#endif\n",
		"#else\n",
		"#ifdef A\n", // unterminated
		"#include \"x.h\"\n",
		"#bogus\n",
		"#define F(a b\n",
	} {
		if _, err := Process(src, nil); err == nil {
			t.Errorf("Process(%q) should fail", src)
		}
	}
}

func TestParseOptions(t *testing.T) {
	defs := ParseOptions("-DREAL=float -DFP32 -D NAME=v -cl-fast-relaxed-math -Ifoo")
	if defs["REAL"] != "float" {
		t.Errorf("REAL = %q", defs["REAL"])
	}
	if defs["FP32"] != "1" {
		t.Errorf("FP32 = %q", defs["FP32"])
	}
	if defs["NAME"] != "v" {
		t.Errorf("NAME = %q", defs["NAME"])
	}
	if len(defs) != 3 {
		t.Errorf("unexpected defs: %v", defs)
	}
}

func TestMacroArgCountMismatch(t *testing.T) {
	if _, err := Process("#define F(a,b) a+b\nint x = F(1);\n", nil); err == nil {
		t.Fatal("argument count mismatch should fail")
	}
}

// TestUnterminatedLiteralBackslashEOF is the regression test for a
// fuzz-found panic: a string or char literal left open at end of line
// with a trailing backslash must not slice past the line.
func TestUnterminatedLiteralBackslashEOF(t *testing.T) {
	for _, src := range []string{"\"\\", "'\\", "#define X 1\nX \"\\", "x = \"abc\\"} {
		if _, err := Process(src, nil); err != nil {
			// An error is fine — only the panic was the bug.
			continue
		}
	}
}
