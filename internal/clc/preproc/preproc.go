// Package preproc implements the small C preprocessor subset needed to
// build OpenCL kernels: object-like and function-like #define, #undef,
// #ifdef/#ifndef/#else/#endif, #pragma passthrough, and -D build
// options in the style of clBuildProgram. Expansion is textual with
// identifier-boundary matching and a recursion guard, which matches
// how the benchmark kernels in this repository use macros (type
// aliases such as REAL/REAL4 and small inline expression helpers).
package preproc

import (
	"fmt"
	"strings"
)

// Macro is a single preprocessor definition.
type Macro struct {
	Name   string
	Params []string // nil for object-like macros
	Body   string
	IsFunc bool
}

// Error is a preprocessing error with the 1-based source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("line %d: %s", e.Line, e.Msg) }

// ParseOptions parses a clBuildProgram-style option string, accepting
// -DNAME, -DNAME=VALUE and -D NAME=VALUE forms (and ignoring options
// it does not understand, like a real driver ignores -cl-* hints it
// has no use for).
func ParseOptions(options string) map[string]string {
	defs := make(map[string]string)
	fields := strings.Fields(options)
	for i := 0; i < len(fields); i++ {
		f := fields[i]
		var def string
		switch {
		case f == "-D" && i+1 < len(fields):
			i++
			def = fields[i]
		case strings.HasPrefix(f, "-D"):
			def = f[2:]
		default:
			continue
		}
		if eq := strings.IndexByte(def, '='); eq >= 0 {
			defs[def[:eq]] = def[eq+1:]
		} else if def != "" {
			defs[def] = "1"
		}
	}
	return defs
}

// Process runs the preprocessor over src with the given predefined
// macros (typically from ParseOptions). It returns the expanded source
// with directives removed; line structure is preserved so downstream
// diagnostics keep meaningful line numbers.
func Process(src string, predefined map[string]string) (string, error) {
	p := &state{macros: make(map[string]Macro)}
	for name, val := range predefined { // maligo:allow maporder distinct keys fill the macro table
		p.macros[name] = Macro{Name: name, Body: val}
	}
	return p.run(src)
}

type condFrame struct {
	active     bool // this branch is being emitted
	everActive bool // some branch of this #if chain was emitted
	parentLive bool
	sawElse    bool
	startLine  int
}

type state struct {
	macros map[string]Macro
	conds  []condFrame
}

func (p *state) live() bool {
	for _, c := range p.conds {
		if !c.active {
			return false
		}
	}
	return true
}

func (p *state) run(src string) (string, error) {
	lines := splitLinesJoinContinuations(src)
	var out strings.Builder
	for _, ln := range lines {
		trimmed := strings.TrimSpace(ln.text)
		if strings.HasPrefix(trimmed, "#") {
			if err := p.directive(trimmed, ln.num, &out); err != nil {
				return "", err
			}
			// Keep vertical position for diagnostics.
			for i := 0; i < ln.span; i++ {
				out.WriteByte('\n')
			}
			continue
		}
		if p.live() {
			expanded, err := p.expand(ln.text, ln.num, nil, 0)
			if err != nil {
				return "", err
			}
			out.WriteString(expanded)
		}
		for i := 0; i < ln.span; i++ {
			out.WriteByte('\n')
		}
	}
	if len(p.conds) != 0 {
		return "", &Error{Line: p.conds[len(p.conds)-1].startLine, Msg: "unterminated #if/#ifdef"}
	}
	return out.String(), nil
}

type logicalLine struct {
	text string
	num  int // first physical line number
	span int // number of physical lines consumed
}

// splitLinesJoinContinuations splits src into logical lines, joining
// backslash-newline continuations.
func splitLinesJoinContinuations(src string) []logicalLine {
	physical := strings.Split(src, "\n")
	var out []logicalLine
	for i := 0; i < len(physical); i++ {
		start := i
		text := physical[i]
		for strings.HasSuffix(text, "\\") && i+1 < len(physical) {
			text = text[:len(text)-1] + physical[i+1]
			i++
		}
		out = append(out, logicalLine{text: text, num: start + 1, span: i - start + 1})
	}
	return out
}

func (p *state) directive(line string, num int, out *strings.Builder) error {
	body := strings.TrimSpace(line[1:])
	word := body
	rest := ""
	if sp := strings.IndexAny(body, " \t"); sp >= 0 {
		word, rest = body[:sp], strings.TrimSpace(body[sp+1:])
	}
	switch word {
	case "define":
		if !p.live() {
			return nil
		}
		return p.define(rest, num)
	case "undef":
		if !p.live() {
			return nil
		}
		delete(p.macros, strings.TrimSpace(rest))
		return nil
	case "ifdef", "ifndef":
		name := strings.TrimSpace(rest)
		_, defined := p.macros[name]
		want := defined
		if word == "ifndef" {
			want = !defined
		}
		parentLive := p.live()
		p.conds = append(p.conds, condFrame{
			active:     want && parentLive,
			everActive: want,
			parentLive: parentLive,
			startLine:  num,
		})
		return nil
	case "if":
		parentLive := p.live()
		v, err := p.evalCond(rest, num)
		if err != nil {
			return err
		}
		p.conds = append(p.conds, condFrame{
			active:     v && parentLive,
			everActive: v,
			parentLive: parentLive,
			startLine:  num,
		})
		return nil
	case "elif":
		if len(p.conds) == 0 {
			return &Error{Line: num, Msg: "#elif without #if"}
		}
		top := &p.conds[len(p.conds)-1]
		if top.sawElse {
			return &Error{Line: num, Msg: "#elif after #else"}
		}
		if top.everActive {
			top.active = false
			return nil
		}
		v, err := p.evalCond(rest, num)
		if err != nil {
			return err
		}
		top.active = v && top.parentLive
		top.everActive = v
		return nil
	case "else":
		if len(p.conds) == 0 {
			return &Error{Line: num, Msg: "#else without #if"}
		}
		top := &p.conds[len(p.conds)-1]
		if top.sawElse {
			return &Error{Line: num, Msg: "duplicate #else"}
		}
		top.sawElse = true
		top.active = !top.everActive && top.parentLive
		return nil
	case "endif":
		if len(p.conds) == 0 {
			return &Error{Line: num, Msg: "#endif without #if"}
		}
		p.conds = p.conds[:len(p.conds)-1]
		return nil
	case "pragma":
		// OpenCL extension pragmas (e.g. cl_khr_fp64) are accepted and
		// dropped: the simulated device enables fp64 unconditionally.
		return nil
	case "include":
		return &Error{Line: num, Msg: "#include is not supported (kernels are self-contained)"}
	}
	return &Error{Line: num, Msg: fmt.Sprintf("unknown directive #%s", word)}
}

// evalCond evaluates the tiny #if expression subset used by kernels:
// an optionally-negated `defined(NAME)` / `defined NAME`, a macro
// name, or an integer constant.
func (p *state) evalCond(expr string, num int) (bool, error) {
	expr = strings.TrimSpace(expr)
	neg := false
	for strings.HasPrefix(expr, "!") {
		neg = !neg
		expr = strings.TrimSpace(expr[1:])
	}
	var v bool
	switch {
	case strings.HasPrefix(expr, "defined"):
		name := strings.TrimSpace(strings.TrimPrefix(expr, "defined"))
		name = strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(name, "("), ")"))
		_, v = p.macros[name]
	case expr == "":
		return false, &Error{Line: num, Msg: "empty #if condition"}
	default:
		// Expand macros, then require a plain integer.
		expanded, err := p.expand(expr, num, nil, 0)
		if err != nil {
			return false, err
		}
		expanded = strings.TrimSpace(expanded)
		var n int64
		if _, err := fmt.Sscanf(expanded, "%d", &n); err != nil {
			return false, &Error{Line: num, Msg: fmt.Sprintf("unsupported #if condition %q", expr)}
		}
		v = n != 0
	}
	if neg {
		v = !v
	}
	return v, nil
}

func (p *state) define(rest string, num int) error {
	if rest == "" {
		return &Error{Line: num, Msg: "empty #define"}
	}
	// Name runs to first non-identifier char.
	i := 0
	for i < len(rest) && isIdentChar(rest[i]) {
		i++
	}
	if i == 0 {
		return &Error{Line: num, Msg: "malformed #define"}
	}
	name := rest[:i]
	if i < len(rest) && rest[i] == '(' {
		// Function-like macro.
		end := strings.IndexByte(rest[i:], ')')
		if end < 0 {
			return &Error{Line: num, Msg: "unterminated macro parameter list"}
		}
		paramStr := rest[i+1 : i+end]
		var params []string
		if strings.TrimSpace(paramStr) != "" {
			for _, prm := range strings.Split(paramStr, ",") {
				params = append(params, strings.TrimSpace(prm))
			}
		}
		body := strings.TrimSpace(rest[i+end+1:])
		p.macros[name] = Macro{Name: name, Params: params, Body: body, IsFunc: true}
		return nil
	}
	p.macros[name] = Macro{Name: name, Body: strings.TrimSpace(rest[i:])}
	return nil
}

func isIdentChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

const maxExpandDepth = 32

// expand performs macro expansion on one logical line. hide is the set
// of macro names currently being expanded (to stop self-recursion).
func (p *state) expand(line string, num int, hide map[string]bool, depth int) (string, error) {
	if depth > maxExpandDepth {
		return "", &Error{Line: num, Msg: "macro expansion too deep (recursive macro?)"}
	}
	var out strings.Builder
	i := 0
	for i < len(line) {
		c := line[i]
		// Skip string and char literals untouched.
		if c == '"' || c == '\'' {
			j := i + 1
			for j < len(line) && line[j] != c {
				if line[j] == '\\' {
					j++
				}
				j++
			}
			if j < len(line) {
				j++
			} else if j > len(line) {
				j = len(line) // unterminated literal ending in a backslash
			}
			out.WriteString(line[i:j])
			i = j
			continue
		}
		if !isIdentStartChar(c) {
			out.WriteByte(c)
			i++
			continue
		}
		j := i
		for j < len(line) && isIdentChar(line[j]) {
			j++
		}
		word := line[i:j]
		m, ok := p.macros[word]
		if !ok || hide[word] {
			out.WriteString(word)
			i = j
			continue
		}
		if m.IsFunc {
			// Must be followed by '(' (possibly after spaces) to expand.
			k := j
			for k < len(line) && (line[k] == ' ' || line[k] == '\t') {
				k++
			}
			if k >= len(line) || line[k] != '(' {
				out.WriteString(word)
				i = j
				continue
			}
			args, end, err := scanArgs(line, k, num)
			if err != nil {
				return "", err
			}
			if len(args) != len(m.Params) && !(len(m.Params) == 0 && len(args) == 1 && strings.TrimSpace(args[0]) == "") {
				return "", &Error{Line: num, Msg: fmt.Sprintf("macro %s expects %d arguments, got %d", word, len(m.Params), len(args))}
			}
			body := substituteParams(m, args)
			newHide := withHidden(hide, word)
			expanded, err := p.expand(body, num, newHide, depth+1)
			if err != nil {
				return "", err
			}
			out.WriteString(expanded)
			i = end
			continue
		}
		newHide := withHidden(hide, word)
		expanded, err := p.expand(m.Body, num, newHide, depth+1)
		if err != nil {
			return "", err
		}
		out.WriteString(expanded)
		i = j
	}
	return out.String(), nil
}

func isIdentStartChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func withHidden(hide map[string]bool, name string) map[string]bool {
	newHide := make(map[string]bool, len(hide)+1)
	for k := range hide { // maligo:allow maporder distinct keys fill the copy
		newHide[k] = true
	}
	newHide[name] = true
	return newHide
}

// scanArgs scans a parenthesized macro argument list starting at the
// '(' at position start, honoring nested parentheses. It returns the
// raw argument strings and the index just past the closing ')'.
func scanArgs(line string, start, num int) ([]string, int, error) {
	depth := 0
	var args []string
	argStart := start + 1
	for i := start; i < len(line); i++ {
		switch line[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				args = append(args, line[argStart:i])
				return args, i + 1, nil
			}
		case ',':
			if depth == 1 {
				args = append(args, line[argStart:i])
				argStart = i + 1
			}
		}
	}
	return nil, 0, &Error{Line: num, Msg: "unterminated macro argument list"}
}

// substituteParams replaces parameter names in the macro body with the
// corresponding argument text, at identifier boundaries.
func substituteParams(m Macro, args []string) string {
	if len(m.Params) == 0 {
		return m.Body
	}
	byName := make(map[string]string, len(m.Params))
	for i, prm := range m.Params {
		byName[prm] = strings.TrimSpace(args[i])
	}
	var out strings.Builder
	body := m.Body
	i := 0
	for i < len(body) {
		c := body[i]
		if !isIdentStartChar(c) {
			out.WriteByte(c)
			i++
			continue
		}
		j := i
		for j < len(body) && isIdentChar(body[j]) {
			j++
		}
		word := body[i:j]
		if arg, ok := byName[word]; ok {
			out.WriteString(arg)
		} else {
			out.WriteString(word)
		}
		i = j
	}
	return out.String()
}
