// Package ast defines the abstract syntax tree produced by the clc
// parser for the OpenCL C dialect.
package ast

import "maligo/internal/clc/token"

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// ---------------------------------------------------------------------------
// Types as written in source. Resolution to semantic types happens in
// package sema.

// AddressSpace is an OpenCL address-space qualifier.
type AddressSpace int

// Address spaces. PrivateSpace is the default for locals and
// parameters of non-pointer type.
const (
	PrivateSpace AddressSpace = iota
	GlobalSpace
	LocalSpace
	ConstantSpace
)

func (s AddressSpace) String() string {
	switch s {
	case GlobalSpace:
		return "__global"
	case LocalSpace:
		return "__local"
	case ConstantSpace:
		return "__constant"
	}
	return "__private"
}

// TypeName is a type as spelled in the source, e.g.
// "__global const float4 *restrict".
type TypeName struct {
	NamePos  token.Pos
	Space    AddressSpace
	Const    bool
	Restrict bool
	Volatile bool
	Name     string // base type or typedef name, e.g. "float4"
	PtrDepth int    // number of '*'
}

func (t *TypeName) Pos() token.Pos { return t.NamePos }

// ---------------------------------------------------------------------------
// Expressions.

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Ident is a reference to a named entity.
type Ident struct {
	NamePos token.Pos
	Name    string
}

// IntLit is an integer literal; Value holds the parsed value and
// Unsigned whether a u/U suffix was present.
type IntLit struct {
	LitPos   token.Pos
	Text     string
	Value    int64
	Unsigned bool
	Long     bool
}

// FloatLit is a floating-point literal; IsF32 reports an f/F suffix.
type FloatLit struct {
	LitPos token.Pos
	Text   string
	Value  float64
	IsF32  bool
}

// BinaryExpr is a binary operation X Op Y.
type BinaryExpr struct {
	X, Y Expr
	Op   token.Kind
}

// UnaryExpr is a prefix unary operation: -, +, !, ~, *, & and prefix
// ++/--.
type UnaryExpr struct {
	OpPos token.Pos
	Op    token.Kind
	X     Expr
}

// PostfixExpr is a postfix ++ or --.
type PostfixExpr struct {
	X  Expr
	Op token.Kind
}

// AssignExpr is an assignment, possibly compound (+= etc.).
type AssignExpr struct {
	LHS Expr
	Op  token.Kind
	RHS Expr
}

// CondExpr is the ternary operator Cond ? Then : Else.
type CondExpr struct {
	Cond, Then, Else Expr
}

// CallExpr is a function or builtin call.
type CallExpr struct {
	Fun  *Ident
	Args []Expr
}

// IndexExpr is X[Index].
type IndexExpr struct {
	X, Index Expr
}

// MemberExpr is a vector component access or swizzle, X.Sel
// (e.g. v.x, v.s3, v.lo, v.xyzw).
type MemberExpr struct {
	X      Expr
	Sel    string
	SelPos token.Pos
}

// CastExpr is a C-style scalar cast (T)x.
type CastExpr struct {
	LP token.Pos
	To *TypeName
	X  Expr
}

// VectorLit is an OpenCL vector literal (float4)(a, b, c, d) or the
// splat form (float4)(x).
type VectorLit struct {
	LP    token.Pos
	To    *TypeName
	Elems []Expr
}

// SizeofExpr is sizeof(T).
type SizeofExpr struct {
	KwPos token.Pos
	To    *TypeName
}

// ParenExpr preserves explicit grouping (needed for faithful
// re-printing; semantically transparent).
type ParenExpr struct {
	LP token.Pos
	X  Expr
}

func (e *Ident) Pos() token.Pos       { return e.NamePos }
func (e *IntLit) Pos() token.Pos      { return e.LitPos }
func (e *FloatLit) Pos() token.Pos    { return e.LitPos }
func (e *BinaryExpr) Pos() token.Pos  { return e.X.Pos() }
func (e *UnaryExpr) Pos() token.Pos   { return e.OpPos }
func (e *PostfixExpr) Pos() token.Pos { return e.X.Pos() }
func (e *AssignExpr) Pos() token.Pos  { return e.LHS.Pos() }
func (e *CondExpr) Pos() token.Pos    { return e.Cond.Pos() }
func (e *CallExpr) Pos() token.Pos    { return e.Fun.Pos() }
func (e *IndexExpr) Pos() token.Pos   { return e.X.Pos() }
func (e *MemberExpr) Pos() token.Pos  { return e.X.Pos() }
func (e *CastExpr) Pos() token.Pos    { return e.LP }
func (e *VectorLit) Pos() token.Pos   { return e.LP }
func (e *SizeofExpr) Pos() token.Pos  { return e.KwPos }
func (e *ParenExpr) Pos() token.Pos   { return e.LP }

func (*Ident) exprNode()       {}
func (*IntLit) exprNode()      {}
func (*FloatLit) exprNode()    {}
func (*BinaryExpr) exprNode()  {}
func (*UnaryExpr) exprNode()   {}
func (*PostfixExpr) exprNode() {}
func (*AssignExpr) exprNode()  {}
func (*CondExpr) exprNode()    {}
func (*CallExpr) exprNode()    {}
func (*IndexExpr) exprNode()   {}
func (*MemberExpr) exprNode()  {}
func (*CastExpr) exprNode()    {}
func (*VectorLit) exprNode()   {}
func (*SizeofExpr) exprNode()  {}
func (*ParenExpr) exprNode()   {}

// ---------------------------------------------------------------------------
// Statements.

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Declarator is one name in a declaration statement, with an optional
// fixed array length and initializer.
type Declarator struct {
	NamePos  token.Pos
	Name     string
	ArrayLen Expr // nil if not an array; must be constant
	Init     Expr // nil if none
	PtrDepth int  // extra '*' attached to this declarator
}

// DeclStmt declares one or more variables of a common base type.
type DeclStmt struct {
	Type  *TypeName
	Decls []*Declarator
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	X Expr
}

// EmptyStmt is a bare semicolon.
type EmptyStmt struct {
	Semi token.Pos
}

// BlockStmt is { ... }.
type BlockStmt struct {
	LB   token.Pos
	List []Stmt
}

// IfStmt is if (Cond) Then [else Else].
type IfStmt struct {
	KwPos token.Pos
	Cond  Expr
	Then  Stmt
	Else  Stmt // nil if absent
}

// ForStmt is for (Init; Cond; Post) Body. Init may be a DeclStmt or
// ExprStmt; any of the three clauses may be nil.
type ForStmt struct {
	KwPos token.Pos
	Init  Stmt
	Cond  Expr
	Post  Expr
	Body  Stmt
}

// WhileStmt is while (Cond) Body.
type WhileStmt struct {
	KwPos token.Pos
	Cond  Expr
	Body  Stmt
}

// DoWhileStmt is do Body while (Cond);.
type DoWhileStmt struct {
	KwPos token.Pos
	Body  Stmt
	Cond  Expr
}

// ReturnStmt is return [X];.
type ReturnStmt struct {
	KwPos token.Pos
	X     Expr // nil for bare return
}

// BreakStmt is break;.
type BreakStmt struct {
	KwPos token.Pos
}

// ContinueStmt is continue;.
type ContinueStmt struct {
	KwPos token.Pos
}

func (s *DeclStmt) Pos() token.Pos     { return s.Type.Pos() }
func (s *ExprStmt) Pos() token.Pos     { return s.X.Pos() }
func (s *EmptyStmt) Pos() token.Pos    { return s.Semi }
func (s *BlockStmt) Pos() token.Pos    { return s.LB }
func (s *IfStmt) Pos() token.Pos       { return s.KwPos }
func (s *ForStmt) Pos() token.Pos      { return s.KwPos }
func (s *WhileStmt) Pos() token.Pos    { return s.KwPos }
func (s *DoWhileStmt) Pos() token.Pos  { return s.KwPos }
func (s *ReturnStmt) Pos() token.Pos   { return s.KwPos }
func (s *BreakStmt) Pos() token.Pos    { return s.KwPos }
func (s *ContinueStmt) Pos() token.Pos { return s.KwPos }

func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*EmptyStmt) stmtNode()    {}
func (*BlockStmt) stmtNode()    {}
func (*IfStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()    {}
func (*DoWhileStmt) stmtNode()  {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// ---------------------------------------------------------------------------
// Declarations.

// Param is a function parameter.
type Param struct {
	Type    *TypeName
	NamePos token.Pos
	Name    string
}

// Pos returns the parameter's source position.
func (p *Param) Pos() token.Pos { return p.Type.Pos() }

// FuncDecl is a kernel or helper function definition.
type FuncDecl struct {
	KwPos    token.Pos
	IsKernel bool
	IsInline bool
	Ret      *TypeName
	Name     string
	Params   []*Param
	Body     *BlockStmt
}

func (d *FuncDecl) Pos() token.Pos { return d.KwPos }

// TypedefDecl is `typedef <type> <name>;`.
type TypedefDecl struct {
	KwPos token.Pos
	Type  *TypeName
	Name  string
}

func (d *TypedefDecl) Pos() token.Pos { return d.KwPos }

// FileVarDecl is a file-scope variable declaration; only
// __constant variables with constant initializers are legal OpenCL,
// which sema enforces.
type FileVarDecl struct {
	Type  *TypeName
	Decls []*Declarator
}

func (d *FileVarDecl) Pos() token.Pos { return d.Type.Pos() }

// Decl is implemented by all top-level declarations.
type Decl interface {
	Node
	declNode()
}

func (*FuncDecl) declNode()    {}
func (*TypedefDecl) declNode() {}
func (*FileVarDecl) declNode() {}

// File is a parsed compilation unit.
type File struct {
	Name  string
	Decls []Decl
}
