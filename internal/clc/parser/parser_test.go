package parser

import (
	"testing"

	"maligo/internal/clc/ast"
	"maligo/internal/clc/token"
)

func parse(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := Parse("test.cl", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

func firstFunc(t *testing.T, f *ast.File) *ast.FuncDecl {
	t.Helper()
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok {
			return fn
		}
	}
	t.Fatal("no function declared")
	return nil
}

func TestKernelDeclaration(t *testing.T) {
	f := parse(t, `
__kernel void add(__global const float* restrict a,
                  __global float* b,
                  const uint n) { }
`)
	fn := firstFunc(t, f)
	if !fn.IsKernel || fn.Name != "add" {
		t.Fatalf("kernel = %+v", fn)
	}
	if len(fn.Params) != 3 {
		t.Fatalf("params = %d", len(fn.Params))
	}
	p0 := fn.Params[0]
	if p0.Type.Space != ast.GlobalSpace || !p0.Type.Const || !p0.Type.Restrict || p0.Type.PtrDepth != 1 {
		t.Errorf("param 0 type = %+v", p0.Type)
	}
	if fn.Params[2].Type.Name != "uint" || fn.Params[2].Type.PtrDepth != 0 {
		t.Errorf("param 2 type = %+v", fn.Params[2].Type)
	}
}

func TestHelperAndInline(t *testing.T) {
	f := parse(t, `inline float sq(float x) { return x * x; }`)
	fn := firstFunc(t, f)
	if fn.IsKernel || !fn.IsInline || fn.Ret.Name != "float" {
		t.Fatalf("helper = %+v", fn)
	}
}

func TestTypedef(t *testing.T) {
	f := parse(t, `
typedef float real_t;
__kernel void k(__global real_t* p) { real_t x = p[0]; }
`)
	td, ok := f.Decls[0].(*ast.TypedefDecl)
	if !ok || td.Name != "real_t" {
		t.Fatalf("typedef missing: %T", f.Decls[0])
	}
}

func TestStatements(t *testing.T) {
	f := parse(t, `
__kernel void k(__global int* p, const int n) {
    int total = 0;
    for (int i = 0; i < n; i++) {
        if (i % 2 == 0) { total += p[i]; } else { continue; }
        while (total > 100) { total -= 10; }
        do { total++; } while (total < 0);
        if (total == 42) break;
    }
    p[0] = total;
    ;
    return;
}
`)
	fn := firstFunc(t, f)
	if len(fn.Body.List) < 4 {
		t.Fatalf("body statements = %d", len(fn.Body.List))
	}
	if _, ok := fn.Body.List[1].(*ast.ForStmt); !ok {
		t.Fatalf("second statement should be for, got %T", fn.Body.List[1])
	}
}

func TestPrecedenceShape(t *testing.T) {
	f := parse(t, `__kernel void k(__global int* p) { p[0] = 1 + 2 * 3; }`)
	fn := firstFunc(t, f)
	expr := fn.Body.List[0].(*ast.ExprStmt).X.(*ast.AssignExpr).RHS
	add, ok := expr.(*ast.BinaryExpr)
	if !ok || add.Op != token.ADD {
		t.Fatalf("top = %T", expr)
	}
	mul, ok := add.Y.(*ast.BinaryExpr)
	if !ok || mul.Op != token.MUL {
		t.Fatalf("rhs of + should be *, got %T", add.Y)
	}
}

func TestTernaryAndUnary(t *testing.T) {
	f := parse(t, `__kernel void k(__global int* p, const int n) {
		p[0] = n > 0 ? -n : ~n;
		p[1] = !n;
		p[2] = n++;
		p[3] = --n;
	}`)
	fn := firstFunc(t, f)
	if _, ok := fn.Body.List[0].(*ast.ExprStmt).X.(*ast.AssignExpr).RHS.(*ast.CondExpr); !ok {
		t.Fatal("expected ternary")
	}
}

func TestVectorLiteralAndSwizzle(t *testing.T) {
	f := parse(t, `__kernel void k(__global float* p) {
		float4 v = (float4)(1.0f, 2.0f, 3.0f, 4.0f);
		float4 s = (float4)(0.5f);
		v.x = s.w;
		p[0] = v.y + dot(v, s);
	}`)
	fn := firstFunc(t, f)
	decl := fn.Body.List[0].(*ast.DeclStmt)
	if _, ok := decl.Decls[0].Init.(*ast.VectorLit); !ok {
		t.Fatalf("init = %T", decl.Decls[0].Init)
	}
}

func TestCastVsParen(t *testing.T) {
	f := parse(t, `__kernel void k(__global int* p, const float x) {
		p[0] = (int)x;
		p[1] = (p[0] + 1);
	}`)
	fn := firstFunc(t, f)
	if _, ok := fn.Body.List[0].(*ast.ExprStmt).X.(*ast.AssignExpr).RHS.(*ast.CastExpr); !ok {
		t.Fatal("expected a cast")
	}
	if _, ok := fn.Body.List[1].(*ast.ExprStmt).X.(*ast.AssignExpr).RHS.(*ast.ParenExpr); !ok {
		t.Fatal("expected a parenthesized expression")
	}
}

func TestLocalArrayDecl(t *testing.T) {
	f := parse(t, `__kernel void k(void) { __local float scratch[128]; }`)
	fn := firstFunc(t, f)
	d := fn.Body.List[0].(*ast.DeclStmt)
	if d.Type.Space != ast.LocalSpace || d.Decls[0].ArrayLen == nil {
		t.Fatalf("local array decl = %+v", d)
	}
	if len(fn.Params) != 0 {
		t.Fatalf("void param list should be empty, got %d", len(fn.Params))
	}
}

func TestFileConstant(t *testing.T) {
	f := parse(t, `__constant float w[3] = {0.25f, 0.5f, 0.25f};`)
	fv, ok := f.Decls[0].(*ast.FileVarDecl)
	if !ok {
		t.Fatalf("decl = %T", f.Decls[0])
	}
	agg, ok := fv.Decls[0].Init.(*ast.VectorLit)
	if !ok || agg.To != nil || len(agg.Elems) != 3 {
		t.Fatalf("aggregate init = %+v", fv.Decls[0].Init)
	}
}

func TestMultipleDeclarators(t *testing.T) {
	f := parse(t, `__kernel void k(void) { int a = 1, b = 2, c; c = a + b; }`)
	fn := firstFunc(t, f)
	d := fn.Body.List[0].(*ast.DeclStmt)
	if len(d.Decls) != 3 {
		t.Fatalf("declarators = %d", len(d.Decls))
	}
}

func TestSizeof(t *testing.T) {
	f := parse(t, `__kernel void k(__global ulong* p) { p[0] = sizeof(float4); }`)
	fn := firstFunc(t, f)
	if _, ok := fn.Body.List[0].(*ast.ExprStmt).X.(*ast.AssignExpr).RHS.(*ast.SizeofExpr); !ok {
		t.Fatal("expected sizeof expression")
	}
}

func TestPrototypeDropped(t *testing.T) {
	f := parse(t, `
float helper(float x);
float helper(float x) { return x; }
`)
	if len(f.Decls) != 1 {
		t.Fatalf("prototype should be dropped, decls = %d", len(f.Decls))
	}
}

func TestIsBuiltinTypeName(t *testing.T) {
	yes := []string{"float", "float4", "double8", "int2", "uint16", "uchar4", "size_t", "void", "bool", "half"}
	no := []string{"float5", "floats", "real", "int0", "bool2", "size_t4", "half2", "x"}
	for _, n := range yes {
		if !IsBuiltinTypeName(n) {
			t.Errorf("IsBuiltinTypeName(%q) = false", n)
		}
	}
	for _, n := range no {
		if IsBuiltinTypeName(n) {
			t.Errorf("IsBuiltinTypeName(%q) = true", n)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`__kernel void k( { }`,
		`__kernel void k(void) { int x = ; }`,
		`__kernel void k(void) { for int i; }`,
		`struct S { int x; };`,
		`__kernel void k(void) { goto out; }`,
		`__kernel void k(void) { switch (1) {} }`,
		`__kernel void 123() {}`,
	}
	for _, src := range bad {
		if _, err := Parse("bad.cl", src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestUnsignedSpelling(t *testing.T) {
	f := parse(t, `__kernel void k(__global unsigned int* p, const unsigned long m) { p[0] = (int)m; }`)
	fn := firstFunc(t, f)
	if fn.Params[0].Type.Name != "uint" {
		t.Errorf("unsigned int parsed as %q", fn.Params[0].Type.Name)
	}
	if fn.Params[1].Type.Name != "ulong" {
		t.Errorf("unsigned long parsed as %q", fn.Params[1].Type.Name)
	}
}
