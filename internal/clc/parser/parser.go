// Package parser implements a recursive-descent parser for the OpenCL
// C dialect accepted by clc. It produces the AST defined in package
// ast; all semantic checking is deferred to package sema.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"maligo/internal/clc/ast"
	"maligo/internal/clc/lexer"
	"maligo/internal/clc/token"
)

// Error is a parse error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Parser holds the parse state for one compilation unit.
type Parser struct {
	toks     []token.Token
	pos      int
	typedefs map[string]bool
	errs     []error
}

// Parse lexes and parses src, returning the file AST. name is used in
// diagnostics only.
func Parse(name, src string) (*ast.File, error) {
	lx := lexer.New(src)
	toks := lx.Tokenize()
	if lexErrs := lx.Errors(); len(lexErrs) > 0 {
		return nil, lexErrs[0]
	}
	p := &Parser{toks: toks, typedefs: make(map[string]bool)}
	file := &ast.File{Name: name}
	for !p.at(token.EOF) {
		decl := p.parseTopDecl()
		if decl != nil {
			file.Decls = append(file.Decls, decl)
		}
		if len(p.errs) > 0 {
			return nil, p.errs[0]
		}
	}
	return file, nil
}

// --- token helpers ---------------------------------------------------------

func (p *Parser) cur() token.Token     { return p.toks[p.pos] }
func (p *Parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *Parser) peekKind(n int) token.Kind {
	if p.pos+n >= len(p.toks) {
		return token.EOF
	}
	return p.toks[p.pos+n].Kind
}

func (p *Parser) next() token.Token {
	t := p.cur()
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *Parser) expect(k token.Kind) token.Token {
	if !p.at(k) {
		p.errorf("expected %s, found %s", k, p.cur())
		return token.Token{Kind: k, Pos: p.cur().Pos}
	}
	return p.next()
}

func (p *Parser) errorf(format string, args ...any) {
	p.errs = append(p.errs, &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)})
	// Skip to a likely synchronization point to avoid error cascades.
	for !p.at(token.EOF) && !p.at(token.SEMICOLON) && !p.at(token.RBRACE) {
		p.next()
	}
}

// --- type names ------------------------------------------------------------

var scalarTypeNames = map[string]bool{
	"void": true, "bool": true,
	"char": true, "uchar": true, "short": true, "ushort": true,
	"int": true, "uint": true, "long": true, "ulong": true,
	"float": true, "double": true, "half": true,
	"size_t": true, "ptrdiff_t": true, "intptr_t": true, "uintptr_t": true,
}

var vectorWidths = map[string]bool{"2": true, "3": true, "4": true, "8": true, "16": true}

// IsBuiltinTypeName reports whether name is a builtin OpenCL C scalar
// or vector type name.
func IsBuiltinTypeName(name string) bool {
	if scalarTypeNames[name] {
		return true
	}
	// Vector types: base name followed by a width suffix.
	for i := len(name) - 1; i > 0; i-- {
		c := name[i]
		if c < '0' || c > '9' {
			base, width := name[:i+1], name[i+1:]
			if width == "" {
				return false
			}
			return vectorWidths[width] && scalarTypeNames[base] && base != "void" && base != "bool" &&
				base != "size_t" && base != "ptrdiff_t" && base != "intptr_t" && base != "uintptr_t" && base != "half"
		}
	}
	return false
}

func (p *Parser) isTypeName(name string) bool {
	return IsBuiltinTypeName(name) || p.typedefs[name]
}

// startsType reports whether the token at offset n begins a type name
// (including qualifiers).
func (p *Parser) startsType(n int) bool {
	switch p.peekKind(n) {
	case token.KwConst, token.KwVolatile, token.KwGlobal, token.KwLocal,
		token.KwConstant, token.KwPrivate, token.KwUnsigned, token.KwSigned, token.KwVoid:
		return true
	case token.IDENT:
		return p.isTypeName(p.toks[p.pos+n].Lit)
	}
	return false
}

// parseTypeName parses qualifiers, a base type name, and pointer
// declarator stars: [space] [const] [volatile] name *... [restrict] [const].
func (p *Parser) parseTypeName() *ast.TypeName {
	tn := &ast.TypeName{NamePos: p.cur().Pos, Space: ast.PrivateSpace}
	// Leading qualifiers in any order.
	for {
		switch p.cur().Kind {
		case token.KwGlobal:
			tn.Space = ast.GlobalSpace
			p.next()
			continue
		case token.KwLocal:
			tn.Space = ast.LocalSpace
			p.next()
			continue
		case token.KwConstant:
			tn.Space = ast.ConstantSpace
			tn.Const = true
			p.next()
			continue
		case token.KwPrivate:
			tn.Space = ast.PrivateSpace
			p.next()
			continue
		case token.KwConst:
			tn.Const = true
			p.next()
			continue
		case token.KwVolatile:
			tn.Volatile = true
			p.next()
			continue
		case token.KwStatic:
			p.next()
			continue
		}
		break
	}
	switch p.cur().Kind {
	case token.KwVoid:
		tn.Name = "void"
		p.next()
	case token.KwUnsigned, token.KwSigned:
		unsigned := p.cur().Kind == token.KwUnsigned
		p.next()
		base := "int"
		if p.at(token.IDENT) && scalarTypeNames[p.cur().Lit] {
			base = p.next().Lit
		}
		if unsigned {
			switch base {
			case "char":
				base = "uchar"
			case "short":
				base = "ushort"
			case "int":
				base = "uint"
			case "long":
				base = "ulong"
			}
		}
		tn.Name = base
	case token.IDENT:
		if !p.isTypeName(p.cur().Lit) {
			p.errorf("expected type name, found %s", p.cur())
			return tn
		}
		tn.Name = p.next().Lit
	default:
		p.errorf("expected type name, found %s", p.cur())
		return tn
	}
	// Pointer stars with interleaved qualifiers.
	for {
		switch p.cur().Kind {
		case token.MUL:
			tn.PtrDepth++
			p.next()
		case token.KwRestrict:
			tn.Restrict = true
			p.next()
		case token.KwConst:
			tn.Const = true
			p.next()
		case token.KwVolatile:
			tn.Volatile = true
			p.next()
		default:
			return tn
		}
	}
}

// --- top-level declarations --------------------------------------------------

func (p *Parser) parseTopDecl() ast.Decl {
	switch p.cur().Kind {
	case token.SEMICOLON:
		p.next()
		return nil
	case token.KwTypedef:
		kw := p.next()
		tn := p.parseTypeName()
		name := p.expect(token.IDENT)
		p.expect(token.SEMICOLON)
		p.typedefs[name.Lit] = true
		return &ast.TypedefDecl{KwPos: kw.Pos, Type: tn, Name: name.Lit}
	case token.KwStruct:
		p.errorf("struct declarations are not supported; use SoA layouts (see the paper's Data Organization optimization)")
		return nil
	}

	// Function or file-scope variable.
	isKernel, isInline := false, false
	kwPos := p.cur().Pos
	for {
		switch p.cur().Kind {
		case token.KwKernel:
			isKernel = true
			p.next()
			continue
		case token.KwInline, token.KwStatic:
			if p.cur().Kind == token.KwInline {
				isInline = true
			}
			p.next()
			continue
		}
		break
	}
	ret := p.parseTypeName()
	if len(p.errs) > 0 {
		return nil
	}
	name := p.expect(token.IDENT)
	if p.at(token.LPAREN) {
		return p.parseFuncRest(kwPos, isKernel, isInline, ret, name)
	}
	// File-scope variable declaration list.
	decls := p.parseDeclarators(name)
	p.expect(token.SEMICOLON)
	return &ast.FileVarDecl{Type: ret, Decls: decls}
}

func (p *Parser) parseFuncRest(kwPos token.Pos, isKernel, isInline bool, ret *ast.TypeName, name token.Token) ast.Decl {
	p.expect(token.LPAREN)
	var params []*ast.Param
	if !p.at(token.RPAREN) {
		for {
			if p.at(token.KwVoid) && p.peekKind(1) == token.RPAREN {
				p.next()
				break
			}
			tn := p.parseTypeName()
			var pname token.Token
			if p.at(token.IDENT) {
				pname = p.next()
			}
			params = append(params, &ast.Param{Type: tn, NamePos: pname.Pos, Name: pname.Lit})
			if !p.at(token.COMMA) {
				break
			}
			p.next()
		}
	}
	p.expect(token.RPAREN)
	if p.at(token.SEMICOLON) { // prototype: accepted and dropped
		p.next()
		return nil
	}
	body := p.parseBlock()
	return &ast.FuncDecl{
		KwPos: kwPos, IsKernel: isKernel, IsInline: isInline,
		Ret: ret, Name: name.Lit, Params: params, Body: body,
	}
}

// parseDeclarators parses the remainder of a declaration after the
// first declarator name has been consumed.
func (p *Parser) parseDeclarators(first token.Token) []*ast.Declarator {
	var decls []*ast.Declarator
	d := p.parseDeclaratorRest(first)
	decls = append(decls, d)
	for p.at(token.COMMA) {
		p.next()
		ptrDepth := 0
		for p.at(token.MUL) {
			ptrDepth++
			p.next()
		}
		name := p.expect(token.IDENT)
		d := p.parseDeclaratorRest(name)
		d.PtrDepth = ptrDepth
		decls = append(decls, d)
	}
	return decls
}

func (p *Parser) parseDeclaratorRest(name token.Token) *ast.Declarator {
	d := &ast.Declarator{NamePos: name.Pos, Name: name.Lit}
	if p.at(token.LBRACK) {
		p.next()
		if !p.at(token.RBRACK) {
			d.ArrayLen = p.parseExpr()
		}
		p.expect(token.RBRACK)
	}
	if p.at(token.ASSIGN) {
		p.next()
		d.Init = p.parseInitializer()
	}
	return d
}

// parseInitializer parses an initializer; brace-enclosed aggregate
// initializers are encoded as VectorLit with To == nil.
func (p *Parser) parseInitializer() ast.Expr {
	if p.at(token.LBRACE) {
		lb := p.next()
		var elems []ast.Expr
		for !p.at(token.RBRACE) && !p.at(token.EOF) {
			elems = append(elems, p.parseInitializer())
			if !p.at(token.COMMA) {
				break
			}
			p.next()
		}
		p.expect(token.RBRACE)
		return &ast.VectorLit{LP: lb.Pos, To: nil, Elems: elems}
	}
	return p.parseAssignExpr()
}

// --- statements --------------------------------------------------------------

func (p *Parser) parseBlock() *ast.BlockStmt {
	lb := p.expect(token.LBRACE)
	blk := &ast.BlockStmt{LB: lb.Pos}
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		if len(p.errs) > 0 {
			break
		}
		blk.List = append(blk.List, p.parseStmt())
	}
	p.expect(token.RBRACE)
	return blk
}

func (p *Parser) parseStmt() ast.Stmt {
	switch p.cur().Kind {
	case token.LBRACE:
		return p.parseBlock()
	case token.SEMICOLON:
		t := p.next()
		return &ast.EmptyStmt{Semi: t.Pos}
	case token.KwIf:
		return p.parseIf()
	case token.KwFor:
		return p.parseFor()
	case token.KwWhile:
		return p.parseWhile()
	case token.KwDo:
		return p.parseDoWhile()
	case token.KwReturn:
		kw := p.next()
		var x ast.Expr
		if !p.at(token.SEMICOLON) {
			x = p.parseExpr()
		}
		p.expect(token.SEMICOLON)
		return &ast.ReturnStmt{KwPos: kw.Pos, X: x}
	case token.KwBreak:
		kw := p.next()
		p.expect(token.SEMICOLON)
		return &ast.BreakStmt{KwPos: kw.Pos}
	case token.KwContinue:
		kw := p.next()
		p.expect(token.SEMICOLON)
		return &ast.ContinueStmt{KwPos: kw.Pos}
	case token.KwGoto, token.KwSwitch, token.KwCase, token.KwDefault:
		p.errorf("%s statements are not supported by the clc dialect", p.cur().Kind)
		p.next()
		return &ast.EmptyStmt{Semi: p.cur().Pos}
	}
	if p.startsType(0) && p.isDeclStart() {
		return p.parseDeclStmt()
	}
	x := p.parseExpr()
	p.expect(token.SEMICOLON)
	return &ast.ExprStmt{X: x}
}

// isDeclStart disambiguates a declaration from an expression that
// begins with an identifier that happens to be a type name used in a
// cast-like position; after qualifiers and the type name we must see
// '*' or an identifier.
func (p *Parser) isDeclStart() bool {
	n := 0
	for {
		switch p.peekKind(n) {
		case token.KwConst, token.KwVolatile, token.KwGlobal, token.KwLocal,
			token.KwConstant, token.KwPrivate, token.KwStatic:
			n++
			continue
		case token.KwUnsigned, token.KwSigned, token.KwVoid:
			return true
		case token.IDENT:
			if !p.isTypeName(p.toks[p.pos+n].Lit) {
				return false
			}
			n++
			for p.peekKind(n) == token.MUL || p.peekKind(n) == token.KwRestrict || p.peekKind(n) == token.KwConst {
				n++
			}
			return p.peekKind(n) == token.IDENT
		default:
			return false
		}
	}
}

func (p *Parser) parseDeclStmt() ast.Stmt {
	tn := p.parseTypeName()
	name := p.expect(token.IDENT)
	decls := p.parseDeclarators(name)
	p.expect(token.SEMICOLON)
	return &ast.DeclStmt{Type: tn, Decls: decls}
}

func (p *Parser) parseIf() ast.Stmt {
	kw := p.next()
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	then := p.parseStmt()
	var els ast.Stmt
	if p.at(token.KwElse) {
		p.next()
		els = p.parseStmt()
	}
	return &ast.IfStmt{KwPos: kw.Pos, Cond: cond, Then: then, Else: els}
}

func (p *Parser) parseFor() ast.Stmt {
	kw := p.next()
	p.expect(token.LPAREN)
	var init ast.Stmt
	if !p.at(token.SEMICOLON) {
		if p.startsType(0) && p.isDeclStart() {
			init = p.parseDeclStmt() // consumes ';'
		} else {
			x := p.parseExpr()
			p.expect(token.SEMICOLON)
			init = &ast.ExprStmt{X: x}
		}
	} else {
		p.next()
	}
	var cond ast.Expr
	if !p.at(token.SEMICOLON) {
		cond = p.parseExpr()
	}
	p.expect(token.SEMICOLON)
	var post ast.Expr
	if !p.at(token.RPAREN) {
		post = p.parseExpr()
	}
	p.expect(token.RPAREN)
	body := p.parseStmt()
	return &ast.ForStmt{KwPos: kw.Pos, Init: init, Cond: cond, Post: post, Body: body}
}

func (p *Parser) parseWhile() ast.Stmt {
	kw := p.next()
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	body := p.parseStmt()
	return &ast.WhileStmt{KwPos: kw.Pos, Cond: cond, Body: body}
}

func (p *Parser) parseDoWhile() ast.Stmt {
	kw := p.next()
	body := p.parseStmt()
	p.expect(token.KwWhile)
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	p.expect(token.SEMICOLON)
	return &ast.DoWhileStmt{KwPos: kw.Pos, Body: body, Cond: cond}
}

// --- expressions -------------------------------------------------------------

// parseExpr parses a full expression including assignment and comma-free
// top level (the comma operator is not supported).
func (p *Parser) parseExpr() ast.Expr { return p.parseAssignExpr() }

func (p *Parser) parseAssignExpr() ast.Expr {
	lhs := p.parseCondExpr()
	if p.cur().Kind.IsAssignOp() {
		op := p.next().Kind
		rhs := p.parseAssignExpr()
		return &ast.AssignExpr{LHS: lhs, Op: op, RHS: rhs}
	}
	return lhs
}

func (p *Parser) parseCondExpr() ast.Expr {
	cond := p.parseBinaryExpr(1)
	if !p.at(token.QUESTION) {
		return cond
	}
	p.next()
	then := p.parseAssignExpr()
	p.expect(token.COLON)
	els := p.parseCondExpr()
	return &ast.CondExpr{Cond: cond, Then: then, Else: els}
}

func (p *Parser) parseBinaryExpr(minPrec int) ast.Expr {
	x := p.parseUnaryExpr()
	for {
		prec := p.cur().Kind.Precedence()
		if prec < minPrec {
			return x
		}
		op := p.next().Kind
		y := p.parseBinaryExpr(prec + 1)
		x = &ast.BinaryExpr{X: x, Op: op, Y: y}
	}
}

func (p *Parser) parseUnaryExpr() ast.Expr {
	switch p.cur().Kind {
	case token.ADD:
		p.next()
		return p.parseUnaryExpr()
	case token.SUB, token.LNOT, token.NOT, token.MUL, token.AND, token.INC, token.DEC:
		t := p.next()
		x := p.parseUnaryExpr()
		return &ast.UnaryExpr{OpPos: t.Pos, Op: t.Kind, X: x}
	case token.KwSizeof:
		kw := p.next()
		p.expect(token.LPAREN)
		tn := p.parseTypeName()
		p.expect(token.RPAREN)
		return &ast.SizeofExpr{KwPos: kw.Pos, To: tn}
	case token.LPAREN:
		// Either a cast/vector literal "(T)..." or a parenthesized
		// expression.
		if p.startsType(1) {
			return p.parseCastOrVectorLit()
		}
	}
	return p.parsePostfixExpr()
}

func (p *Parser) parseCastOrVectorLit() ast.Expr {
	lp := p.expect(token.LPAREN)
	tn := p.parseTypeName()
	p.expect(token.RPAREN)
	// Vector literal: (float4)(a, b, c, d).
	if p.at(token.LPAREN) && isVectorTypeName(tn.Name) && tn.PtrDepth == 0 {
		p.next()
		var elems []ast.Expr
		for {
			elems = append(elems, p.parseAssignExpr())
			if !p.at(token.COMMA) {
				break
			}
			p.next()
		}
		p.expect(token.RPAREN)
		return &ast.VectorLit{LP: lp.Pos, To: tn, Elems: elems}
	}
	x := p.parseUnaryExpr()
	return &ast.CastExpr{LP: lp.Pos, To: tn, X: x}
}

func isVectorTypeName(name string) bool {
	return IsBuiltinTypeName(name) && name[len(name)-1] >= '0' && name[len(name)-1] <= '9'
}

func (p *Parser) parsePostfixExpr() ast.Expr {
	x := p.parsePrimaryExpr()
	for {
		switch p.cur().Kind {
		case token.LBRACK:
			p.next()
			idx := p.parseExpr()
			p.expect(token.RBRACK)
			x = &ast.IndexExpr{X: x, Index: idx}
		case token.PERIOD:
			p.next()
			sel := p.expect(token.IDENT)
			x = &ast.MemberExpr{X: x, Sel: sel.Lit, SelPos: sel.Pos}
		case token.INC, token.DEC:
			t := p.next()
			x = &ast.PostfixExpr{X: x, Op: t.Kind}
		case token.LPAREN:
			id, ok := x.(*ast.Ident)
			if !ok {
				p.errorf("called object is not a function name")
				return x
			}
			p.next()
			var args []ast.Expr
			if !p.at(token.RPAREN) {
				for {
					args = append(args, p.parseAssignExpr())
					if !p.at(token.COMMA) {
						break
					}
					p.next()
				}
			}
			p.expect(token.RPAREN)
			x = &ast.CallExpr{Fun: id, Args: args}
		default:
			return x
		}
	}
}

func (p *Parser) parsePrimaryExpr() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.IDENT:
		p.next()
		return &ast.Ident{NamePos: t.Pos, Name: t.Lit}
	case token.INTLIT:
		p.next()
		return parseIntLit(t)
	case token.FLOATLIT:
		p.next()
		return parseFloatLit(t)
	case token.CHARLIT:
		p.next()
		v := int64(0)
		if len(t.Lit) > 0 {
			v = int64(t.Lit[0])
		}
		return &ast.IntLit{LitPos: t.Pos, Text: t.Lit, Value: v}
	case token.LPAREN:
		p.next()
		x := p.parseExpr()
		p.expect(token.RPAREN)
		return &ast.ParenExpr{LP: t.Pos, X: x}
	}
	p.errorf("unexpected token %s in expression", t)
	p.next()
	return &ast.IntLit{LitPos: t.Pos, Text: "0"}
}

func parseIntLit(t token.Token) *ast.IntLit {
	text := t.Lit
	unsigned := false
	long := false
	for len(text) > 0 {
		switch text[len(text)-1] {
		case 'u', 'U':
			unsigned = true
			text = text[:len(text)-1]
			continue
		case 'l', 'L':
			long = true
			text = text[:len(text)-1]
			continue
		}
		break
	}
	var v uint64
	var err error
	if strings.HasPrefix(text, "0x") || strings.HasPrefix(text, "0X") {
		v, err = strconv.ParseUint(text[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(text, 10, 64)
	}
	if err != nil {
		v = 0
	}
	return &ast.IntLit{LitPos: t.Pos, Text: t.Lit, Value: int64(v), Unsigned: unsigned, Long: long}
}

func parseFloatLit(t token.Token) *ast.FloatLit {
	text := t.Lit
	isF32 := false
	for len(text) > 0 {
		switch text[len(text)-1] {
		case 'f', 'F':
			isF32 = true
			text = text[:len(text)-1]
			continue
		case 'l', 'L':
			text = text[:len(text)-1]
			continue
		}
		break
	}
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		v = 0
	}
	return &ast.FloatLit{LitPos: t.Pos, Text: t.Lit, Value: v, IsF32: isF32}
}
