package ir_test

import (
	"testing"

	"maligo/internal/clc/ir"
)

// countOps tallies opcodes in a kernel.
func countOps(k *ir.Kernel) map[ir.Op]int {
	m := make(map[ir.Op]int)
	for _, in := range k.Code {
		m[in.Op]++
	}
	return m
}

func TestConstantFoldingCollapsesLiteralArithmetic(t *testing.T) {
	prog := compile(t, `
__kernel void k(__global int* p) {
    p[0] = (3 + 4) * 2 - 1; // 13, entirely constant
}`)
	k := prog.Kernel("k")
	ops := countOps(k)
	// One AddI survives for the p+0 address computation (its base is a
	// runtime parameter); the literal value arithmetic must be gone.
	if ops[ir.MulI] != 0 || ops[ir.SubI] != 0 || ops[ir.AddI] > 1 {
		t.Fatalf("literal arithmetic not folded:\n%s", k.Disassemble())
	}
	// The folded value must appear as an immediate.
	found := false
	for _, in := range k.Code {
		if in.Op == ir.ImmI && in.Imm == 13 {
			found = true
		}
	}
	if !found {
		t.Fatalf("folded constant 13 missing:\n%s", k.Disassemble())
	}
}

func TestDeadCodeEliminated(t *testing.T) {
	prog := compile(t, `
__kernel void k(__global int* p) {
    int unused = 5 * 7;   // never read
    int used = 3;
    p[0] = used;
}`)
	k := prog.Kernel("k")
	for _, in := range k.Code {
		if in.Op == ir.ImmI && in.Imm == 35 {
			t.Fatalf("dead computation survived:\n%s", k.Disassemble())
		}
	}
}

func TestOptimizerShrinksAddressArithmetic(t *testing.T) {
	// Compile the same kernel, then re-run lowering without the
	// optimizer by comparing against a hand-rolled unoptimized count:
	// here we just assert the optimizer achieves a meaningful static
	// reduction on a typical indexing-heavy kernel.
	prog := compile(t, `
__kernel void k(__global const float* a, __global float* b, const uint n) {
    size_t i = get_global_id(0);
    if (i < n) {
        b[i * 4 + 2] = a[i * 4] + a[i * 4 + 1] + a[i * 4 + 2] + a[i * 4 + 3];
    }
}`)
	k := prog.Kernel("k")
	if len(k.Code) > 60 {
		t.Fatalf("optimized kernel unexpectedly large (%d instrs):\n%s", len(k.Code), k.Disassemble())
	}
}

func TestOptimizePreservesJumpTargets(t *testing.T) {
	prog := compile(t, `
__kernel void k(__global int* p, const int n) {
    int unused1 = 11 * 13;
    int acc = 0;
    for (int i = 0; i < n; i++) {
        int unused2 = i; // pure, dead
        if (i % 2 == 0) {
            acc += i;
        } else {
            acc -= 1;
        }
    }
    p[0] = acc;
}`)
	k := prog.Kernel("k")
	for pc, in := range k.Code {
		switch in.Op {
		case ir.Jmp, ir.JmpIf, ir.JmpIfZ:
			if in.Imm < 0 || in.Imm > int64(len(k.Code)) {
				t.Fatalf("instr %d: jump target %d out of range after DCE:\n%s", pc, in.Imm, k.Disassemble())
			}
		}
	}
}

// TestOptimizeIdempotent: running Optimize again must not change the
// code (fixpoint).
func TestOptimizeIdempotent(t *testing.T) {
	prog := compile(t, `
__kernel void k(__global float* p, const uint n) {
    size_t i = get_global_id(0);
    if (i < n) {
        p[i] = p[i] * 2.0f + 1.0f;
    }
}`)
	k := prog.Kernel("k")
	before := len(k.Code)
	ir.Optimize(k)
	if len(k.Code) != before {
		t.Fatalf("Optimize not idempotent: %d -> %d instrs", before, len(k.Code))
	}
}

// TestOptimizeKeepsSideEffects: stores, atomics and barriers must
// survive even when their results are unused.
func TestOptimizeKeepsSideEffects(t *testing.T) {
	prog := compile(t, `
__kernel void k(__global int* p, __local int* s) {
    atomic_add(&p[0], 1);    // result discarded, op must stay
    s[get_local_id(0)] = 1;
    barrier(1);
    p[1] = s[0];
}`)
	k := prog.Kernel("k")
	ops := countOps(k)
	if ops[ir.AtomicOp] != 1 {
		t.Fatalf("atomic removed:\n%s", k.Disassemble())
	}
	if ops[ir.BarrierOp] != 1 {
		t.Fatalf("barrier removed:\n%s", k.Disassemble())
	}
	if ops[ir.StoreI] < 2 {
		t.Fatalf("stores removed:\n%s", k.Disassemble())
	}
}

func TestFoldedComparisonDrivesBranch(t *testing.T) {
	// A constant condition folds to an immediate; execution (covered
	// by VM tests) must still take the right branch. Here we check the
	// comparison instruction disappeared.
	prog := compile(t, `
__kernel void k(__global int* p) {
    if (3 < 5) {
        p[0] = 1;
    } else {
        p[0] = 2;
    }
}`)
	k := prog.Kernel("k")
	ops := countOps(k)
	if ops[ir.CmpLtI] != 0 {
		t.Fatalf("constant comparison not folded:\n%s", k.Disassemble())
	}
}
