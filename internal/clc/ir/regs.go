package ir

import "maligo/internal/clc/builtin"

// The exported register def/use model. The optimizer's dead-code pass
// keeps its own map-based accounting (collectReads); this structured
// form is what CFG-level analyses (internal/clc/analysis/dataflow)
// build def-use chains from. Keep the two in sync when adding opcodes.

// Register banks.
const (
	BankI = 0 // int64 slots
	BankF = 1 // float64 slots
)

// RegRef identifies a contiguous run of Width slots in one bank.
type RegRef struct {
	Bank  int
	Slot  int32
	Width int32
}

// Overlaps reports whether two references share at least one slot.
func (r RegRef) Overlaps(o RegRef) bool {
	return r.Bank == o.Bank && r.Slot < o.Slot+o.Width && o.Slot < r.Slot+r.Width
}

func instrWidth(in *Instr) int32 {
	if in.Width == 0 {
		return 1
	}
	return int32(in.Width)
}

// Def returns the register range an instruction writes, if any. For
// CallB the width is an upper bound (scalar-reducing builtins like dot
// write one lane); over-approximating a def is conservative for
// analyses that kill facts on writes.
func Def(in *Instr) (RegRef, bool) {
	w := instrWidth(in)
	switch in.Op {
	case MovI, ImmI, BcastI, AddI, SubI, MulI, DivI, RemI, AndI, OrI, XorI,
		ShlI, ShrI, NegI, NotI, CmpEqI, CmpNeI, CmpLtI, CmpLeI,
		CmpEqF, CmpNeF, CmpLtF, CmpLeF, SelI, CvtII, CvtFI, LoadI:
		return RegRef{BankI, in.A, w}, true
	case MovF, ImmF, BcastF, AddF, SubF, MulF, DivF, NegF, SelF, CvtIF, CvtFF, LoadF:
		return RegRef{BankF, in.A, w}, true
	case CallB, AtomicOp:
		if in.Base.IsFloat() {
			return RegRef{BankF, in.A, w}, true
		}
		return RegRef{BankI, in.A, w}, true
	}
	return RegRef{}, false
}

// Uses invokes fn for every register range an instruction reads.
func Uses(in *Instr, fn func(RegRef)) {
	w := instrWidth(in)
	i := func(s, n int32) { fn(RegRef{BankI, s, n}) }
	f := func(s, n int32) { fn(RegRef{BankF, s, n}) }
	switch in.Op {
	case MovI:
		i(in.B, w)
	case MovF:
		f(in.B, w)
	case BcastI:
		i(in.B, 1)
	case BcastF:
		f(in.B, 1)
	case AddI, SubI, MulI, DivI, RemI, AndI, OrI, XorI, ShlI, ShrI,
		CmpEqI, CmpNeI, CmpLtI, CmpLeI:
		i(in.B, w)
		i(in.C, w)
	case NegI, NotI, CvtII:
		i(in.B, w)
	case AddF, SubF, MulF, DivF, CmpEqF, CmpNeF, CmpLtF, CmpLeF:
		f(in.B, w)
		f(in.C, w)
	case NegF, CvtFF:
		f(in.B, w)
	case CvtIF:
		i(in.B, w)
	case CvtFI:
		f(in.B, w)
	case SelI:
		i(in.B, w)
		i(in.C, w)
		i(in.D, w)
	case SelF:
		i(in.B, w)
		f(in.C, w)
		f(in.D, w)
	case LoadI, LoadF:
		i(in.B, 1)
	case StoreI:
		i(in.A, w)
		i(in.B, 1)
	case StoreF:
		f(in.A, w)
		i(in.B, 1)
	case CallB:
		id := builtin.ID(in.Imm)
		switch {
		case id.IsWorkItemQuery():
			i(in.B, 1)
		case id == builtin.GetWorkDim:
		case id == builtin.Min || id == builtin.Max || id == builtin.Abs ||
			id == builtin.Clamp:
			if in.Base.IsFloat() {
				f(in.B, w)
				f(in.C, w)
				f(in.D, w)
			} else {
				i(in.B, w)
				i(in.C, w)
				i(in.D, w)
			}
		case id == builtin.Select:
			if in.Base.IsFloat() {
				f(in.B, w)
				f(in.C, w)
			} else {
				i(in.B, w)
				i(in.C, w)
			}
			i(in.D, w)
		default:
			f(in.B, w)
			f(in.C, w)
			f(in.D, w)
		}
	case AtomicOp:
		i(in.B, 1)
		i(in.C, 1)
		i(in.D, 1)
	case JmpIf, JmpIfZ:
		i(in.B, 1)
	}
}
