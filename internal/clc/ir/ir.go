// Package ir defines the register-machine intermediate representation
// executed by the VM, and the lowering pass that translates
// semantically-checked OpenCL C into it.
//
// The machine model: each kernel instance (work-item) owns two flat
// register banks, one of int64 slots and one of float64 slots. A
// virtual register is a contiguous run of Width slots in one bank;
// slot indices are assigned statically during lowering (registers are
// in SSA-like single-assignment form only for temporaries — named
// variables reuse their slots). All helper-function calls are fully
// inlined, as a real OpenCL kernel compiler does (recursion is illegal
// in OpenCL C), so at run time there is exactly one frame per
// work-item and barriers can suspend a work-item by saving that frame.
package ir

import (
	"fmt"
	"strings"
	"sync/atomic"

	"maligo/internal/clc/ast"
	"maligo/internal/clc/builtin"
	"maligo/internal/clc/token"
	"maligo/internal/clc/types"
)

// Op is an IR opcode.
type Op int

// IR opcodes. I-suffixed ops operate on the integer bank, F-suffixed
// on the float bank. Element-wise ops process Width lanes.
const (
	Nop Op = iota

	MovI // A <- B
	MovF
	ImmI   // A <- Imm (broadcast to Width lanes)
	ImmF   // A <- FImm (broadcast)
	BcastI // A[0..W) <- B[0]
	BcastF

	AddI
	SubI
	MulI
	DivI // signedness from Base
	RemI
	AndI
	OrI
	XorI
	ShlI
	ShrI // arithmetic/logical from Base signedness
	NegI
	NotI
	AddF
	SubF
	MulF
	DivF
	NegF

	CmpEqI // A(int lanes) <- B == C
	CmpNeI
	CmpLtI
	CmpLeI
	CmpEqF
	CmpNeF
	CmpLtF
	CmpLeF

	SelI // A <- B(cond, int lanes) ? C : D
	SelF

	CvtII // int->int resize/re-sign; Base=dst base, Base2=src base
	CvtIF // int->float; Base=dst float base, Base2=src int base
	CvtFI // float->int
	CvtFF // float<->float (f32 rounding when Base is Float)

	LoadI // A <- mem[B]; Base=element type, Width lanes consecutive
	LoadF
	StoreI // mem[B] <- A
	StoreF

	CallB    // A <- builtin(B, C, D); Imm=builtin.ID
	AtomicOp // A <- atomic op at mem[B] with C (and D for cmpxchg); Imm=builtin.ID
	BarrierOp

	Jmp    // goto Imm
	JmpIf  // if I[B] != 0 goto Imm
	JmpIfZ // if I[B] == 0 goto Imm
	Ret
)

var opNames = [...]string{
	Nop:  "nop",
	MovI: "movi", MovF: "movf", ImmI: "immi", ImmF: "immf", BcastI: "bcasti", BcastF: "bcastf",
	AddI: "addi", SubI: "subi", MulI: "muli", DivI: "divi", RemI: "remi",
	AndI: "andi", OrI: "ori", XorI: "xori", ShlI: "shli", ShrI: "shri",
	NegI: "negi", NotI: "noti",
	AddF: "addf", SubF: "subf", MulF: "mulf", DivF: "divf", NegF: "negf",
	CmpEqI: "cmpeqi", CmpNeI: "cmpnei", CmpLtI: "cmplti", CmpLeI: "cmplei",
	CmpEqF: "cmpeqf", CmpNeF: "cmpnef", CmpLtF: "cmpltf", CmpLeF: "cmplef",
	SelI: "seli", SelF: "self",
	CvtII: "cvtii", CvtIF: "cvtif", CvtFI: "cvtfi", CvtFF: "cvtff",
	LoadI: "loadi", LoadF: "loadf", StoreI: "storei", StoreF: "storef",
	CallB: "callb", AtomicOp: "atomic", BarrierOp: "barrier",
	Jmp: "jmp", JmpIf: "jmpif", JmpIfZ: "jmpifz", Ret: "ret",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsFloatArith reports whether the op is a float-bank arithmetic op.
func (o Op) IsFloatArith() bool { return o >= AddF && o <= NegF }

// IsIntArith reports whether the op is an integer-bank arithmetic op.
func (o Op) IsIntArith() bool { return o >= AddI && o <= NotI }

// IsMemory reports whether the op accesses simulated memory.
func (o Op) IsMemory() bool {
	switch o {
	case LoadI, LoadF, StoreI, StoreF, AtomicOp:
		return true
	}
	return false
}

// Instr is a single IR instruction. The interpretation of A/B/C/D
// depends on the opcode; see the opcode comments.
type Instr struct {
	Op    Op
	A     int32 // usually the destination register (first slot index)
	B     int32
	C     int32
	D     int32
	Imm   int64
	FImm  float64
	Width uint8 // lanes
	Base  types.Base
	Base2 types.Base // conversion source base

	// Pos is the source position of the expression or statement the
	// instruction was lowered from; diagnostics (static analysis, the
	// dynamic race checker, VM memory faults) map IR back to source
	// through it. Optimization rewrites preserve it.
	Pos token.Pos
}

// String disassembles the instruction.
func (in Instr) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", in.Op)
	switch in.Op {
	case ImmI:
		fmt.Fprintf(&b, "r%d <- %d", in.A, in.Imm)
	case ImmF:
		fmt.Fprintf(&b, "r%d <- %g", in.A, in.FImm)
	case Jmp:
		fmt.Fprintf(&b, "-> %d", in.Imm)
	case JmpIf, JmpIfZ:
		fmt.Fprintf(&b, "r%d -> %d", in.B, in.Imm)
	case CallB, AtomicOp:
		fmt.Fprintf(&b, "r%d <- %s(r%d, r%d, r%d)", in.A, builtin.ID(in.Imm), in.B, in.C, in.D)
	case Ret, BarrierOp, Nop:
	default:
		fmt.Fprintf(&b, "r%d, r%d, r%d, r%d", in.A, in.B, in.C, in.D)
	}
	if in.Width > 1 {
		fmt.Fprintf(&b, " x%d", in.Width)
	}
	if in.Base != types.Invalid {
		fmt.Fprintf(&b, " [%s]", in.Base)
	}
	return b.String()
}

// ParamClass describes how a kernel argument is delivered.
type ParamClass int

// Parameter classes.
const (
	ParamScalarI   ParamClass = iota // integer scalar in the I bank
	ParamScalarF                     // float scalar in the F bank
	ParamGlobalPtr                   // __global or __constant buffer address
	ParamLocalPtr                    // __local pointer sized by the host
)

// Param describes one kernel parameter after lowering.
type Param struct {
	Name  string
	Type  *types.Type
	Class ParamClass
	Slot  int32 // register slot receiving the value/address
	Space ast.AddressSpace
}

// ArrayDecl records the layout of one fixed-size in-kernel array
// (__local or __private) so IR-level analyses can map a simulated
// byte address back to the declaring array and its extent.
type ArrayDecl struct {
	Name     string
	Space    int   // SpaceLocal or SpacePrivate
	Offset   int64 // byte offset within the space
	Bytes    int64 // total extent in bytes
	ElemSize int64
	Len      int64 // declared element count
	Pos      token.Pos
}

// Contains reports whether the byte address addr (an EncodeAddr value)
// falls inside this array's extent.
func (a ArrayDecl) Contains(addr int64) bool {
	space, off := DecodeAddr(addr)
	return space == a.Space && off >= a.Offset && off < a.Offset+a.Bytes
}

// Kernel is a lowered kernel ready for execution.
type Kernel struct {
	Name   string
	Params []Param
	Code   []Instr

	// Arrays lists the fixed-size __local/__private arrays declared in
	// the kernel (including arrays of inlined helpers), in layout
	// order. Analyses use it to resolve constant base addresses back to
	// source-level names and extents.
	Arrays []ArrayDecl

	NumI int // integer bank size (slots)
	NumF int // float bank size (slots)

	// RegBytes is the total architectural register demand in bytes,
	// accounting for element sizes (a double4 costs 32 bytes, a
	// float4 costs 16) — the input to the register-pressure model.
	RegBytes int

	// LocalBytes is the statically declared __local memory per
	// work-group (from in-kernel __local arrays); host-provided
	// __local pointer arguments add to this at enqueue time.
	LocalBytes int

	// PrivateBytes is the per-work-item private array arena.
	PrivateBytes int

	// MaxVectorWidth is the widest vector operated on; the device
	// model uses it together with RegisterFootprint to estimate
	// register pressure.
	MaxVectorWidth int

	// UsesDouble reports whether any double-precision value flows
	// through the kernel.
	UsesDouble bool

	// UsesBarrier reports whether the kernel executes barrier();
	// work-groups of such kernels must be resident as a whole.
	UsesBarrier bool

	// RestrictParams counts pointer parameters declared restrict, and
	// ConstParams those declared const; the Mali compiler model uses
	// them as scheduling-quality hints (see DESIGN.md).
	RestrictParams int
	ConstParams    int

	// compiled and laneForm cache execution-engine compiled forms of
	// the kernel (internal/vm stores its closure program in compiled
	// and its lock-step lane program in laneForm, typed as `any` so ir
	// stays free of a vm dependency). Each slot is written at most
	// with one concrete type — an atomic.Value cannot change types —
	// which is why the two engine tiers get separate slots instead of
	// sharing one. Concurrent compilers may race to fill a slot, which
	// is benign because compilation is a pure function of the
	// (immutable) kernel.
	compiled atomic.Value
	laneForm atomic.Value
}

// CompiledForm returns the execution engine's cached compiled form of
// the kernel, or nil when no engine has compiled it yet.
func (k *Kernel) CompiledForm() any { return k.compiled.Load() }

// SetCompiledForm caches an engine's compiled form on the kernel so
// every enqueue after the first reuses it.
func (k *Kernel) SetCompiledForm(v any) { k.compiled.Store(v) }

// LaneForm returns the lane engine's cached compiled form of the
// kernel, or nil when it has not been built yet. It is a second slot
// deliberately separate from CompiledForm: an atomic.Value must only
// ever hold one concrete type, and both engine tiers may memoize
// against the same kernel.
func (k *Kernel) LaneForm() any { return k.laneForm.Load() }

// SetLaneForm caches the lane engine's compiled form on the kernel.
func (k *Kernel) SetLaneForm(v any) { k.laneForm.Store(v) }

// RegisterFootprint estimates the per-work-item register demand in
// bytes. Lowering assigns slots without reuse for straight-line
// temporaries, so this is an upper bound; the Mali device model
// compares a scaled version of it against the physical register file
// (see internal/mali). Live variables and the widest temporaries
// dominate the estimate; element sizes matter, which is how
// double-precision wide-vector kernels blow the budget (the paper's
// CL_OUT_OF_RESOURCES failures).
func (k *Kernel) RegisterFootprint() int {
	if k.RegBytes > 0 {
		return k.RegBytes
	}
	return (k.NumI + k.NumF) * 8
}

// Disassemble renders the kernel IR for debugging and the cmd/clc tool.
func (k *Kernel) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel %s(", k.Name)
	for i, p := range k.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s@r%d", p.Type, p.Name, p.Slot)
	}
	fmt.Fprintf(&b, ")  ; I=%d F=%d local=%dB private=%dB\n", k.NumI, k.NumF, k.LocalBytes, k.PrivateBytes)
	for i, in := range k.Code {
		fmt.Fprintf(&b, "%4d  %s\n", i, in.String())
	}
	return b.String()
}

// Program is a compiled translation unit: the kernels it defines plus
// the images of file-scope __constant variables.
type Program struct {
	Kernels map[string]*Kernel

	// ConstantData is the initialized image of file-scope __constant
	// variables; the runtime places it in the constant segment at
	// enqueue time.
	ConstantData []byte

	// Source retains the preprocessed source for diagnostics.
	Source string
}

// Kernel returns the named kernel or nil.
func (p *Program) Kernel(name string) *Kernel { return p.Kernels[name] }

// KernelNames lists kernels in deterministic order.
func (p *Program) KernelNames() []string {
	names := make([]string, 0, len(p.Kernels))
	for n := range p.Kernels { // maligo:allow maporder sorted below
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}
