package ir

import (
	"maligo/internal/clc/builtin"
	"maligo/internal/clc/types"
)

// Optimize runs the kernel-level optimization pipeline: basic-block
// constant folding followed by global dead-code elimination with jump
// retargeting. Lowering produces naive three-address code with many
// materialized immediates (array strides, loop constants); folding and
// DCE shrink both the static code and — more importantly for the
// simulator — the dynamic instruction stream the VM executes.
//
// The pass is semantics-preserving: the differential tests in
// internal/vm compile with the optimizer enabled and compare against
// direct Go evaluation.
func Optimize(k *Kernel) {
	foldConstants(k)
	eliminateDeadCode(k)
}

// --- constant folding ----------------------------------------------------

// constVal tracks the statically-known contents of one register slot.
type constVal struct {
	known bool
	i     int64
	f     float64
}

// foldConstants performs local constant propagation within basic
// blocks: an instruction whose source lanes are all known constants is
// replaced by an immediate move of the computed result (when all
// result lanes agree, which covers the scalar address arithmetic that
// dominates lowered code).
func foldConstants(k *Kernel) {
	leaders := blockLeaders(k.Code)
	iconst := make(map[int32]constVal)
	fconst := make(map[int32]constVal)
	reset := func() {
		for s := range iconst { // maligo:allow maporder deletes commute
			delete(iconst, s)
		}
		for s := range fconst { // maligo:allow maporder deletes commute
			delete(fconst, s)
		}
	}

	killI := func(a int32, w int) {
		for l := int32(0); l < int32(w); l++ {
			delete(iconst, a+l)
		}
	}
	killF := func(a int32, w int) {
		for l := int32(0); l < int32(w); l++ {
			delete(fconst, a+l)
		}
	}

	for pc := range k.Code {
		if leaders[pc] {
			reset()
		}
		in := &k.Code[pc]
		w := int(in.Width)
		if w == 0 {
			w = 1
		}
		switch in.Op {
		case ImmI:
			for l := int32(0); l < int32(w); l++ {
				iconst[in.A+l] = constVal{known: true, i: in.Imm}
			}
		case ImmF:
			for l := int32(0); l < int32(w); l++ {
				fconst[in.A+l] = constVal{known: true, f: in.FImm}
			}
		case MovI:
			for l := int32(0); l < int32(w); l++ {
				if v, ok := iconst[in.B+l]; ok && v.known {
					iconst[in.A+l] = v
				} else {
					delete(iconst, in.A+l)
				}
			}
		case MovF:
			for l := int32(0); l < int32(w); l++ {
				if v, ok := fconst[in.B+l]; ok && v.known {
					fconst[in.A+l] = v
				} else {
					delete(fconst, in.A+l)
				}
			}
		case BcastI:
			if v, ok := iconst[in.B]; ok && v.known {
				for l := int32(0); l < int32(w); l++ {
					iconst[in.A+l] = v
				}
			} else {
				killI(in.A, w)
			}
		case BcastF:
			if v, ok := fconst[in.B]; ok && v.known {
				for l := int32(0); l < int32(w); l++ {
					fconst[in.A+l] = v
				}
			} else {
				killF(in.A, w)
			}

		case AddI, SubI, MulI, DivI, RemI, AndI, OrI, XorI, ShlI, ShrI:
			if w == 1 {
				bv, bok := iconst[in.B]
				cv, cok := iconst[in.C]
				if bok && cok && bv.known && cv.known {
					res := evalIntBin(in.Op, in.Base, bv.i, cv.i)
					*in = Instr{Op: ImmI, A: in.A, Imm: res, Width: 1, Base: in.Base, Pos: in.Pos}
					iconst[in.A] = constVal{known: true, i: res}
					continue
				}
			}
			killI(in.A, w)
		case NegI:
			if w == 1 {
				if bv, ok := iconst[in.B]; ok && bv.known {
					res := wrapIntIR(in.Base, -bv.i)
					*in = Instr{Op: ImmI, A: in.A, Imm: res, Width: 1, Base: in.Base, Pos: in.Pos}
					iconst[in.A] = constVal{known: true, i: res}
					continue
				}
			}
			killI(in.A, w)
		case NotI:
			if w == 1 {
				if bv, ok := iconst[in.B]; ok && bv.known {
					res := wrapIntIR(in.Base, ^bv.i)
					*in = Instr{Op: ImmI, A: in.A, Imm: res, Width: 1, Base: in.Base, Pos: in.Pos}
					iconst[in.A] = constVal{known: true, i: res}
					continue
				}
			}
			killI(in.A, w)

		case AddF, SubF, MulF, DivF:
			if w == 1 {
				bv, bok := fconst[in.B]
				cv, cok := fconst[in.C]
				if bok && cok && bv.known && cv.known {
					res := evalFloatBin(in.Op, in.Base, bv.f, cv.f)
					*in = Instr{Op: ImmF, A: in.A, FImm: res, Width: 1, Base: in.Base, Pos: in.Pos}
					fconst[in.A] = constVal{known: true, f: res}
					continue
				}
			}
			killF(in.A, w)
		case NegF:
			if w == 1 {
				if bv, ok := fconst[in.B]; ok && bv.known {
					res := roundBaseIR(in.Base, -bv.f)
					*in = Instr{Op: ImmF, A: in.A, FImm: res, Width: 1, Base: in.Base, Pos: in.Pos}
					fconst[in.A] = constVal{known: true, f: res}
					continue
				}
			}
			killF(in.A, w)

		case CvtII:
			if w == 1 {
				if bv, ok := iconst[in.B]; ok && bv.known {
					v := bv.i
					if in.Base == types.Bool {
						if v != 0 {
							v = 1
						} else {
							v = 0
						}
					} else {
						v = wrapIntIR(in.Base, v)
					}
					*in = Instr{Op: ImmI, A: in.A, Imm: v, Width: 1, Base: in.Base, Pos: in.Pos}
					iconst[in.A] = constVal{known: true, i: v}
					continue
				}
			}
			killI(in.A, w)
		case CvtIF:
			if w == 1 {
				if bv, ok := iconst[in.B]; ok && bv.known {
					var f float64
					if in.Base2.IsSigned() || in.Base2 == types.Bool {
						f = float64(bv.i)
					} else {
						f = float64(uint64(bv.i))
					}
					f = roundBaseIR(in.Base, f)
					*in = Instr{Op: ImmF, A: in.A, FImm: f, Width: 1, Base: in.Base, Pos: in.Pos}
					fconst[in.A] = constVal{known: true, f: f}
					continue
				}
			}
			killF(in.A, w)
		case CvtFF:
			if w == 1 {
				if bv, ok := fconst[in.B]; ok && bv.known {
					f := roundBaseIR(in.Base, bv.f)
					*in = Instr{Op: ImmF, A: in.A, FImm: f, Width: 1, Base: in.Base, Pos: in.Pos}
					fconst[in.A] = constVal{known: true, f: f}
					continue
				}
			}
			killF(in.A, w)
		case CvtFI:
			killI(in.A, w)

		case CmpEqI, CmpNeI, CmpLtI, CmpLeI:
			if w == 1 {
				bv, bok := iconst[in.B]
				cv, cok := iconst[in.C]
				if bok && cok && bv.known && cv.known {
					res := evalIntCmp(in.Op, in.Base, bv.i, cv.i)
					*in = Instr{Op: ImmI, A: in.A, Imm: res, Width: 1, Base: types.Int, Pos: in.Pos}
					iconst[in.A] = constVal{known: true, i: res}
					continue
				}
			}
			killI(in.A, w)
		case CmpEqF, CmpNeF, CmpLtF, CmpLeF, SelI:
			killI(in.A, w)
		case SelF:
			killF(in.A, w)

		case LoadI:
			killI(in.A, w)
		case LoadF:
			killF(in.A, w)
		case CallB:
			// Builtins write either bank depending on the operation;
			// conservatively kill both at the destination.
			id := builtin.ID(in.Imm)
			wDst := w
			if id == builtin.Dot || id == builtin.Length || id == builtin.Distance {
				wDst = 1
			}
			killI(in.A, wDst)
			killF(in.A, wDst)
		case AtomicOp:
			killI(in.A, 1)
		case StoreI, StoreF, BarrierOp, Jmp, JmpIf, JmpIfZ, Ret, Nop:
			// No register results.
		}
	}
}

// blockLeaders marks the first instruction of every basic block.
func blockLeaders(code []Instr) []bool {
	leaders := make([]bool, len(code)+1)
	if len(code) > 0 {
		leaders[0] = true
	}
	for pc, in := range code {
		switch in.Op {
		case Jmp, JmpIf, JmpIfZ:
			if in.Imm >= 0 && in.Imm <= int64(len(code)) {
				leaders[in.Imm] = true
			}
			if pc+1 < len(code) {
				leaders[pc+1] = true
			}
		case Ret, BarrierOp:
			if pc+1 < len(code) {
				leaders[pc+1] = true
			}
		}
	}
	return leaders[:len(code)]
}

func wrapIntIR(base types.Base, v int64) int64 {
	switch base {
	case types.Bool:
		if v != 0 {
			return 1
		}
		return 0
	case types.Char:
		return int64(int8(v))
	case types.UChar:
		return int64(uint8(v))
	case types.Short:
		return int64(int16(v))
	case types.UShort:
		return int64(uint16(v))
	case types.Int:
		return int64(int32(v))
	case types.UInt:
		return int64(uint32(v))
	}
	return v
}

func roundBaseIR(base types.Base, f float64) float64 {
	if base == types.Float {
		return float64(float32(f))
	}
	return f
}

func evalIntBin(op Op, base types.Base, a, b int64) int64 {
	signed := base.IsSigned()
	size := base.Size()
	if size == 0 {
		size = 8
	}
	var v int64
	switch op {
	case AddI:
		v = a + b
	case SubI:
		v = a - b
	case MulI:
		v = a * b
	case DivI:
		if b == 0 {
			v = 0
		} else if signed {
			v = a / b
		} else {
			v = int64(uint64(a) / uint64(b))
		}
	case RemI:
		if b == 0 {
			v = 0
		} else if signed {
			v = a % b
		} else {
			v = int64(uint64(a) % uint64(b))
		}
	case AndI:
		v = a & b
	case OrI:
		v = a | b
	case XorI:
		v = a ^ b
	case ShlI:
		v = a << (uint64(b) & uint64(size*8-1))
	case ShrI:
		sh := uint64(b) & uint64(size*8-1)
		if signed {
			v = a >> sh
		} else {
			switch size {
			case 1:
				v = int64(uint8(a) >> sh)
			case 2:
				v = int64(uint16(a) >> sh)
			case 4:
				v = int64(uint32(a) >> sh)
			default:
				v = int64(uint64(a) >> sh)
			}
		}
	}
	return wrapIntIR(base, v)
}

func evalFloatBin(op Op, base types.Base, a, b float64) float64 {
	var v float64
	switch op {
	case AddF:
		v = a + b
	case SubF:
		v = a - b
	case MulF:
		v = a * b
	case DivF:
		v = a / b
	}
	return roundBaseIR(base, v)
}

func evalIntCmp(op Op, base types.Base, a, b int64) int64 {
	signed := base.IsSigned()
	var t bool
	switch op {
	case CmpEqI:
		t = a == b
	case CmpNeI:
		t = a != b
	case CmpLtI:
		if signed {
			t = a < b
		} else {
			t = uint64(a) < uint64(b)
		}
	case CmpLeI:
		if signed {
			t = a <= b
		} else {
			t = uint64(a) <= uint64(b)
		}
	}
	if t {
		return 1
	}
	return 0
}

// --- dead-code elimination -------------------------------------------------

// pureWriters are opcodes with no effect other than writing their
// destination register.
func pureWriter(op Op) bool {
	switch op {
	case MovI, MovF, ImmI, ImmF, BcastI, BcastF,
		AddI, SubI, MulI, DivI, RemI, AndI, OrI, XorI, ShlI, ShrI, NegI, NotI,
		AddF, SubF, MulF, DivF, NegF,
		CmpEqI, CmpNeI, CmpLtI, CmpLeI, CmpEqF, CmpNeF, CmpLtF, CmpLeF,
		SelI, SelF, CvtII, CvtIF, CvtFI, CvtFF, Nop:
		return true
	}
	return false
}

// readSlots appends the (bank-agnostic) slots an instruction reads.
// Integer and float banks are disjoint register files, so reads are
// tracked per bank; bankOfSources reports which bank each source
// operand belongs to for the given op.
func collectReads(in *Instr, intReads, fltReads map[int32]bool) {
	w := int32(in.Width)
	if w == 0 {
		w = 1
	}
	markI := func(s int32, n int32) {
		for l := int32(0); l < n; l++ {
			intReads[s+l] = true
		}
	}
	markF := func(s int32, n int32) {
		for l := int32(0); l < n; l++ {
			fltReads[s+l] = true
		}
	}
	switch in.Op {
	case MovI:
		markI(in.B, w)
	case MovF:
		markF(in.B, w)
	case BcastI:
		markI(in.B, 1)
	case BcastF:
		markF(in.B, 1)
	case AddI, SubI, MulI, DivI, RemI, AndI, OrI, XorI, ShlI, ShrI,
		CmpEqI, CmpNeI, CmpLtI, CmpLeI:
		markI(in.B, w)
		markI(in.C, w)
	case NegI, NotI, CvtII:
		markI(in.B, w)
	case AddF, SubF, MulF, DivF, CmpEqF, CmpNeF, CmpLtF, CmpLeF:
		markF(in.B, w)
		markF(in.C, w)
	case NegF, CvtFF:
		markF(in.B, w)
	case CvtIF:
		markI(in.B, w)
	case CvtFI:
		markF(in.B, w)
	case SelI:
		markI(in.B, w)
		markI(in.C, w)
		markI(in.D, w)
	case SelF:
		markI(in.B, w)
		markF(in.C, w)
		markF(in.D, w)
	case LoadI, LoadF:
		markI(in.B, 1) // address
	case StoreI:
		markI(in.A, w) // value
		markI(in.B, 1)
	case StoreF:
		markF(in.A, w)
		markI(in.B, 1)
	case CallB:
		id := builtin.ID(in.Imm)
		switch {
		case id.IsWorkItemQuery():
			markI(in.B, 1)
		case id == builtin.GetWorkDim:
		case id == builtin.Min || id == builtin.Max || id == builtin.Abs ||
			id == builtin.Clamp:
			if in.Base.IsFloat() {
				markF(in.B, w)
				markF(in.C, w)
				markF(in.D, w)
			} else {
				markI(in.B, w)
				markI(in.C, w)
				markI(in.D, w)
			}
		case id == builtin.Select:
			if in.Base.IsFloat() {
				markF(in.B, w)
				markF(in.C, w)
			} else {
				markI(in.B, w)
				markI(in.C, w)
			}
			markI(in.D, w)
		default:
			markF(in.B, w)
			markF(in.C, w)
			markF(in.D, w)
		}
	case AtomicOp:
		markI(in.B, 1)
		markI(in.C, 1)
		markI(in.D, 1)
	case JmpIf, JmpIfZ:
		markI(in.B, 1)
	}
}

// destBank reports which bank an instruction's destination lives in,
// or -1 when it has no register destination.
func destBank(in *Instr) int {
	switch in.Op {
	case MovI, ImmI, BcastI, AddI, SubI, MulI, DivI, RemI, AndI, OrI, XorI,
		ShlI, ShrI, NegI, NotI, CmpEqI, CmpNeI, CmpLtI, CmpLeI,
		CmpEqF, CmpNeF, CmpLtF, CmpLeF, SelI, CvtII, CvtFI:
		return 0
	case MovF, ImmF, BcastF, AddF, SubF, MulF, DivF, NegF, SelF, CvtIF, CvtFF:
		return 1
	}
	return -1
}

// eliminateDeadCode removes pure instructions whose destinations are
// never read anywhere in the kernel, then compacts the code and remaps
// jump targets. The global never-read criterion is conservative but
// safe across loops without full liveness analysis; iterating reaches
// a fixpoint because each round only removes code.
func eliminateDeadCode(k *Kernel) {
	for {
		intReads := make(map[int32]bool)
		fltReads := make(map[int32]bool)
		for i := range k.Code {
			collectReads(&k.Code[i], intReads, fltReads)
		}
		// Kernel argument slots may be read by nothing — fine, they're
		// inputs; no special handling needed.
		removed := 0
		keep := make([]bool, len(k.Code))
		for i := range k.Code {
			in := &k.Code[i]
			keep[i] = true
			if !pureWriter(in.Op) {
				continue
			}
			if in.Op == Nop {
				keep[i] = false
				removed++
				continue
			}
			w := int32(in.Width)
			if w == 0 {
				w = 1
			}
			reads := intReads
			if destBank(in) == 1 {
				reads = fltReads
			}
			dead := true
			for l := int32(0); l < w; l++ {
				if reads[in.A+l] {
					dead = false
					break
				}
			}
			if dead {
				keep[i] = false
				removed++
			}
		}
		if removed == 0 {
			return
		}
		compact(k, keep)
	}
}

// compact drops unkept instructions and remaps jump targets.
func compact(k *Kernel, keep []bool) {
	newIndex := make([]int64, len(k.Code)+1)
	n := int64(0)
	for i := range k.Code {
		newIndex[i] = n
		if keep[i] {
			n++
		}
	}
	newIndex[len(k.Code)] = n
	out := make([]Instr, 0, n)
	for i := range k.Code {
		if !keep[i] {
			continue
		}
		in := k.Code[i]
		switch in.Op {
		case Jmp, JmpIf, JmpIfZ:
			t := in.Imm
			if t < 0 {
				t = 0
			}
			if t > int64(len(k.Code)) {
				t = int64(len(k.Code))
			}
			in.Imm = newIndex[t]
		}
		out = append(out, in)
	}
	k.Code = out
}
