package ir_test

import (
	"strings"
	"testing"

	"maligo/internal/clc"
	"maligo/internal/clc/ir"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := clc.Compile("test.cl", src, "")
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return prog
}

func TestKernelDiscovery(t *testing.T) {
	prog := compile(t, `
__kernel void b(__global int* p) { p[0] = 2; }
__kernel void a(__global int* p) { p[0] = 1; }
float helper(float x) { return x; }
`)
	names := prog.KernelNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("KernelNames = %v (must be sorted, helpers excluded)", names)
	}
	if prog.Kernel("helper") != nil {
		t.Fatal("helper functions must not appear as kernels")
	}
}

func TestParamClasses(t *testing.T) {
	prog := compile(t, `
__kernel void k(__global float* a,
                __constant float* c,
                __local float* l,
                const int n,
                const float s) { a[0] = c[0] + l[0] + (float)n + s; }
`)
	k := prog.Kernel("k")
	want := []ir.ParamClass{
		ir.ParamGlobalPtr, ir.ParamGlobalPtr, ir.ParamLocalPtr,
		ir.ParamScalarI, ir.ParamScalarF,
	}
	for i, p := range k.Params {
		if p.Class != want[i] {
			t.Errorf("param %d class = %v, want %v", i, p.Class, want[i])
		}
	}
}

func TestRestrictAndConstCounting(t *testing.T) {
	prog := compile(t, `
__kernel void k(__global const float* restrict a,
                __global float* restrict b,
                __global float* c) { c[0] = a[0] + b[0]; }
`)
	k := prog.Kernel("k")
	if k.RestrictParams != 2 {
		t.Errorf("RestrictParams = %d, want 2", k.RestrictParams)
	}
	if k.ConstParams != 1 {
		t.Errorf("ConstParams = %d, want 1", k.ConstParams)
	}
}

func TestBarrierAndDoubleFlags(t *testing.T) {
	prog := compile(t, `
__kernel void k(__global double* p, __local double* s) {
    s[get_local_id(0)] = p[0];
    barrier(1);
    p[0] = s[0];
}`)
	k := prog.Kernel("k")
	if !k.UsesBarrier {
		t.Error("UsesBarrier not set")
	}
	if !k.UsesDouble {
		t.Error("UsesDouble not set")
	}
}

func TestLocalAndPrivateLayout(t *testing.T) {
	prog := compile(t, `
__kernel void k(__global float* p) {
    __local float a[64];
    __local float b[32];
    float priv[8];
    priv[0] = 1.0f;
    a[0] = priv[0];
    b[0] = a[0];
    p[0] = b[0];
}`)
	k := prog.Kernel("k")
	if k.LocalBytes != (64+32)*4 {
		t.Errorf("LocalBytes = %d, want %d", k.LocalBytes, 96*4)
	}
	if k.PrivateBytes != 8*4 {
		t.Errorf("PrivateBytes = %d, want 32", k.PrivateBytes)
	}
}

func TestRegisterReuseAcrossStatements(t *testing.T) {
	// Many statements with temporaries must not inflate the frame:
	// temps are reclaimed per statement.
	small := compile(t, `
__kernel void k(__global float* p) {
    p[0] = p[1] * p[2] + p[3];
}`).Kernel("k")
	big := compile(t, `
__kernel void k(__global float* p) {
    p[0] = p[1] * p[2] + p[3];
    p[1] = p[2] * p[3] + p[4];
    p[2] = p[3] * p[4] + p[5];
    p[3] = p[4] * p[5] + p[6];
    p[4] = p[5] * p[6] + p[7];
    p[5] = p[6] * p[7] + p[8];
}`).Kernel("k")
	if big.RegBytes > small.RegBytes+16 {
		t.Errorf("statement temps not reclaimed: small=%d big=%d", small.RegBytes, big.RegBytes)
	}
}

func TestRegisterPressureScalesWithVectorWidth(t *testing.T) {
	narrow := compile(t, `
__kernel void k(__global float* p) {
    float4 a = vload4(0, p);
    float4 b = vload4(1, p);
    vstore4(a + b, 2, p);
}`).Kernel("k")
	wide, err := clc.Compile("t", `
__kernel void k(__global double* p) {
    double4 a = vload4(0, p);
    double4 b = vload4(1, p);
    vstore4(a + b, 2, p);
}`, "")
	if err != nil {
		t.Fatal(err)
	}
	if wide.Kernel("k").RegBytes <= narrow.RegBytes {
		t.Errorf("double4 kernel must demand more register bytes: f32=%d f64=%d",
			narrow.RegBytes, wide.Kernel("k").RegBytes)
	}
}

func TestInlineCalleeRegistersReclaimed(t *testing.T) {
	prog := compile(t, `
float noisy(float x) {
    float a = x * 2.0f;
    float b = a + 1.0f;
    float c = b * a;
    float d = c - x;
    return d;
}
__kernel void k(__global float* p) {
    p[0] = noisy(p[1]);
    p[1] = noisy(p[2]);
    p[2] = noisy(p[3]);
    p[3] = noisy(p[4]);
}`)
	k := prog.Kernel("k")
	// Four inline sites must not quadruple the footprint.
	if k.RegBytes > 200 {
		t.Errorf("inline sites not reclaimed: RegBytes = %d", k.RegBytes)
	}
}

func TestMaxVectorWidth(t *testing.T) {
	prog := compile(t, `
__kernel void k(__global float* p) {
    float8 v = vload8(0, p);
    vstore8(v * (float8)(2.0f), 1, p);
}`)
	if w := prog.Kernel("k").MaxVectorWidth; w != 8 {
		t.Errorf("MaxVectorWidth = %d, want 8", w)
	}
}

func TestConstantSegmentLayout(t *testing.T) {
	prog := compile(t, `
__constant float w[2] = {1.5f, -2.0f};
__constant int flags = 7;
__kernel void k(__global float* p) { p[0] = w[1] + (float)flags; }
`)
	if len(prog.ConstantData) < 12 {
		t.Fatalf("constant segment = %d bytes", len(prog.ConstantData))
	}
}

func TestDisassembleContainsOps(t *testing.T) {
	prog := compile(t, `
__kernel void k(__global float* a, const uint n) {
    size_t i = get_global_id(0);
    if (i < n) {
        a[i] = a[i] + 1.0f;
    }
}`)
	dis := prog.Kernel("k").Disassemble()
	for _, want := range []string{"kernel k(", "callb", "loadf", "storef", "addf", "ret"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestAddrEncoding(t *testing.T) {
	for _, space := range []int{ir.SpaceGlobal, ir.SpaceLocal, ir.SpaceConstant, ir.SpacePrivate} {
		for _, off := range []int64{0, 1, 4096, 1 << 40} {
			addr := ir.EncodeAddr(space, off)
			s, o := ir.DecodeAddr(addr)
			if s != space || o != off {
				t.Fatalf("EncodeAddr(%d, %d) round-trips to (%d, %d)", space, off, s, o)
			}
		}
	}
}

func TestJumpTargetsInRange(t *testing.T) {
	prog := compile(t, `
__kernel void k(__global int* p, const int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) {
        if (i % 3 == 0) { continue; }
        if (acc > 100) { break; }
        int j = 0;
        while (j < i) { j++; acc += j > 2 ? 1 : 2; }
        do { acc--; } while (acc > 50);
    }
    p[0] = acc;
}`)
	k := prog.Kernel("k")
	for pc, in := range k.Code {
		switch in.Op {
		case ir.Jmp, ir.JmpIf, ir.JmpIfZ:
			if in.Imm < 0 || in.Imm > int64(len(k.Code)) {
				t.Fatalf("instruction %d: jump target %d out of range [0,%d]", pc, in.Imm, len(k.Code))
			}
			if in.Imm == 0 {
				t.Fatalf("instruction %d: jump to 0 suggests an unpatched label", pc)
			}
		}
	}
}
