package ir

import (
	"maligo/internal/clc/ast"
	"maligo/internal/clc/sema"
	"maligo/internal/clc/token"
	"maligo/internal/clc/types"
)

// typeOf returns sema's type for e (never nil after a successful check).
func (lw *lowerer) typeOf(e ast.Expr) *types.Type {
	t := lw.res.Types[e]
	if t == nil {
		lw.fail(e.Pos(), "internal: missing type for expression")
		return types.IntType
	}
	return t
}

// genExpr evaluates e into a fresh or existing register.
func (lw *lowerer) genExpr(e ast.Expr) reg {
	if lw.err != nil {
		return reg{width: 1}
	}
	lw.setPos(e.Pos())
	switch e := e.(type) {
	case *ast.IntLit:
		t := lw.typeOf(e)
		r := lw.alloc(t)
		lw.emit(Instr{Op: ImmI, A: r.slot, Imm: e.Value, Width: 1, Base: r.base})
		return r
	case *ast.FloatLit:
		t := lw.typeOf(e)
		r := lw.alloc(t)
		v := e.Value
		if t.Base == types.Float {
			v = float64(float32(v))
		}
		lw.emit(Instr{Op: ImmF, A: r.slot, FImm: v, Width: 1, Base: r.base})
		return r
	case *ast.ParenExpr:
		return lw.genExpr(e.X)
	case *ast.Ident:
		return lw.genIdent(e)
	case *ast.BinaryExpr:
		return lw.genBinary(e)
	case *ast.UnaryExpr:
		return lw.genUnary(e)
	case *ast.PostfixExpr:
		return lw.genIncDec(e.X, e.Op, true)
	case *ast.AssignExpr:
		return lw.genAssign(e)
	case *ast.CondExpr:
		return lw.genTernary(e)
	case *ast.CallExpr:
		return lw.genCall(e)
	case *ast.IndexExpr:
		lv := lw.genLValue(e)
		return lw.loadLValue(lv, lw.typeOf(e))
	case *ast.MemberExpr:
		return lw.genMember(e)
	case *ast.CastExpr:
		from := lw.genExpr(e.X)
		return lw.convert(from, lw.typeOf(e.X), lw.typeOf(e), e.Pos())
	case *ast.VectorLit:
		return lw.genVectorLit(e)
	case *ast.SizeofExpr:
		t := lw.typeOf(e)
		r := lw.alloc(t)
		st := types.ByName(e.To.Name)
		size := int64(8)
		if st != nil {
			size = int64(st.Size())
		}
		for i := 0; i < e.To.PtrDepth; i++ {
			size = 8
		}
		lw.emit(Instr{Op: ImmI, A: r.slot, Imm: size, Width: 1, Base: r.base})
		return r
	}
	lw.fail(e.Pos(), "unsupported expression in lowering")
	return reg{width: 1}
}

func (lw *lowerer) genIdent(e *ast.Ident) reg {
	sym := lw.res.Syms[e]
	if sym == nil {
		lw.fail(e.Pos(), "internal: unresolved identifier %s", e.Name)
		return reg{width: 1}
	}
	if sym.Kind == sema.SymFileVar {
		off, ok := lw.constOffsets[sym]
		if !ok {
			lw.fail(e.Pos(), "internal: constant %s not laid out", sym.Name)
			return reg{width: 1}
		}
		addr := EncodeAddr(SpaceConstant, off)
		if sym.ArrayLen > 0 {
			r := lw.alloc(types.ULongType)
			lw.emit(Instr{Op: ImmI, A: r.slot, Imm: addr, Width: 1, Base: types.ULong})
			return r
		}
		// Scalar constant: load it.
		addrReg := lw.alloc(types.ULongType)
		lw.emit(Instr{Op: ImmI, A: addrReg.slot, Imm: addr, Width: 1, Base: types.ULong})
		dst := lw.alloc(sym.Type)
		op := LoadI
		if sym.Type.Base.IsFloat() {
			op = LoadF
		}
		lw.emit(Instr{Op: op, A: dst.slot, B: addrReg.slot, Width: uint8(dst.width), Base: sym.Type.Base})
		return dst
	}
	st, ok := lw.lookup(sym)
	if !ok {
		lw.fail(e.Pos(), "internal: no storage for %s", sym.Name)
		return reg{width: 1}
	}
	if st.isArray {
		r := lw.alloc(types.ULongType)
		lw.emit(Instr{Op: ImmI, A: r.slot, Imm: st.memAddr, Width: 1, Base: types.ULong})
		return r
	}
	return st.r
}

// --- conversions -------------------------------------------------------------

// convert adjusts value v of type 'from' to type 'to', emitting
// conversion and broadcast instructions as needed.
func (lw *lowerer) convert(v reg, from, to *types.Type, pos token.Pos) reg {
	if lw.err != nil || from == nil || to == nil {
		return v
	}
	if from.IsPointer() && to.IsPointer() {
		return v
	}
	if from.IsPointer() && to.IsArith() {
		return v // pointer-to-integer reinterpretation
	}
	if to.IsPointer() && from.IsArith() {
		return v
	}
	if !from.IsArith() || !to.IsArith() {
		return v
	}
	fw, tw := widthOf(from), widthOf(to)
	// Scalar base conversion first.
	cur := v
	if from.Base != to.Base {
		dst := lw.alloc(types.Vector(to.Base, fw))
		op, b2 := cvtOp(from.Base, to.Base)
		lw.emit(Instr{Op: op, A: dst.slot, B: cur.slot, Width: uint8(fw), Base: to.Base, Base2: b2})
		cur = dst
	}
	if fw == tw {
		return cur
	}
	if fw == 1 && tw > 1 {
		dst := lw.alloc(to)
		op := BcastI
		if to.Base.IsFloat() {
			op = BcastF
		}
		lw.emit(Instr{Op: op, A: dst.slot, B: cur.slot, Width: uint8(tw), Base: to.Base})
		return dst
	}
	lw.fail(pos, "cannot convert %s to %s (width mismatch)", from, to)
	return cur
}

// convertToReg converts v to the base/width of target register.
func (lw *lowerer) convertToReg(v reg, target reg, pos token.Pos) reg {
	from := types.Vector(v.base, v.width)
	to := types.Vector(target.base, target.width)
	return lw.convert(v, from, to, pos)
}

func widthOf(t *types.Type) int {
	if t.IsVector() {
		return t.Width
	}
	return 1
}

func cvtOp(from, to types.Base) (Op, types.Base) {
	switch {
	case from.IsFloat() && to.IsFloat():
		return CvtFF, from
	case from.IsFloat() && to.IsInteger():
		return CvtFI, from
	case from.IsInteger() && to.IsFloat():
		return CvtIF, from
	default:
		return CvtII, from
	}
}

// --- conditions --------------------------------------------------------------

// genCond evaluates e as a scalar truth value into an int register.
func (lw *lowerer) genCond(e ast.Expr) reg {
	// Short-circuit forms get special treatment so side effects follow
	// C semantics.
	if b, ok := unparenE(e).(*ast.BinaryExpr); ok && (b.Op == token.LAND || b.Op == token.LOR) {
		return lw.genShortCircuit(b)
	}
	v := lw.genExpr(e)
	if lw.err != nil {
		return reg{width: 1, bank: bi}
	}
	t := lw.typeOf(e)
	if t.IsPointer() || (t.IsScalar() && t.Base.IsInteger()) {
		return v
	}
	if t.IsScalar() && t.Base.IsFloat() {
		zero := lw.alloc(types.Scalar(t.Base))
		lw.emit(Instr{Op: ImmF, A: zero.slot, FImm: 0, Width: 1, Base: t.Base})
		dst := lw.alloc(types.IntType)
		lw.emit(Instr{Op: CmpNeF, A: dst.slot, B: v.slot, C: zero.slot, Width: 1, Base: t.Base})
		return dst
	}
	lw.fail(e.Pos(), "condition must be scalar")
	return reg{width: 1, bank: bi}
}

func unparenE(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func (lw *lowerer) genShortCircuit(b *ast.BinaryExpr) reg {
	dst := lw.alloc(types.IntType)
	x := lw.genCond(b.X)
	if lw.err != nil {
		return dst
	}
	if b.Op == token.LAND {
		// dst = 0; if (!x) goto end; dst = (y != 0)
		lw.emit(Instr{Op: ImmI, A: dst.slot, Imm: 0, Width: 1, Base: types.Int})
		j := lw.emit(Instr{Op: JmpIfZ, B: x.slot})
		y := lw.genCond(b.Y)
		lw.emit(Instr{Op: normBool, A: dst.slot, B: y.slot, Width: 1, Base: types.Bool, Base2: types.Int})
		lw.patch(j, lw.here())
		return dst
	}
	// dst = 1; if (x) goto end; dst = (y != 0)
	lw.emit(Instr{Op: ImmI, A: dst.slot, Imm: 1, Width: 1, Base: types.Int})
	j := lw.emit(Instr{Op: JmpIf, B: x.slot})
	y := lw.genCond(b.Y)
	lw.emit(Instr{Op: normBool, A: dst.slot, B: y.slot, Width: 1, Base: types.Bool, Base2: types.Int})
	lw.patch(j, lw.here())
	return dst
}

// normBool is CvtII with Base=Bool, which the VM implements as
// "normalize to 0/1".
const normBool = CvtII

// --- binary / unary ----------------------------------------------------------

func (lw *lowerer) genBinary(e *ast.BinaryExpr) reg {
	switch e.Op {
	case token.LAND, token.LOR:
		return lw.genShortCircuit(e)
	}
	xt, yt := lw.typeOf(e.X), lw.typeOf(e.Y)
	rt := lw.typeOf(e)

	// Pointer arithmetic.
	if xt.IsPointer() || yt.IsPointer() {
		return lw.genPointerArith(e, xt, yt, rt)
	}

	x := lw.genExpr(e.X)
	y := lw.genExpr(e.Y)
	if lw.err != nil {
		return x
	}

	switch e.Op {
	case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
		opnd, _ := types.Promote(xt, yt)
		if opnd == nil {
			opnd = xt
		}
		x = lw.convert(x, xt, opnd, e.Pos())
		y = lw.convert(y, yt, opnd, e.Pos())
		dst := lw.alloc(rt)
		op, swap := cmpOp(e.Op, opnd.Base)
		a, bv := x, y
		if swap {
			a, bv = y, x
		}
		lw.emit(Instr{Op: op, A: dst.slot, B: a.slot, C: bv.slot, Width: uint8(widthOf(opnd)), Base: opnd.Base})
		return dst
	}

	x = lw.convert(x, xt, rt, e.Pos())
	y = lw.convert(y, yt, rt, e.Pos())
	dst := lw.alloc(rt)
	var op Op
	if rt.Base.IsFloat() {
		switch e.Op {
		case token.ADD:
			op = AddF
		case token.SUB:
			op = SubF
		case token.MUL:
			op = MulF
		case token.QUO:
			op = DivF
		default:
			lw.fail(e.Pos(), "invalid float operator %s", e.Op)
			return dst
		}
	} else {
		switch e.Op {
		case token.ADD:
			op = AddI
		case token.SUB:
			op = SubI
		case token.MUL:
			op = MulI
		case token.QUO:
			op = DivI
		case token.REM:
			op = RemI
		case token.AND:
			op = AndI
		case token.OR:
			op = OrI
		case token.XOR:
			op = XorI
		case token.SHL:
			op = ShlI
		case token.SHR:
			op = ShrI
		default:
			lw.fail(e.Pos(), "invalid integer operator %s", e.Op)
			return dst
		}
	}
	lw.emit(Instr{Op: op, A: dst.slot, B: x.slot, C: y.slot, Width: uint8(widthOf(rt)), Base: rt.Base})
	return dst
}

func cmpOp(op token.Kind, base types.Base) (Op, bool) {
	f := base.IsFloat()
	switch op {
	case token.EQL:
		if f {
			return CmpEqF, false
		}
		return CmpEqI, false
	case token.NEQ:
		if f {
			return CmpNeF, false
		}
		return CmpNeI, false
	case token.LSS:
		if f {
			return CmpLtF, false
		}
		return CmpLtI, false
	case token.LEQ:
		if f {
			return CmpLeF, false
		}
		return CmpLeI, false
	case token.GTR:
		if f {
			return CmpLtF, true
		}
		return CmpLtI, true
	case token.GEQ:
		if f {
			return CmpLeF, true
		}
		return CmpLeI, true
	}
	return Nop, false
}

func (lw *lowerer) genPointerArith(e *ast.BinaryExpr, xt, yt, rt *types.Type) reg {
	x := lw.genExpr(e.X)
	y := lw.genExpr(e.Y)
	if lw.err != nil {
		return x
	}
	switch {
	case xt.IsPointer() && yt.IsPointer():
		switch e.Op {
		case token.SUB:
			diff := lw.alloc(types.LongType)
			lw.emit(Instr{Op: SubI, A: diff.slot, B: x.slot, C: y.slot, Width: 1, Base: types.Long})
			size := lw.alloc(types.LongType)
			lw.emit(Instr{Op: ImmI, A: size.slot, Imm: int64(xt.Elem.Size()), Width: 1, Base: types.Long})
			dst := lw.alloc(types.LongType)
			lw.emit(Instr{Op: DivI, A: dst.slot, B: diff.slot, C: size.slot, Width: 1, Base: types.Long})
			return dst
		case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
			dst := lw.alloc(types.IntType)
			op, swap := cmpOp(e.Op, types.ULong)
			a, b := x, y
			if swap {
				a, b = y, x
			}
			lw.emit(Instr{Op: op, A: dst.slot, B: a.slot, C: b.slot, Width: 1, Base: types.ULong})
			return dst
		}
		lw.fail(e.Pos(), "invalid pointer operation %s", e.Op)
		return x
	case xt.IsPointer():
		return lw.emitPtrOffset(x, y, yt, xt.Elem.Size(), e.Op == token.SUB)
	default: // yt pointer, ADD
		return lw.emitPtrOffset(y, x, xt, yt.Elem.Size(), false)
	}
}

// emitPtrOffset computes ptr ± idx*elemSize.
func (lw *lowerer) emitPtrOffset(ptr, idx reg, idxType *types.Type, elemSize int, sub bool) reg {
	idx = lw.convert(idx, idxType, types.LongType, token.Pos{})
	scaled := lw.alloc(types.LongType)
	size := lw.alloc(types.LongType)
	lw.emit(Instr{Op: ImmI, A: size.slot, Imm: int64(elemSize), Width: 1, Base: types.Long})
	lw.emit(Instr{Op: MulI, A: scaled.slot, B: idx.slot, C: size.slot, Width: 1, Base: types.Long})
	dst := lw.alloc(types.ULongType)
	op := AddI
	if sub {
		op = SubI
	}
	lw.emit(Instr{Op: op, A: dst.slot, B: ptr.slot, C: scaled.slot, Width: 1, Base: types.ULong})
	return dst
}

func (lw *lowerer) genUnary(e *ast.UnaryExpr) reg {
	switch e.Op {
	case token.INC, token.DEC:
		return lw.genIncDec(e.X, e.Op, false)
	case token.MUL:
		lv := lw.genLValue(e)
		return lw.loadLValue(lv, lw.typeOf(e))
	case token.AND:
		// &ptr[expr]: just the address computation.
		ix, ok := unparenE(e.X).(*ast.IndexExpr)
		if !ok {
			lw.fail(e.Pos(), "address-of requires an indexed operand")
			return reg{width: 1}
		}
		return lw.genElementAddr(ix)
	}
	t := lw.typeOf(e)
	x := lw.genExpr(e.X)
	if lw.err != nil {
		return x
	}
	switch e.Op {
	case token.SUB:
		dst := lw.alloc(t)
		op := NegI
		if t.Base.IsFloat() {
			op = NegF
		}
		lw.emit(Instr{Op: op, A: dst.slot, B: x.slot, Width: uint8(widthOf(t)), Base: t.Base})
		return dst
	case token.NOT:
		dst := lw.alloc(t)
		lw.emit(Instr{Op: NotI, A: dst.slot, B: x.slot, Width: uint8(widthOf(t)), Base: t.Base})
		return dst
	case token.LNOT:
		cond := lw.genCond(e.X)
		zero := lw.alloc(types.IntType)
		lw.emit(Instr{Op: ImmI, A: zero.slot, Imm: 0, Width: 1, Base: types.Int})
		dst := lw.alloc(types.IntType)
		lw.emit(Instr{Op: CmpEqI, A: dst.slot, B: cond.slot, C: zero.slot, Width: 1, Base: types.Int})
		return dst
	}
	lw.fail(e.Pos(), "unsupported unary operator %s", e.Op)
	return x
}

// genIncDec handles ++/-- in prefix and postfix form.
func (lw *lowerer) genIncDec(x ast.Expr, op token.Kind, postfix bool) reg {
	t := lw.typeOf(x)
	lv := lw.genLValue(x)
	if lw.err != nil {
		return reg{width: 1}
	}
	old := lw.loadLValue(lv, t)
	var result reg
	if postfix {
		// Preserve the old value in a fresh register.
		result = lw.alloc(t)
		lw.mov(result, old)
	}
	oneType := types.ULongType
	if t.IsArith() {
		oneType = types.Scalar(t.Base)
	}
	one := lw.alloc(oneType)
	step := int64(1)
	if t.IsPointer() {
		step = int64(t.Elem.Size())
	}
	var updated reg
	if t.IsArith() && t.Base.IsFloat() {
		lw.emit(Instr{Op: ImmF, A: one.slot, FImm: 1, Width: 1, Base: t.Base})
		updated = lw.alloc(t)
		o := AddF
		if op == token.DEC {
			o = SubF
		}
		lw.emit(Instr{Op: o, A: updated.slot, B: old.slot, C: one.slot, Width: 1, Base: t.Base})
	} else {
		lw.emit(Instr{Op: ImmI, A: one.slot, Imm: step, Width: 1, Base: types.Long})
		updated = lw.alloc(t)
		o := AddI
		if op == token.DEC {
			o = SubI
		}
		lw.emit(Instr{Op: o, A: updated.slot, B: old.slot, C: one.slot, Width: 1, Base: baseOrPtr(t)})
	}
	lw.storeLValue(lv, updated, t)
	if postfix {
		return result
	}
	return updated
}

func baseOrPtr(t *types.Type) types.Base {
	if t.IsPointer() {
		return types.ULong
	}
	return t.Base
}

// --- assignment / lvalues ------------------------------------------------------

func (lw *lowerer) genAssign(e *ast.AssignExpr) reg {
	lt := lw.typeOf(e.LHS)
	rt := lw.typeOf(e.RHS)
	lv := lw.genLValue(e.LHS)
	if lw.err != nil {
		return reg{width: 1}
	}
	rhs := lw.genExpr(e.RHS)
	if lw.err != nil {
		return rhs
	}
	if e.Op == token.ASSIGN {
		rhs = lw.convert(rhs, rt, lt, e.Pos())
		lw.setPos(e.Pos()) // the store belongs to the assignment, not the last RHS term
		lw.storeLValue(lv, rhs, lt)
		return rhs
	}
	// Compound: load, op, store.
	lw.setPos(e.Pos())
	old := lw.loadLValue(lv, lt)
	baseOp := e.Op.BaseOf()
	if lt.IsPointer() {
		scaled := lw.emitPtrOffset(old, rhs, rt, lt.Elem.Size(), baseOp == token.SUB)
		lw.storeLValue(lv, scaled, lt)
		return scaled
	}
	rhs = lw.convert(rhs, rt, lt, e.Pos())
	dst := lw.alloc(lt)
	var op Op
	if lt.Base.IsFloat() {
		switch baseOp {
		case token.ADD:
			op = AddF
		case token.SUB:
			op = SubF
		case token.MUL:
			op = MulF
		case token.QUO:
			op = DivF
		default:
			lw.fail(e.Pos(), "invalid compound float op")
			return dst
		}
	} else {
		switch baseOp {
		case token.ADD:
			op = AddI
		case token.SUB:
			op = SubI
		case token.MUL:
			op = MulI
		case token.QUO:
			op = DivI
		case token.REM:
			op = RemI
		case token.AND:
			op = AndI
		case token.OR:
			op = OrI
		case token.XOR:
			op = XorI
		case token.SHL:
			op = ShlI
		case token.SHR:
			op = ShrI
		}
	}
	lw.emit(Instr{Op: op, A: dst.slot, B: old.slot, C: rhs.slot, Width: uint8(widthOf(lt)), Base: lt.Base})
	lw.setPos(e.Pos())
	lw.storeLValue(lv, dst, lt)
	return dst
}

// genLValue resolves e to an assignable location.
func (lw *lowerer) genLValue(e ast.Expr) lvalue {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return lw.genLValue(e.X)
	case *ast.Ident:
		sym := lw.res.Syms[e]
		if sym == nil {
			lw.fail(e.Pos(), "internal: unresolved identifier")
			return lvalue{}
		}
		st, ok := lw.lookup(sym)
		if !ok || st.isArray {
			lw.fail(e.Pos(), "cannot assign to %s", sym.Name)
			return lvalue{}
		}
		return lvalue{isReg: true, r: st.r}
	case *ast.IndexExpr:
		addr := lw.genElementAddr(e)
		return lvalue{addr: addr, elem: lw.typeOf(e)}
	case *ast.UnaryExpr:
		if e.Op == token.MUL {
			ptr := lw.genExpr(e.X)
			return lvalue{addr: ptr, elem: lw.typeOf(e)}
		}
	case *ast.MemberExpr:
		inner := lw.genLValue(e.X)
		if lw.err != nil {
			return lvalue{}
		}
		lanes := lw.res.Swizzles[e]
		if !inner.isReg {
			lw.fail(e.Pos(), "swizzle assignment requires a register-resident vector")
			return lvalue{}
		}
		// Compose swizzles.
		if inner.lanes != nil {
			composed := make([]int, len(lanes))
			for i, l := range lanes {
				composed[i] = inner.lanes[l]
			}
			lanes = composed
		}
		return lvalue{isReg: true, r: inner.r, lanes: lanes}
	}
	lw.fail(e.Pos(), "expression is not assignable")
	return lvalue{}
}

// genElementAddr computes the byte address of ptr[idx].
func (lw *lowerer) genElementAddr(e *ast.IndexExpr) reg {
	pt := lw.typeOf(e.X)
	ptr := lw.genExpr(e.X)
	idx := lw.genExpr(e.Index)
	if lw.err != nil {
		return ptr
	}
	return lw.emitPtrOffset(ptr, idx, lw.typeOf(e.Index), pt.Elem.Size(), false)
}

// loadLValue reads the current value of lv.
func (lw *lowerer) loadLValue(lv lvalue, t *types.Type) reg {
	if lw.err != nil {
		return reg{width: 1}
	}
	if lv.isReg {
		if lv.lanes == nil {
			return lv.r
		}
		dst := lw.alloc(types.Vector(lv.r.base, len(lv.lanes)))
		op := MovI
		if lv.r.bank == bf {
			op = MovF
		}
		for i, l := range lv.lanes {
			lw.emit(Instr{Op: op, A: dst.slot + int32(i), B: lv.r.slot + int32(l), Width: 1, Base: lv.r.base})
		}
		return dst
	}
	dst := lw.alloc(t)
	op := LoadI
	if t.IsArith() && t.Base.IsFloat() {
		op = LoadF
	}
	base := baseOrPtr(t)
	lw.emit(Instr{Op: op, A: dst.slot, B: lv.addr.slot, Width: uint8(widthOf(t)), Base: base})
	return dst
}

// storeLValue writes v (already converted to t) into lv.
func (lw *lowerer) storeLValue(lv lvalue, v reg, t *types.Type) {
	if lw.err != nil {
		return
	}
	if lv.isReg {
		if lv.lanes == nil {
			lw.mov(lv.r, v)
			return
		}
		op := MovI
		if lv.r.bank == bf {
			op = MovF
		}
		for i, l := range lv.lanes {
			src := v.slot
			if v.width > 1 {
				src += int32(i)
			}
			lw.emit(Instr{Op: op, A: lv.r.slot + int32(l), B: src, Width: 1, Base: lv.r.base})
		}
		return
	}
	op := StoreI
	if t.IsArith() && t.Base.IsFloat() {
		op = StoreF
	}
	lw.emit(Instr{Op: op, A: v.slot, B: lv.addr.slot, Width: uint8(widthOf(t)), Base: baseOrPtr(t)})
}

// --- ternary / member / vector literal ----------------------------------------

func (lw *lowerer) genTernary(e *ast.CondExpr) reg {
	ct := lw.typeOf(e.Cond)
	rt := lw.typeOf(e)
	if ct.IsVector() {
		cond := lw.genExpr(e.Cond)
		a := lw.genExpr(e.Then)
		b := lw.genExpr(e.Else)
		if lw.err != nil {
			return cond
		}
		a = lw.convert(a, lw.typeOf(e.Then), rt, e.Pos())
		b = lw.convert(b, lw.typeOf(e.Else), rt, e.Pos())
		dst := lw.alloc(rt)
		op := SelI
		if rt.Base.IsFloat() {
			op = SelF
		}
		lw.emit(Instr{Op: op, A: dst.slot, B: cond.slot, C: a.slot, D: b.slot, Width: uint8(widthOf(rt)), Base: rt.Base})
		return dst
	}
	// Scalar condition: branch so only the taken arm evaluates.
	dst := lw.alloc(rt)
	cond := lw.genCond(e.Cond)
	if lw.err != nil {
		return dst
	}
	jElse := lw.emit(Instr{Op: JmpIfZ, B: cond.slot})
	a := lw.genExpr(e.Then)
	a = lw.convert(a, lw.typeOf(e.Then), rt, e.Pos())
	lw.mov(dst, a)
	jEnd := lw.emit(Instr{Op: Jmp})
	lw.patch(jElse, lw.here())
	b := lw.genExpr(e.Else)
	b = lw.convert(b, lw.typeOf(e.Else), rt, e.Pos())
	lw.mov(dst, b)
	lw.patch(jEnd, lw.here())
	return dst
}

func (lw *lowerer) genMember(e *ast.MemberExpr) reg {
	src := lw.genExpr(e.X)
	if lw.err != nil {
		return src
	}
	lanes := lw.res.Swizzles[e]
	t := lw.typeOf(e)
	dst := lw.alloc(t)
	op := MovI
	if src.bank == bf {
		op = MovF
	}
	for i, l := range lanes {
		lw.emit(Instr{Op: op, A: dst.slot + int32(i), B: src.slot + int32(l), Width: 1, Base: src.base})
	}
	return dst
}

func (lw *lowerer) genVectorLit(e *ast.VectorLit) reg {
	t := lw.typeOf(e)
	dst := lw.alloc(t)
	if len(e.Elems) == 1 {
		et := lw.typeOf(e.Elems[0])
		if et.IsScalar() {
			v := lw.genExpr(e.Elems[0])
			v = lw.convert(v, et, types.Scalar(t.Base), e.Pos())
			op := BcastI
			if t.Base.IsFloat() {
				op = BcastF
			}
			lw.emit(Instr{Op: op, A: dst.slot, B: v.slot, Width: uint8(t.Width), Base: t.Base})
			return dst
		}
	}
	lane := 0
	op := MovI
	if t.Base.IsFloat() {
		op = MovF
	}
	for _, el := range e.Elems {
		et := lw.typeOf(el)
		v := lw.genExpr(el)
		if lw.err != nil {
			return dst
		}
		v = lw.convert(v, et, types.Vector(t.Base, widthOf(et)), el.Pos())
		for i := 0; i < widthOf(et); i++ {
			lw.emit(Instr{Op: op, A: dst.slot + int32(lane), B: v.slot + int32(i), Width: 1, Base: t.Base})
			lane++
		}
	}
	return dst
}
