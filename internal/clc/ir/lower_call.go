package ir

import (
	"maligo/internal/clc/ast"
	"maligo/internal/clc/builtin"
	"maligo/internal/clc/sema"
	"maligo/internal/clc/types"
)

const maxInlineDepth = 64

func (lw *lowerer) genCall(e *ast.CallExpr) reg {
	info := lw.res.Calls[e]
	if info == nil {
		lw.fail(e.Pos(), "internal: unresolved call %s", e.Fun.Name)
		return reg{width: 1}
	}
	switch info.Kind {
	case sema.CallConvert:
		from := lw.genExpr(e.Args[0])
		return lw.convert(from, lw.typeOf(e.Args[0]), info.ConvTo, e.Pos())
	case sema.CallUser:
		return lw.inlineCall(e, info.Target)
	}
	return lw.genBuiltin(e, info.Builtin)
}

// inlineCall expands a user helper function at the call site.
func (lw *lowerer) inlineCall(e *ast.CallExpr, fn *ast.FuncDecl) reg {
	if len(lw.inl) >= maxInlineDepth {
		lw.fail(e.Pos(), "inline depth exceeded while expanding %s", fn.Name)
		return reg{width: 1}
	}
	// Evaluate arguments in the caller's scope.
	args := make([]reg, len(e.Args))
	for i, a := range e.Args {
		v := lw.genExpr(a)
		if lw.err != nil {
			return v
		}
		pt := lw.res.ParamTypes[fn.Params[i]]
		args[i] = lw.convert(v, lw.typeOf(a), pt, a.Pos())
	}

	retType := lw.res.FuncRets[fn]
	frame := inlineFrame{retVoid: retType.IsVoid()}
	if !frame.retVoid {
		frame.retReg = lw.alloc(retType)
	}

	// The callee's named variables live only for the duration of the
	// inlined body: snapshot the permanent register floor so their
	// slots are reclaimable once the call site's statement completes.
	permI0, permF0, permB0 := lw.permI, lw.permF, lw.permRegBytes

	lw.pushScope()
	// Bind parameters to fresh registers (copy for by-value semantics;
	// a parameter may be reassigned inside the callee).
	for i, p := range fn.Params {
		sym := lw.symbolForParam(fn, p)
		pt := lw.res.ParamTypes[p]
		r := lw.alloc(pt)
		lw.mov(r, args[i])
		if sym != nil {
			lw.bind(sym, storage{r: r})
		}
	}
	lw.inl = append(lw.inl, frame)
	lw.genBlock(fn.Body)
	top := lw.inl[len(lw.inl)-1]
	lw.inl = lw.inl[:len(lw.inl)-1]
	for _, idx := range top.endPatches {
		lw.patch(idx, lw.here())
	}
	lw.popScope()
	lw.permI, lw.permF, lw.permRegBytes = permI0, permF0, permB0
	if frame.retVoid {
		return reg{width: 1, bank: bi}
	}
	return frame.retReg
}

func (lw *lowerer) genBuiltin(e *ast.CallExpr, id builtin.ID) reg {
	rt := lw.typeOf(e)

	switch {
	case id == builtin.Barrier:
		lw.genExpr(e.Args[0]) // fence flags evaluated, then dropped
		lw.emit(Instr{Op: BarrierOp})
		lw.k.UsesBarrier = true
		return reg{width: 1, bank: bi}
	case id == builtin.MemFence:
		lw.genExpr(e.Args[0])
		return reg{width: 1, bank: bi}
	case id == builtin.GetWorkDim:
		dst := lw.alloc(rt)
		lw.emit(Instr{Op: CallB, A: dst.slot, Imm: int64(id), Width: 1, Base: rt.Base})
		return dst
	case id.IsWorkItemQuery():
		dim := lw.genExpr(e.Args[0])
		dim = lw.convert(dim, lw.typeOf(e.Args[0]), types.IntType, e.Pos())
		dst := lw.alloc(rt)
		lw.emit(Instr{Op: CallB, A: dst.slot, B: dim.slot, Imm: int64(id), Width: 1, Base: rt.Base})
		return dst
	}

	if w, ok := id.IsVload(); ok {
		off := lw.genExpr(e.Args[0])
		off = lw.convert(off, lw.typeOf(e.Args[0]), types.LongType, e.Pos())
		ptr := lw.genExpr(e.Args[1])
		pt := lw.typeOf(e.Args[1])
		elemSize := pt.Elem.Size()
		// addr = ptr + off * w * elemSize
		scaled := lw.alloc(types.LongType)
		factor := lw.alloc(types.LongType)
		lw.emit(Instr{Op: ImmI, A: factor.slot, Imm: int64(w * elemSize), Width: 1, Base: types.Long})
		lw.emit(Instr{Op: MulI, A: scaled.slot, B: off.slot, C: factor.slot, Width: 1, Base: types.Long})
		addr := lw.alloc(types.ULongType)
		lw.emit(Instr{Op: AddI, A: addr.slot, B: ptr.slot, C: scaled.slot, Width: 1, Base: types.ULong})
		dst := lw.alloc(rt)
		op := LoadI
		if rt.Base.IsFloat() {
			op = LoadF
		}
		lw.emit(Instr{Op: op, A: dst.slot, B: addr.slot, Width: uint8(w), Base: rt.Base})
		return dst
	}
	if w, ok := id.IsVstore(); ok {
		data := lw.genExpr(e.Args[0])
		off := lw.genExpr(e.Args[1])
		off = lw.convert(off, lw.typeOf(e.Args[1]), types.LongType, e.Pos())
		ptr := lw.genExpr(e.Args[2])
		pt := lw.typeOf(e.Args[2])
		elemSize := pt.Elem.Size()
		scaled := lw.alloc(types.LongType)
		factor := lw.alloc(types.LongType)
		lw.emit(Instr{Op: ImmI, A: factor.slot, Imm: int64(w * elemSize), Width: 1, Base: types.Long})
		lw.emit(Instr{Op: MulI, A: scaled.slot, B: off.slot, C: factor.slot, Width: 1, Base: types.Long})
		addr := lw.alloc(types.ULongType)
		lw.emit(Instr{Op: AddI, A: addr.slot, B: ptr.slot, C: scaled.slot, Width: 1, Base: types.ULong})
		op := StoreI
		base := pt.Elem.Base
		if base.IsFloat() {
			op = StoreF
		}
		lw.emit(Instr{Op: op, A: data.slot, B: addr.slot, Width: uint8(w), Base: base})
		return reg{width: 1, bank: bi}
	}

	if id.IsAtomic() {
		ptr := lw.genExpr(e.Args[0])
		pt := lw.typeOf(e.Args[0])
		var valSlot, cmpSlot int32
		if len(e.Args) > 1 {
			v := lw.genExpr(e.Args[1])
			v = lw.convert(v, lw.typeOf(e.Args[1]), pt.Elem, e.Pos())
			valSlot = v.slot
		}
		if len(e.Args) > 2 {
			v := lw.genExpr(e.Args[2])
			v = lw.convert(v, lw.typeOf(e.Args[2]), pt.Elem, e.Pos())
			cmpSlot = v.slot
		}
		dst := lw.alloc(rt)
		lw.emit(Instr{
			Op: AtomicOp, A: dst.slot, B: ptr.slot, C: valSlot, D: cmpSlot,
			Imm: int64(id), Width: 1, Base: pt.Elem.Base,
		})
		return dst
	}

	// Generic math/common/geometric builtins: convert args to the
	// result gentype (or condition type for select) and emit CallB.
	argRegs := make([]reg, len(e.Args))
	for i, a := range e.Args {
		v := lw.genExpr(a)
		if lw.err != nil {
			return v
		}
		at := lw.typeOf(a)
		switch {
		case id == builtin.Select && i == 2:
			// Condition keeps its own integer type, widened to lanes.
			v = lw.convert(v, at, types.Vector(at.Base, widthOf(rt)), a.Pos())
		case id == builtin.Dot || id == builtin.Distance:
			// Vector inputs, scalar result: keep operand type.
		case id == builtin.Length || id == builtin.Normalize:
		default:
			v = lw.convert(v, at, rt, a.Pos())
		}
		argRegs[i] = v
	}
	dst := lw.alloc(rt)
	in := Instr{Op: CallB, A: dst.slot, Imm: int64(id), Width: uint8(widthOf(rt)), Base: rt.Base}
	if id == builtin.Dot || id == builtin.Distance || id == builtin.Length || id == builtin.Normalize {
		// Width describes the operand vectors.
		in.Width = uint8(widthOf(lw.typeOf(e.Args[0])))
		in.Base = lw.typeOf(e.Args[0]).Base
	}
	if len(argRegs) > 0 {
		in.B = argRegs[0].slot
	}
	if len(argRegs) > 1 {
		in.C = argRegs[1].slot
	}
	if len(argRegs) > 2 {
		in.D = argRegs[2].slot
	}
	lw.emit(in)
	return dst
}
