package ir_test

import (
	"testing"

	"maligo/internal/clc/ir"
)

// TestInstrPositions is the regression test for position threading:
// lowering used to drop token.Pos entirely, so diagnostics could not
// point at source lines. Every memory instruction must carry the line
// of the statement it came from, including the expression forms that
// previously lost positions (index loads, compound assignment,
// increment, vector stores, builtin calls).
func TestInstrPositions(t *testing.T) {
	src := `__kernel void k(__global float* a,
                __global float* b,
                int n) {
    int i = get_global_id(0);
    float x = a[i];
    x += b[i];
    b[i] = x * 2.0f;
    a[i]++;
    float4 v = vload4(i, a);
    vstore4(v, i, b);
}
`
	prog := compile(t, src)
	k := prog.Kernel("k")
	if k == nil {
		t.Fatal("kernel k missing")
	}

	// Every load/store must map back to one of the source lines that
	// contains a memory access (lines 4-10 of the literal above).
	wantLines := map[int]bool{}
	var memLines []int
	for _, in := range k.Code {
		if !in.Op.IsMemory() {
			continue
		}
		if !in.Pos.IsValid() {
			t.Errorf("memory instruction %v has no source position", in)
			continue
		}
		if in.Pos.Line < 4 || in.Pos.Line > 10 {
			t.Errorf("memory instruction %v at line %d, want 4..10", in, in.Pos.Line)
		}
		wantLines[in.Pos.Line] = true
		memLines = append(memLines, in.Pos.Line)
	}
	if len(memLines) == 0 {
		t.Fatal("no memory instructions lowered")
	}
	// The accesses span several distinct statements; their lines must
	// not have collapsed onto a single value.
	if len(wantLines) < 4 {
		t.Errorf("memory access lines collapsed to %v, want at least 4 distinct lines", wantLines)
	}

	// All executable instructions (everything but the final Ret and
	// control-flow glue) should carry a valid position too.
	valid := 0
	for _, in := range k.Code {
		if in.Pos.IsValid() {
			valid++
		}
	}
	if valid < len(k.Code)/2 {
		t.Errorf("only %d/%d instructions carry positions", valid, len(k.Code))
	}
}

// TestInstrPositionsSurviveFolding checks that the constant folder's
// instruction rewrites keep the original position.
func TestInstrPositionsSurviveFolding(t *testing.T) {
	src := `__kernel void k(__global int* p) {
    int c = 3 + 4;
    p[0] = c * 2;
}
`
	prog := compile(t, src)
	k := prog.Kernel("k")
	for _, in := range k.Code {
		if in.Op == ir.ImmI && in.Imm == 7 && !in.Pos.IsValid() {
			t.Errorf("folded constant %v lost its position", in)
		}
		if in.Op.IsMemory() && !in.Pos.IsValid() {
			t.Errorf("memory instruction %v lost its position after optimization", in)
		}
	}
}
