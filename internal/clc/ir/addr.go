package ir

// Simulated 64-bit virtual addresses carry their address space in the
// top two bits, mirroring how the Mali MMU model distinguishes the
// global heap, work-group local memory, the constant segment and
// per-work-item private arenas.

// Address space tags.
const (
	SpaceGlobal   = 0
	SpaceLocal    = 1
	SpaceConstant = 2
	SpacePrivate  = 3

	spaceShift = 62
	// OffsetMask extracts the in-space byte offset.
	OffsetMask = (int64(1) << spaceShift) - 1
)

// EncodeAddr builds a tagged simulated address.
func EncodeAddr(space int, offset int64) int64 {
	return int64(space)<<spaceShift | (offset & OffsetMask)
}

// DecodeAddr splits a tagged simulated address.
func DecodeAddr(addr int64) (space int, offset int64) {
	return int(uint64(addr) >> spaceShift), addr & OffsetMask
}
