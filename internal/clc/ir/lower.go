package ir

import (
	"fmt"
	"math"

	"maligo/internal/clc/ast"
	"maligo/internal/clc/sema"
	"maligo/internal/clc/token"
	"maligo/internal/clc/types"
)

// LowerError is an error produced during lowering.
type LowerError struct {
	Pos token.Pos
	Msg string
}

func (e *LowerError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lower translates a semantically-checked translation unit into a
// Program of executable kernels. All user helper calls are inlined.
func Lower(res *sema.Result) (*Program, error) {
	prog := &Program{Kernels: make(map[string]*Kernel)}

	// Lay out file-scope __constant data.
	constOffsets := make(map[*sema.Symbol]int64)
	var constData []byte
	for _, fn := range res.Kernels {
		_ = fn
	}
	constData, constOffsets = layoutConstants(res)
	prog.ConstantData = constData

	for _, fn := range res.Kernels {
		lw := &lowerer{res: res, constOffsets: constOffsets}
		k, err := lw.lowerKernel(fn)
		if err != nil {
			return nil, err
		}
		Optimize(k)
		prog.Kernels[k.Name] = k
	}
	return prog, nil
}

// layoutConstants assigns each file-scope __constant symbol an offset
// in the constant segment and serializes initializers.
func layoutConstants(res *sema.Result) ([]byte, map[*sema.Symbol]int64) {
	offsets := make(map[*sema.Symbol]int64)
	var data []byte
	align := func(n int) {
		for len(data)%n != 0 {
			data = append(data, 0)
		}
	}
	put := func(t *types.Type, v float64) {
		switch t.Base {
		case types.Float:
			bits := math.Float32bits(float32(v))
			data = append(data, byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24))
		case types.Double:
			bits := math.Float64bits(v)
			for s := 0; s < 64; s += 8 {
				data = append(data, byte(bits>>uint(s)))
			}
		default:
			iv := uint64(int64(v))
			for s := 0; s < t.Base.Size()*8; s += 8 {
				data = append(data, byte(iv>>uint(s)))
			}
		}
	}
	for _, ident := range sortedFileVarSyms(res) {
		sym := ident
		init, _ := res.FileVarInit(sym)
		align(sym.Type.Align())
		offsets[sym] = int64(len(data))
		n := sym.ArrayLen
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			v := 0.0
			if i < len(init) {
				v = init[i]
			}
			put(sym.Type, v)
		}
	}
	return data, offsets
}

func sortedFileVarSyms(res *sema.Result) []*sema.Symbol {
	var syms []*sema.Symbol
	for _, fv := range res.FileVars {
		syms = append(syms, fv.Sym)
	}
	return syms
}

// --- register model ----------------------------------------------------------

type bank int

const (
	bi bank = iota // int64 bank
	bf             // float64 bank
)

// reg is a virtual register: width consecutive slots in a bank.
type reg struct {
	bank  bank
	slot  int32
	width int
	base  types.Base
}

func (r reg) valid() bool { return r.width > 0 }

// lvalue is an assignable location: either a register-resident
// variable or a memory address held in an integer register.
type lvalue struct {
	isReg bool
	r     reg   // register form
	lanes []int // register-lane swizzle, nil = whole register
	addr  reg   // memory form: scalar I reg holding the address
	elem  *types.Type
}

type storage struct {
	r       reg   // register-resident variable
	memAddr int64 // arrays: encoded base address constant
	isArray bool
}

type inlineFrame struct {
	retReg     reg
	retVoid    bool
	endPatches []int
}

type loopFrame struct {
	breakPatches    []int
	continuePatches []int
}

type lowerer struct {
	res          *sema.Result
	constOffsets map[*sema.Symbol]int64

	k            *Kernel
	code         []Instr
	numI         int
	numF         int
	maxI         int // frame high-water marks (temps are reclaimed at
	maxF         int // statement boundaries, so numI/numF can shrink)
	permI        int // floor below which slots belong to named variables
	permF        int
	curRegBytes  int
	permRegBytes int
	maxRegBytes  int
	vars         []map[*sema.Symbol]storage
	inl          []inlineFrame
	loops        []loopFrame
	locOff       int
	prvOff       int
	pos          token.Pos // current source position, stamped onto emitted instructions
	err          error
}

// setPos updates the position stamped onto subsequently emitted
// instructions. Invalid positions are ignored so synthesized
// sub-expressions inherit the position of the enclosing construct.
func (lw *lowerer) setPos(p token.Pos) {
	if p.IsValid() {
		lw.pos = p
	}
}

func (lw *lowerer) fail(pos token.Pos, format string, args ...any) {
	if lw.err == nil {
		lw.err = &LowerError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
	}
}

func (lw *lowerer) alloc(t *types.Type) reg {
	w := t.Width
	if w == 0 {
		w = 1
	}
	base := t.Base
	if t.IsPointer() {
		base = types.ULong
	}
	lw.curRegBytes += w * base.Size()
	if lw.curRegBytes > lw.maxRegBytes {
		lw.maxRegBytes = lw.curRegBytes
	}
	if base.IsFloat() {
		r := reg{bank: bf, slot: int32(lw.numF), width: w, base: base}
		lw.numF += w
		if lw.numF > lw.maxF {
			lw.maxF = lw.numF
		}
		if base == types.Double {
			lw.k.UsesDouble = true
		}
		if w > lw.k.MaxVectorWidth {
			lw.k.MaxVectorWidth = w
		}
		return r
	}
	r := reg{bank: bi, slot: int32(lw.numI), width: w, base: base}
	lw.numI += w
	if lw.numI > lw.maxI {
		lw.maxI = lw.numI
	}
	if w > lw.k.MaxVectorWidth {
		lw.k.MaxVectorWidth = w
	}
	return r
}

func (lw *lowerer) emit(in Instr) int {
	if !in.Pos.IsValid() {
		in.Pos = lw.pos
	}
	lw.code = append(lw.code, in)
	return len(lw.code) - 1
}

func (lw *lowerer) here() int64 { return int64(len(lw.code)) }

func (lw *lowerer) patch(idx int, target int64) { lw.code[idx].Imm = target }

func (lw *lowerer) pushScope() { lw.vars = append(lw.vars, make(map[*sema.Symbol]storage)) }
func (lw *lowerer) popScope()  { lw.vars = lw.vars[:len(lw.vars)-1] }

func (lw *lowerer) bind(sym *sema.Symbol, st storage) {
	lw.vars[len(lw.vars)-1][sym] = st
	if !st.isArray {
		// Named variables pin their slots: the statement-boundary
		// temp reclamation must not descend below them.
		end := int(st.r.slot) + st.r.width
		if st.r.bank == bi {
			if end > lw.permI {
				lw.permI = end
			}
		} else {
			if end > lw.permF {
				lw.permF = end
			}
		}
		if lw.curRegBytes > lw.permRegBytes {
			lw.permRegBytes = lw.curRegBytes
		}
	}
}

func (lw *lowerer) lookup(sym *sema.Symbol) (storage, bool) {
	for i := len(lw.vars) - 1; i >= 0; i-- {
		if st, ok := lw.vars[i][sym]; ok {
			return st, true
		}
	}
	return storage{}, false
}

// --- kernel lowering ---------------------------------------------------------

func (lw *lowerer) lowerKernel(fn *ast.FuncDecl) (*Kernel, error) {
	lw.k = &Kernel{Name: fn.Name, MaxVectorWidth: 1}
	lw.pushScope()
	for _, p := range fn.Params {
		pt := lw.res.ParamTypes[p]
		r := lw.alloc(pt)
		param := Param{Name: p.Name, Type: pt, Slot: r.slot}
		switch {
		case pt.IsPointer() && pt.Space == ast.LocalSpace:
			param.Class = ParamLocalPtr
			param.Space = ast.LocalSpace
		case pt.IsPointer():
			param.Class = ParamGlobalPtr
			param.Space = pt.Space
			if pt.Restrict {
				lw.k.RestrictParams++
			}
			if pt.Const || pt.Space == ast.ConstantSpace {
				lw.k.ConstParams++
			}
		case pt.Base.IsFloat():
			param.Class = ParamScalarF
		default:
			param.Class = ParamScalarI
		}
		lw.k.Params = append(lw.k.Params, param)
		sym := lw.symbolForParam(fn, p)
		if sym != nil {
			lw.bind(sym, storage{r: r})
		}
	}
	lw.genBlock(fn.Body)
	lw.emit(Instr{Op: Ret})
	lw.popScope()
	if lw.err != nil {
		return nil, lw.err
	}
	lw.k.Code = lw.code
	lw.k.NumI = lw.maxI
	lw.k.NumF = lw.maxF
	lw.k.RegBytes = lw.maxRegBytes
	lw.k.LocalBytes = lw.locOff
	lw.k.PrivateBytes = lw.prvOff
	return lw.k, nil
}

// symbolForParam finds the sema Symbol bound to a function parameter by
// scanning the body for the first resolved identifier referring to it.
func (lw *lowerer) symbolForParam(fn *ast.FuncDecl, p *ast.Param) *sema.Symbol {
	var found *sema.Symbol
	walkIdents(fn.Body, func(id *ast.Ident) {
		if found != nil {
			return
		}
		if sym := lw.res.Syms[id]; sym != nil && sym.Decl == ast.Node(p) {
			found = sym
		}
	})
	return found
}

func walkIdents(n ast.Node, fn func(*ast.Ident)) {
	switch n := n.(type) {
	case nil:
	case *ast.Ident:
		fn(n)
	case *ast.BlockStmt:
		for _, s := range n.List {
			walkIdents(s, fn)
		}
	case *ast.DeclStmt:
		for _, d := range n.Decls {
			walkIdents(d.Init, fn)
			walkIdents(d.ArrayLen, fn)
		}
	case *ast.ExprStmt:
		walkIdents(n.X, fn)
	case *ast.IfStmt:
		walkIdents(n.Cond, fn)
		walkIdents(n.Then, fn)
		walkIdents(n.Else, fn)
	case *ast.ForStmt:
		walkIdents(n.Init, fn)
		walkIdents(n.Cond, fn)
		walkIdents(n.Post, fn)
		walkIdents(n.Body, fn)
	case *ast.WhileStmt:
		walkIdents(n.Cond, fn)
		walkIdents(n.Body, fn)
	case *ast.DoWhileStmt:
		walkIdents(n.Body, fn)
		walkIdents(n.Cond, fn)
	case *ast.ReturnStmt:
		walkIdents(n.X, fn)
	case *ast.BinaryExpr:
		walkIdents(n.X, fn)
		walkIdents(n.Y, fn)
	case *ast.UnaryExpr:
		walkIdents(n.X, fn)
	case *ast.PostfixExpr:
		walkIdents(n.X, fn)
	case *ast.AssignExpr:
		walkIdents(n.LHS, fn)
		walkIdents(n.RHS, fn)
	case *ast.CondExpr:
		walkIdents(n.Cond, fn)
		walkIdents(n.Then, fn)
		walkIdents(n.Else, fn)
	case *ast.CallExpr:
		for _, a := range n.Args {
			walkIdents(a, fn)
		}
	case *ast.IndexExpr:
		walkIdents(n.X, fn)
		walkIdents(n.Index, fn)
	case *ast.MemberExpr:
		walkIdents(n.X, fn)
	case *ast.CastExpr:
		walkIdents(n.X, fn)
	case *ast.VectorLit:
		for _, el := range n.Elems {
			walkIdents(el, fn)
		}
	case *ast.ParenExpr:
		walkIdents(n.X, fn)
	}
}

// --- statements --------------------------------------------------------------

func (lw *lowerer) genBlock(b *ast.BlockStmt) {
	lw.pushScope()
	for _, s := range b.List {
		if lw.err != nil {
			return
		}
		lw.genStmt(s)
	}
	lw.popScope()
}

// genStmt lowers one statement. Expression temporaries allocated
// while lowering it are reclaimed afterwards (a simple region-based
// register allocator): named variables raise the permanent floor via
// bind, everything above it is reusable by the next statement. This
// keeps frames small and makes RegBytes a live-pressure estimate the
// Mali register-budget model can use.
func (lw *lowerer) genStmt(s ast.Stmt) {
	i0, f0, b0 := lw.numI, lw.numF, lw.curRegBytes
	lw.genStmtInner(s)
	if lw.permI > i0 {
		i0 = lw.permI
	}
	if lw.permF > f0 {
		f0 = lw.permF
	}
	if lw.permRegBytes > b0 {
		b0 = lw.permRegBytes
	}
	lw.numI, lw.numF, lw.curRegBytes = i0, f0, b0
}

func (lw *lowerer) genStmtInner(s ast.Stmt) {
	lw.setPos(s.Pos())
	switch s := s.(type) {
	case *ast.BlockStmt:
		lw.genBlock(s)
	case *ast.EmptyStmt:
	case *ast.DeclStmt:
		lw.genDecl(s)
	case *ast.ExprStmt:
		lw.genExpr(s.X)
	case *ast.IfStmt:
		lw.genIf(s)
	case *ast.ForStmt:
		lw.genFor(s)
	case *ast.WhileStmt:
		lw.genWhile(s)
	case *ast.DoWhileStmt:
		lw.genDoWhile(s)
	case *ast.ReturnStmt:
		lw.genReturn(s)
	case *ast.BreakStmt:
		if len(lw.loops) == 0 {
			lw.fail(s.Pos(), "break outside loop")
			return
		}
		idx := lw.emit(Instr{Op: Jmp})
		top := &lw.loops[len(lw.loops)-1]
		top.breakPatches = append(top.breakPatches, idx)
	case *ast.ContinueStmt:
		if len(lw.loops) == 0 {
			lw.fail(s.Pos(), "continue outside loop")
			return
		}
		idx := lw.emit(Instr{Op: Jmp})
		top := &lw.loops[len(lw.loops)-1]
		top.continuePatches = append(top.continuePatches, idx)
	default:
		lw.fail(s.Pos(), "unsupported statement in lowering")
	}
}

func (lw *lowerer) genDecl(s *ast.DeclStmt) {
	for _, dec := range s.Decls {
		sym := lw.symbolForDecl(s, dec)
		if sym == nil {
			// Unreferenced variable: still evaluate initializer for
			// side effects.
			if dec.Init != nil {
				lw.genExpr(dec.Init)
			}
			continue
		}
		if sym.Kind == sema.SymArray {
			size := sym.ArrayLen * sym.Type.Size()
			var addr int64
			space := SpacePrivate
			if sym.Space == ast.LocalSpace {
				space = SpaceLocal
				lw.locOff = alignUp(lw.locOff, sym.Type.Align())
				addr = EncodeAddr(SpaceLocal, int64(lw.locOff))
				lw.locOff += size
			} else {
				lw.prvOff = alignUp(lw.prvOff, sym.Type.Align())
				addr = EncodeAddr(SpacePrivate, int64(lw.prvOff))
				lw.prvOff += size
			}
			_, off := DecodeAddr(addr)
			lw.k.Arrays = append(lw.k.Arrays, ArrayDecl{
				Name:     sym.Name,
				Space:    space,
				Offset:   off,
				Bytes:    int64(size),
				ElemSize: int64(sym.Type.Size()),
				Len:      int64(sym.ArrayLen),
				Pos:      dec.NamePos,
			})
			lw.bind(sym, storage{memAddr: addr, isArray: true})
			continue
		}
		r := lw.alloc(sym.Type)
		lw.bind(sym, storage{r: r})
		if dec.Init != nil {
			v := lw.genExpr(dec.Init)
			if lw.err != nil {
				return
			}
			v = lw.convert(v, lw.res.Types[dec.Init], sym.Type, dec.Init.Pos())
			lw.mov(r, v)
		}
	}
}

func alignUp(n, a int) int {
	if a <= 0 {
		return n
	}
	return (n + a - 1) / a * a
}

// symbolForDecl finds the Symbol declared by dec. sema stores Decl=DeclStmt,
// so we match by declaration statement and name via scope introspection:
// the symbol appears in Syms for later identifier uses; for never-used
// variables we synthesize lookup by walking sema's recorded symbols.
func (lw *lowerer) symbolForDecl(s *ast.DeclStmt, dec *ast.Declarator) *sema.Symbol {
	for _, sym := range lw.res.Syms { // maligo:allow maporder at most one symbol matches a (decl, name) pair
		if sym.Decl == ast.Node(s) && sym.Name == dec.Name {
			return sym
		}
	}
	return nil
}

func (lw *lowerer) genIf(s *ast.IfStmt) {
	cond := lw.genCond(s.Cond)
	if lw.err != nil {
		return
	}
	jElse := lw.emit(Instr{Op: JmpIfZ, B: cond.slot})
	lw.genStmt(s.Then)
	if s.Else != nil {
		jEnd := lw.emit(Instr{Op: Jmp})
		lw.patch(jElse, lw.here())
		lw.genStmt(s.Else)
		lw.patch(jEnd, lw.here())
	} else {
		lw.patch(jElse, lw.here())
	}
}

func (lw *lowerer) genFor(s *ast.ForStmt) {
	lw.pushScope()
	if s.Init != nil {
		lw.genStmt(s.Init)
	}
	condAt := lw.here()
	var jExit int = -1
	if s.Cond != nil {
		cond := lw.genCond(s.Cond)
		if lw.err != nil {
			lw.popScope()
			return
		}
		jExit = lw.emit(Instr{Op: JmpIfZ, B: cond.slot})
	}
	lw.loops = append(lw.loops, loopFrame{})
	lw.genStmt(s.Body)
	frame := lw.loops[len(lw.loops)-1]
	lw.loops = lw.loops[:len(lw.loops)-1]
	contAt := lw.here()
	if s.Post != nil {
		lw.genExpr(s.Post)
	}
	lw.emit(Instr{Op: Jmp, Imm: condAt})
	end := lw.here()
	if jExit >= 0 {
		lw.patch(jExit, end)
	}
	for _, idx := range frame.breakPatches {
		lw.patch(idx, end)
	}
	for _, idx := range frame.continuePatches {
		lw.patch(idx, contAt)
	}
	lw.popScope()
}

func (lw *lowerer) genWhile(s *ast.WhileStmt) {
	condAt := lw.here()
	cond := lw.genCond(s.Cond)
	if lw.err != nil {
		return
	}
	jExit := lw.emit(Instr{Op: JmpIfZ, B: cond.slot})
	lw.loops = append(lw.loops, loopFrame{})
	lw.genStmt(s.Body)
	frame := lw.loops[len(lw.loops)-1]
	lw.loops = lw.loops[:len(lw.loops)-1]
	lw.emit(Instr{Op: Jmp, Imm: condAt})
	end := lw.here()
	lw.patch(jExit, end)
	for _, idx := range frame.breakPatches {
		lw.patch(idx, end)
	}
	for _, idx := range frame.continuePatches {
		lw.patch(idx, condAt)
	}
}

func (lw *lowerer) genDoWhile(s *ast.DoWhileStmt) {
	bodyAt := lw.here()
	lw.loops = append(lw.loops, loopFrame{})
	lw.genStmt(s.Body)
	frame := lw.loops[len(lw.loops)-1]
	lw.loops = lw.loops[:len(lw.loops)-1]
	condAt := lw.here()
	cond := lw.genCond(s.Cond)
	if lw.err != nil {
		return
	}
	lw.emit(Instr{Op: JmpIf, B: cond.slot, Imm: bodyAt})
	end := lw.here()
	for _, idx := range frame.breakPatches {
		lw.patch(idx, end)
	}
	for _, idx := range frame.continuePatches {
		lw.patch(idx, condAt)
	}
}

func (lw *lowerer) genReturn(s *ast.ReturnStmt) {
	if len(lw.inl) == 0 {
		// Kernel-level return.
		lw.emit(Instr{Op: Ret})
		return
	}
	// Note: the frame must be re-fetched after evaluating the return
	// expression — nested inlining appends to lw.inl and may
	// reallocate the slice.
	depth := len(lw.inl) - 1
	if s.X != nil && !lw.inl[depth].retVoid {
		retReg := lw.inl[depth].retReg
		v := lw.genExpr(s.X)
		if lw.err != nil {
			return
		}
		v = lw.convertToReg(v, retReg, s.X.Pos())
		lw.mov(retReg, v)
	}
	idx := lw.emit(Instr{Op: Jmp})
	lw.inl[depth].endPatches = append(lw.inl[depth].endPatches, idx)
}

// mov copies src into dst (same bank and width expected).
func (lw *lowerer) mov(dst, src reg) {
	if dst.bank != src.bank || dst.width != src.width {
		// Conversions must have been applied by callers.
		lw.fail(token.Pos{}, "internal: mov bank/width mismatch (%v <- %v)", dst, src)
		return
	}
	if dst.slot == src.slot && dst.bank == src.bank {
		return
	}
	op := MovI
	if dst.bank == bf {
		op = MovF
	}
	lw.emit(Instr{Op: op, A: dst.slot, B: src.slot, Width: uint8(dst.width), Base: dst.base})
}
