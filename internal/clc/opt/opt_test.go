package opt

import (
	"bytes"
	"strings"
	"testing"

	"maligo/internal/clc/backend"
)

func TestPassNamesPipelineOrder(t *testing.T) {
	want := []string{"constrestrict", "soa", "vectorize", "unroll"}
	got := PassNames()
	if len(got) != len(want) {
		t.Fatalf("PassNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PassNames() = %v, want %v", got, want)
		}
	}
	for _, p := range Passes() {
		if p.Doc == "" {
			t.Errorf("pass %s has no doc string", p.Name)
		}
		if len(p.Answers) == 0 {
			t.Errorf("pass %s answers no analyzer pass", p.Name)
		}
	}
}

func TestSelectPassesUnknownName(t *testing.T) {
	prog := mustCompile(t, `__kernel void nop(__global int* p) { p[0] = 1; }`)
	if _, _, err := OptimizeWith(prog, []string{"loopfission"}); err == nil {
		t.Fatal("expected an error for an unknown pass name")
	} else if !strings.Contains(err.Error(), "unknown pass") {
		t.Fatalf("error %q does not name the unknown pass", err)
	}
}

func TestOptimizeWithSubsetRestrictsReport(t *testing.T) {
	// The acc kernel unrolls and promotes; with only "unroll" selected
	// the report must not even mention the other passes.
	_, _, rep := optimizeOne(t, diffCases[2].src, []string{"unroll"})
	for _, r := range rep.Results {
		if r.Pass != "unroll" {
			t.Errorf("unselected pass %q appears in the report", r.Pass)
		}
	}
	if got := rep.AppliedPasses(); len(got) != 1 || got[0] != "unroll" {
		t.Errorf("AppliedPasses() = %v, want [unroll]", got)
	}
}

func TestUnchangedProgramIsPointerIdentical(t *testing.T) {
	prog := mustCompile(t, `__kernel void nop() { }`)
	out, rep := Optimize(prog)
	if rep.Applied() {
		t.Fatalf("no pass should apply to an empty kernel:\n%s", rep)
	}
	if out != prog {
		t.Error("unchanged program must be returned pointer-identical")
	}
	if n := rep.ChangedKernels(); len(n) != 0 {
		t.Errorf("ChangedKernels() = %v, want none", n)
	}
}

func TestChangedProgramSharesUntouchedKernels(t *testing.T) {
	src := diffCases[1].src + `
		__kernel void nop() { }`
	prog, out, rep := optimizeOne(t, src, nil)
	if !rep.Applied() {
		t.Fatalf("expected the copy kernel to transform:\n%s", rep)
	}
	if out == prog {
		t.Fatal("transformed program must be a fresh *ir.Program")
	}
	if out.Kernels["nop"] != prog.Kernels["nop"] {
		t.Error("untouched kernel must be shared, not cloned")
	}
	if out.Kernels["copy"] == prog.Kernels["copy"] {
		t.Error("transformed kernel must be a clone, not the input")
	}
	if got := rep.ChangedKernels(); len(got) != 1 || got[0] != "copy" {
		t.Errorf("ChangedKernels() = %v, want [copy]", got)
	}
}

func TestInputProgramNeverMutated(t *testing.T) {
	be, _ := backend.Get("irdump")
	for _, tc := range diffCases {
		prog := mustCompile(t, tc.src)
		before, err := be.Emit(prog.Kernels[tc.kernel])
		if err != nil {
			t.Fatalf("%s: irdump: %v", tc.name, err)
		}
		Optimize(prog)
		after, _ := be.Emit(prog.Kernels[tc.kernel])
		if !bytes.Equal(before, after) {
			t.Errorf("%s: Optimize mutated its input program", tc.name)
		}
	}
}

// TestOptimizeDeterministic runs the pipeline twice on every suite
// kernel and requires byte-identical irdump output: the transform
// framework may not depend on map iteration order anywhere.
func TestOptimizeDeterministic(t *testing.T) {
	be, _ := backend.Get("irdump")
	for _, tc := range diffCases {
		_, out1, rep1 := optimizeOne(t, tc.src, nil)
		_, out2, rep2 := optimizeOne(t, tc.src, nil)
		if rep1.String() != rep2.String() {
			t.Errorf("%s: reports differ between runs", tc.name)
		}
		for _, name := range kernelNames(out1) {
			d1, _ := be.Emit(out1.Kernels[name])
			d2, _ := be.Emit(out2.Kernels[name])
			if !bytes.Equal(d1, d2) {
				t.Errorf("%s/%s: transformed IR differs between identical runs", tc.name, name)
			}
		}
	}
}

func TestReportString(t *testing.T) {
	_, _, rep := optimizeOne(t, diffCases[1].src, nil)
	s := rep.String()
	if !strings.Contains(s, "copy: [vectorize] applied") {
		t.Errorf("report misses the vectorize application:\n%s", s)
	}
	if !strings.Contains(s, "sites") {
		t.Errorf("report misses site counts:\n%s", s)
	}
}
