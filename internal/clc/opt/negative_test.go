package opt

import (
	"fmt"
	"strings"
	"testing"
)

// negCase pins one refusal path: the pass must NOT apply, and the
// report must carry the named reason so `clc -optimize` output stays
// actionable. Every case still runs the differential check — refusing
// wrongly is a quality bug, transforming wrongly would be a
// correctness bug, and a refusal must never perturb the kernel.
type negCase struct {
	name   string
	src    string
	kernel string
	only   []string
	pass   string // the pass that must refuse
	note   string // substring the refusal note must contain
}

var negCases = []negCase{
	{
		// The store's address is data-dependent (a loaded index), so no
		// access attribution exists and promoting restrict on either
		// param would be unsound: idx could point out anywhere.
		name: "aliased_restrict_candidate",
		src: `__kernel void scatter(__global float* out, __global const int* idx) {
			int g = get_global_id(0);
			out[idx[g] & 63] = 1.0f;
		}`,
		kernel: "scatter", pass: "constrestrict",
		note: "not attributable",
	},
	{
		// Stride-2 stores cannot widen: a vec4 store writes 4
		// consecutive elements, which is not the scalar loop's effect.
		name: "non_unit_stride",
		src: `__kernel void even(__global float* io, int n) {
			int base = get_global_id(0) * n * 2;
			for (int i = 0; i < n; i++)
				io[base + i * 2] = 1.0f;
		}`,
		kernel: "even", pass: "vectorize",
		note: "not unit-stride",
	},
	{
		// A non-constant step defeats the counted-loop recovery, so
		// neither vectorize nor unroll can even see a trip shape.
		name: "divergent_trip_count",
		src: `__kernel void stepper(__global float* io, int n, int m) {
			int base = get_global_id(0) * n;
			for (int i = 0; i < n; i += m)
				io[base + i] = 2.0f;
		}`,
		kernel: "stepper", pass: "vectorize",
		note: "trip shape not recovered",
	},
	{
		// Without promoted restrict the dst/src streams cannot be
		// proven disjoint; run the vectorizer alone to pin the aliasing
		// refusal the constrestrict pass normally discharges.
		name: "unpromoted_alias_pair",
		src: `__kernel void copy2(__global int* dst, __global const int* src, int n) {
			int base = get_global_id(0) * n;
			for (int i = 0; i < n; i++)
				dst[base + i] = src[base + i];
		}`,
		kernel: "copy2", only: []string{"vectorize"}, pass: "vectorize",
		note: "aliasing",
	},
}

func init() {
	// Register budget: a loop body with enough live float values that
	// widening cannot fit the T604 per-thread register file. Built
	// programmatically so the case tracks the budget constant's intent
	// rather than a hand-counted source.
	var b strings.Builder
	b.WriteString("__kernel void fat(__global float* io, int n) {\n")
	b.WriteString("\tint base = get_global_id(0) * n;\n")
	b.WriteString("\tfor (int i = 0; i < n; i++) {\n")
	const vals = 28
	for v := 0; v < vals; v++ {
		fmt.Fprintf(&b, "\t\tfloat v%d = io[base + i] * %d.5f;\n", v, v)
	}
	b.WriteString("\t\tfloat s = 0.0f;\n")
	for v := 0; v < vals; v++ {
		fmt.Fprintf(&b, "\t\ts = s + v%d;\n", v)
	}
	b.WriteString("\t\tio[base + i] = s;\n\t}\n}\n")
	negCases = append(negCases, negCase{
		name: "register_budget_exceeded",
		src:  b.String(), kernel: "fat", pass: "vectorize",
		note: "register budget",
	})
}

func TestNegativeApplications(t *testing.T) {
	for _, tc := range negCases {
		t.Run(tc.name, func(t *testing.T) {
			orig, out, rep := optimizeOne(t, tc.src, tc.only)
			found := false
			for _, r := range rep.Results {
				if r.Kernel != tc.kernel || r.Pass != tc.pass {
					continue
				}
				if r.Applied {
					t.Fatalf("pass %s must refuse:\n%s", tc.pass, rep)
				}
				for _, n := range r.Notes {
					if strings.Contains(n, tc.note) {
						found = true
					}
				}
			}
			if !found {
				t.Errorf("no %s refusal note contains %q:\n%s", tc.pass, tc.note, rep)
			}
			ko, kx := orig.Kernels[tc.kernel], out.Kernels[tc.kernel]
			for _, seed := range []uint64{1, 42} {
				checkEquivalence(t, ko, kx, 4, 2, 7, seed)
			}
		})
	}
}
