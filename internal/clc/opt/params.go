package opt

import (
	"maligo/internal/clc/ast"
	"maligo/internal/clc/ir"
)

// runConstRestrict promotes the Section V-D qualifiers the dataflow
// engine can justify:
//
//   - `const` on a __global pointer parameter when no store or atomic
//     in the kernel can target its buffer — every memory write must be
//     affine-attributable to some *other* parameter or to a non-global
//     space; a single unattributable write blocks all promotions.
//   - `restrict` on the __global pointer parameters when *every*
//     global-space access in the kernel is attributable to exactly one
//     parameter with coefficient 1. Address chains that mix two
//     parameters (the aliased-candidate case) collapse to affine top
//     and veto the promotion.
//
// Promotion never changes VM semantics — qualifiers are compiler
// hints — so it is unconditionally bit-identical. What it changes is
// downstream behavior: the device model's load/store scheduling
// quality and, crucially, the vectorizer's aliasing rules, which
// trust restrict. The in-kernel proof extends to the host under the
// same contract real OpenCL restrict demands: distinct buffer
// arguments do not overlap (malid jobs and the harness always
// allocate distinct buffers).
func runConstRestrict(c *passCtx) bool {
	k, f := c.k, c.facts

	attribs := classifyMem(k, f)
	writtenParam := make([]bool, len(k.Params))
	unknownWrite, unknownGlobal := false, false
	for i := range k.Code {
		in := &k.Code[i]
		if !isMemOp(in.Op) || !f.Reachable(i) {
			continue
		}
		write := isStoreOp(in.Op) || in.Op == ir.AtomicOp
		a := attribs[i]
		if a.param >= 0 {
			if write {
				writtenParam[a.param] = true
			}
			continue
		}
		// Known non-global spaces (local, private, constant) cannot
		// overlap a __global buffer; anything else might.
		if a.space == ir.SpaceLocal || a.space == ir.SpacePrivate || a.space == ir.SpaceConstant {
			continue
		}
		unknownGlobal = true
		if write {
			unknownWrite = true
		}
	}

	applied := false
	for pi := range k.Params {
		p := &k.Params[pi]
		if p.Class != ir.ParamGlobalPtr || p.Space != ast.GlobalSpace || p.Type == nil {
			continue
		}
		if !p.Type.Const && !writtenParam[pi] && !unknownWrite {
			t := cloneType(p.Type)
			t.Const = true
			p.Type = t
			k.ConstParams++
			c.sites++
			applied = true
			c.note("param %s: promoted to const (no store reaches its buffer)", p.Name)
		} else if !p.Type.Const && (writtenParam[pi] || unknownWrite) {
			reason := "a store targets its buffer"
			if !writtenParam[pi] {
				reason = "an unattributable store could target it"
			}
			c.note("param %s: const refused (%s)", p.Name, reason)
		}
		if !p.Type.Restrict && !unknownGlobal {
			t := cloneType(p.Type)
			t.Restrict = true
			p.Type = t
			k.RestrictParams++
			c.sites++
			applied = true
			c.note("param %s: promoted to restrict (every global access attributes to one param)", p.Name)
		} else if !p.Type.Restrict && unknownGlobal {
			c.note("param %s: restrict refused (global access not attributable to a single param)", p.Name)
		}
	}
	return applied
}
