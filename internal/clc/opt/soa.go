package opt

import (
	"sort"

	"maligo/internal/clc/ir"
	"maligo/internal/clc/types"
)

// soaMaxStride bounds the recognized interleave factor (a real AoS
// "struct" wider than 16 fields is not a layout the paper's §V-C
// transformation targets).
const soaMaxStride = 16

// runSoA relayouts in-kernel __local/__private scratch arrays from
// array-of-structures to structure-of-arrays (§V-C): element index
// e = S*q + c becomes e' = c*R + q (R = len/S), putting each
// component c into its own contiguous plane so lid-strided accesses
// coalesce. Global buffers are out of scope by design — their layout
// is host-visible ABI, and rewriting it would break result
// bit-identity, which is the one contract no pass may trade away.
//
// Soundness: the relayout is a bijection on the array's extent, and
// it fires only when *every* memory access in the kernel is either
// provably disjoint from the array or decomposes as a scalar access
// with constant component c and provably in-extent address, each such
// site getting an address fixup (new = base + c*R*es + (rel-c*es)/S).
// Any unattributable access refuses the whole array.
func runSoA(c *passCtx) bool {
	k, f := c.k, c.facts

	type site struct {
		instr int
		coef  int64 // strided sites: bytes advanced per unit of the varying index
		rel0  int64 // byte offset of the site at varying index 0
	}
	type candidate struct {
		arr   ir.ArrayDecl
		sites []site
	}

	// Map each instruction inside a recognized loop body to its
	// linear address forms.
	inBody := map[int]lin{}
	for _, l := range f.Loops() {
		if s, _ := recognizeShape(f, l); s != nil {
			bl := analyzeBody(f, s)
			for i, li := range bl.addr { // maligo:allow maporder distinct keys fill the index map
				inBody[i] = li
			}
		}
	}

	attribs := classifyMem(k, f)

	var applied bool
	var fixups []struct {
		instr   int
		strided bool
		encBase int64
		c, S, R int64
		es      int64
		newAddr int64 // const sites
	}

	for _, arr := range k.Arrays {
		if arr.Space != ir.SpaceLocal && arr.Space != ir.SpacePrivate {
			continue
		}
		if arr.ElemSize <= 0 || arr.Len < 4 {
			continue
		}
		encBase := ir.EncodeAddr(arr.Space, arr.Offset)
		lo, hi := encBase, encBase+arr.Bytes
		cand := candidate{arr: arr}
		refused := ""

		for i := range k.Code {
			in := &k.Code[i]
			if !isMemOp(in.Op) || !f.Reachable(i) {
				continue
			}
			ival := f.IntervalBefore(i, in.B)
			inside := ival.Lo >= lo && ival.Hi < hi
			outside := ival.Hi < lo || ival.Lo >= hi
			if !inside && !outside {
				// The interval alone cannot separate this access from
				// the array; attribute it symbolically. Any pointer
				// parameter is disjoint from a declared array: global
				// and constant buffers live in other spaces, and
				// host-provided __local pointer args are laid out after
				// the declared arrays at bind time.
				if a := attribs[i]; a.param >= 0 || (a.space >= 0 && a.space != arr.Space) {
					continue
				}
				refused = "an access cannot be proven inside or outside the array"
				break
			}
			if outside {
				continue
			}
			if in.Op == ir.AtomicOp {
				refused = "an atomic operates on the array"
				break
			}
			if in.Width > 1 {
				refused = "a vector-wide access spans reinterleaved elements"
				break
			}
			// Inside: derive the linear/affine decomposition.
			var coef, rel0 int64
			if li, ok := inBody[i]; ok && li.ok && len(li.terms) == 0 {
				coef, rel0 = li.coef, li.off-encBase
			} else if af := f.AffineBefore(i, in.B); af.OK && af.SymC == 0 &&
				(af.Lid == 0 || af.Gid == 0) {
				if af.Lid != 0 {
					coef = af.Lid
				} else {
					coef = af.Gid
				}
				rel0 = af.C - encBase
			} else {
				refused = "an in-array address is not linear in a single index"
				break
			}
			es := arr.ElemSize
			if rel0%es != 0 || coef%es != 0 {
				refused = "an in-array access is not element-aligned"
				break
			}
			cand.sites = append(cand.sites, site{instr: i, coef: coef, rel0: rel0})
		}
		if refused != "" {
			c.note("array %s: %s", arr.Name, refused)
			continue
		}

		// Interleave factor: gcd of the element-unit strides of every
		// varying site; constant sites fit any factor.
		es := arr.ElemSize
		S := int64(0)
		for _, st := range cand.sites {
			if st.coef != 0 {
				S = gcd64(S, st.coef/es)
			}
		}
		if S == 0 {
			c.note("array %s: no strided accesses (nothing to deinterleave)", arr.Name)
			continue
		}
		if S < 2 || S > soaMaxStride || arr.Len%S != 0 {
			c.note("array %s: stride %d is not an AoS interleave of len %d", arr.Name, S, arr.Len)
			continue
		}
		R := arr.Len / S
		comps := map[int64]bool{}
		ok := true
		for _, st := range cand.sites {
			cc := floorMod(st.rel0/es, S)
			comps[cc] = true
			// The fixup divides (rel - c*es) by S; that is exact only
			// when the varying part advances in whole structs.
			if st.coef != 0 && (st.coef/es)%S != 0 {
				ok = false
			}
			if st.rel0/es-cc < 0 {
				ok = false
			}
		}
		if !ok {
			c.note("array %s: access strides disagree with interleave %d", arr.Name, S)
			continue
		}
		if len(comps) < 2 {
			c.note("array %s: single component accessed; relayout would be a no-op", arr.Name)
			continue
		}

		for _, st := range cand.sites {
			cc := floorMod(st.rel0/es, S)
			fx := struct {
				instr   int
				strided bool
				encBase int64
				c, S, R int64
				es      int64
				newAddr int64
			}{instr: st.instr, strided: st.coef != 0, encBase: encBase, c: cc, S: S, R: R, es: es}
			if !fx.strided {
				q := (st.rel0/es - cc) / S
				fx.newAddr = encBase + (cc*R+q)*es
			}
			fixups = append(fixups, fx)
		}
		c.sites += len(cand.sites)
		applied = true
		c.note("array %s: relayout AoS[%d x %d] -> SoA (%d sites rewritten)", arr.Name, R, S, len(cand.sites))
	}

	if !applied {
		return false
	}

	// Two shared scratch slots back every fixup (each fixup is
	// straight-line def-before-use at its site).
	t1 := int32(k.NumI)
	t2 := t1 + 1
	k.NumI += 2
	if k.RegBytes > 0 {
		k.RegBytes += 16
	}

	sort.Slice(fixups, func(i, j int) bool { return fixups[i].instr > fixups[j].instr })
	for _, fx := range fixups {
		pos := fx.instr
		b := k.Code[pos].B
		if !fx.strided {
			k.Code = insertAt(k.Code, pos,
				ir.Instr{Op: ir.ImmI, A: t2, Imm: fx.newAddr, Width: 1, Base: types.ULong},
			)
			k.Code[pos+1].B = t2
			continue
		}
		k.Code = insertAt(k.Code, pos,
			ir.Instr{Op: ir.ImmI, A: t1, Imm: fx.encBase + fx.c*fx.es, Width: 1, Base: types.ULong},
			ir.Instr{Op: ir.SubI, A: t2, B: b, C: t1, Width: 1, Base: types.Long},
			ir.Instr{Op: ir.ImmI, A: t1, Imm: fx.S, Width: 1, Base: types.Long},
			ir.Instr{Op: ir.DivI, A: t2, B: t2, C: t1, Width: 1, Base: types.Long},
			ir.Instr{Op: ir.ImmI, A: t1, Imm: fx.encBase + fx.c*fx.R*fx.es, Width: 1, Base: types.ULong},
			ir.Instr{Op: ir.AddI, A: t2, B: t1, C: t2, Width: 1, Base: types.ULong},
		)
		k.Code[pos+6].B = t2
	}
	return true
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func floorMod(a, m int64) int64 {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}
