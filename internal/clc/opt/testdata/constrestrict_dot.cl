/* §V-D exemplar: every global access attributes to exactly one
 * pointer param, so the loads promote to const+restrict; the
 * float reduction itself must stay scalar. */
__kernel void dot1(__global float* out, __global const float* a, __global const float* b, int n) {
	int g = get_global_id(0);
	float s = 0.0f;
	for (int i = 0; i < n; i++)
		s += a[g * n + i] * b[g * n + i];
	out[g] = s;
}
