/* §V-B exemplar: unit-stride scalar loop widened to vec4 with a
 * scalar remainder; address chains stay scalar. */
__kernel void saxpy(__global float* y, __global const float* x, float a, int n) {
	int base = get_global_id(0) * n;
	for (int i = 0; i < n; i++)
		y[base + i] = a * x[base + i] + y[base + i];
}
