/* §V-E exemplar: constant-trip loop fully unrolled inside the T604
 * register budget. */
__kernel void acc(__global float* out, __global const float* in) {
	int g = get_global_id(0);
	float s = 0.0f;
	for (int i = 0; i < 4; i++)
		s += in[g * 4 + i];
	out[g] = s;
}
