/* §V-C exemplar: the private p[16] array holds 8 interleaved {x,y}
 * pairs; the relayout gives each component a contiguous plane. */
__kernel void pts(__global float* out, __global const float* in, int n) {
	float p[16];
	int g = get_global_id(0);
	for (int i = 0; i < 8; i++) {
		p[i * 2] = in[g * 16 + i];
		p[i * 2 + 1] = in[g * 16 + 8 + i];
	}
	float s = 0.0f;
	for (int i = 0; i < 8; i++)
		s += p[i * 2] * p[i * 2 + 1];
	out[g] = s;
}
