/* Refusal exemplar: the store address is data-dependent, so no pass
 * may change this kernel — the golden's BEFORE and AFTER match. */
__kernel void scatter(__global float* out, __global const int* idx) {
	int g = get_global_id(0);
	out[idx[g] & 63] = 1.0f;
}
