package opt

import (
	"strings"
	"testing"
)

// diffCase is one kernel in the differential suite. Each names the
// passes it expects to fire; the equivalence check always runs the
// full pipeline so pass interactions are covered too.
type diffCase struct {
	name    string
	src     string
	kernel  string
	global  int
	local   int
	scalar  int64 // value bound to every integer scalar parameter
	expect  []string
	minSite int
}

var diffCases = []diffCase{
	{
		name: "saxpy_inner_loop",
		src: `__kernel void saxpy(__global float* y, __global const float* x, float a, int n) {
			int base = get_global_id(0) * n;
			for (int i = 0; i < n; i++)
				y[base + i] = a * x[base + i] + y[base + i];
		}`,
		kernel: "saxpy", global: 8, local: 4, scalar: 19,
		expect: []string{"vectorize", "constrestrict"}, minSite: 1,
	},
	{
		name: "copy_unit_stride",
		src: `__kernel void copy(__global int* dst, __global const int* src, int n) {
			int base = get_global_id(0) * n;
			for (int i = 0; i < n; i++)
				dst[base + i] = src[base + i];
		}`,
		kernel: "copy", global: 4, local: 4, scalar: 23,
		expect: []string{"vectorize", "constrestrict"}, minSite: 1,
	},
	{
		name: "const_trip_unroll",
		src: `__kernel void acc(__global float* out, __global const float* in) {
			int g = get_global_id(0);
			float s = 0.0f;
			for (int i = 0; i < 4; i++)
				s += in[g * 4 + i];
			out[g] = s;
		}`,
		kernel: "acc", global: 8, local: 4, scalar: 0,
		expect: []string{"unroll", "constrestrict"}, minSite: 1,
	},
	{
		name: "private_aos_soa",
		src: `__kernel void pts(__global float* out, __global const float* in, int n) {
			float p[16]; /* 8 x {x,y} pairs */
			int g = get_global_id(0);
			for (int i = 0; i < 8; i++) {
				p[i * 2] = in[g * 16 + i];
				p[i * 2 + 1] = in[g * 16 + 8 + i];
			}
			float s = 0.0f;
			for (int i = 0; i < 8; i++)
				s += p[i * 2] * p[i * 2 + 1];
			out[g] = s;
		}`,
		kernel: "pts", global: 4, local: 2, scalar: 0,
		expect: []string{"soa", "constrestrict"}, minSite: 2,
	},
	{
		name: "reduction_stays_scalar",
		src: `__kernel void dot1(__global float* out, __global const float* a, __global const float* b, int n) {
			int g = get_global_id(0);
			float s = 0.0f;
			for (int i = 0; i < n; i++)
				s += a[g * n + i] * b[g * n + i];
			out[g] = s;
		}`,
		kernel: "dot1", global: 4, local: 2, scalar: 13,
		expect: []string{"constrestrict"}, minSite: 1,
	},
	{
		name: "stencil_mixed",
		src: `__kernel void st(__global float* out, __global const float* in, int n) {
			int base = get_global_id(0) * (n + 2);
			for (int i = 1; i <= n; i++)
				out[base + i] = in[base + i - 1] + in[base + i] + in[base + i + 1];
		}`,
		kernel: "st", global: 4, local: 2, scalar: 11,
		expect: []string{"vectorize", "constrestrict"}, minSite: 1,
	},
	{
		name: "branch_in_body_scalar_only",
		src: `__kernel void relu(__global float* io, int n) {
			int base = get_global_id(0) * n;
			for (int i = 0; i < n; i++) {
				float v = io[base + i];
				int keep = v > 0.5f;
				io[base + i] = v * (float)keep;
			}
		}`,
		kernel: "relu", global: 4, local: 2, scalar: 17,
		expect: []string{"vectorize"}, minSite: 1,
	},
	{
		name: "local_barrier_tile",
		src: `__kernel void tile(__global float* out, __global const float* in, __local float* tmp, int n) {
			int l = get_local_id(0);
			int g = get_global_id(0);
			tmp[l] = in[g];
			barrier(CLK_LOCAL_MEM_FENCE);
			float s = 0.0f;
			for (int i = 0; i < 4; i++)
				s += tmp[(l + i) % 8];
			out[g] = s;
		}`,
		kernel: "tile", global: 16, local: 8, scalar: 4,
		expect: []string{"unroll"}, minSite: 1,
	},
}

// TestDifferentialSuite proves the correctness contract on every
// representative kernel: results bit-identical to the untransformed
// interpreter run on all three engines, with several data seeds and
// scalar bindings.
func TestDifferentialSuite(t *testing.T) {
	for _, tc := range diffCases {
		t.Run(tc.name, func(t *testing.T) {
			orig, out, rep := optimizeOne(t, tc.src, nil)
			ko, kx := orig.Kernels[tc.kernel], out.Kernels[tc.kernel]
			if ko == nil || kx == nil {
				t.Fatalf("kernel %q missing", tc.kernel)
			}
			applied := map[string]bool{}
			sites := 0
			for _, r := range rep.Results {
				if r.Kernel == tc.kernel && r.Applied {
					applied[r.Pass] = true
					sites += r.Sites
				}
			}
			for _, want := range tc.expect {
				if !applied[want] {
					t.Errorf("expected pass %q to apply; report:\n%s", want, rep)
				}
			}
			if sites < tc.minSite {
				t.Errorf("expected at least %d transformed sites, got %d", tc.minSite, sites)
			}
			for _, seed := range []uint64{1, 7, 1234567} {
				checkEquivalence(t, ko, kx, tc.global, tc.local, tc.scalar, seed)
			}
			// Alternate scalar bindings stress remainder loops (non
			// multiple-of-4 trips) and degenerate zero-trip loops.
			if tc.scalar != 0 {
				for _, s := range []int64{0, 1, 3, 4, 5, 64} {
					checkEquivalence(t, ko, kx, tc.global, tc.local, s, 99)
				}
			}
		})
	}
}

// TestTransformedKernelsStillOptimizable ensures the transformed IR
// is well-formed enough to go through the pipeline a second time
// without crashing (idempotence is NOT required — a remainder loop
// may legitimately be re-recognized — only stability).
func TestTransformedKernelsStillOptimizable(t *testing.T) {
	for _, tc := range diffCases {
		t.Run(tc.name, func(t *testing.T) {
			_, out, _ := optimizeOne(t, tc.src, nil)
			if _, _, err := OptimizeWith(out, nil); err != nil {
				t.Fatalf("second optimize failed: %v", err)
			}
		})
	}
}

// TestReportNamesAnalyzerPasses checks the report's Answers wiring:
// every applied result must cite at least one tier-2 analyzer pass so
// diagnostics and transforms stay cross-referenced.
func TestReportNamesAnalyzerPasses(t *testing.T) {
	_, _, rep := optimizeOne(t, diffCases[0].src, nil)
	for _, r := range rep.Results {
		if len(r.Answers) == 0 {
			t.Errorf("pass %s reports no analyzer linkage", r.Pass)
		}
		for _, a := range r.Answers {
			if strings.TrimSpace(a) == "" {
				t.Errorf("pass %s has an empty analyzer reference", r.Pass)
			}
		}
	}
}
