package opt

import (
	"maligo/internal/clc/ir"
	"maligo/internal/clc/types"
)

// cloneKernel deep-copies the mutable parts of a kernel: code,
// params, and array descriptors. Types are shared until a pass
// actually mutates a qualifier (see cloneType); the engine-form
// caches start empty so every engine compiles the transformed code
// fresh instead of reusing the original kernel's compiled form.
func cloneKernel(k *ir.Kernel) *ir.Kernel {
	return &ir.Kernel{
		Name:           k.Name,
		Params:         append([]ir.Param(nil), k.Params...),
		Code:           append([]ir.Instr(nil), k.Code...),
		Arrays:         append([]ir.ArrayDecl(nil), k.Arrays...),
		NumI:           k.NumI,
		NumF:           k.NumF,
		RegBytes:       k.RegBytes,
		LocalBytes:     k.LocalBytes,
		PrivateBytes:   k.PrivateBytes,
		MaxVectorWidth: k.MaxVectorWidth,
		UsesDouble:     k.UsesDouble,
		UsesBarrier:    k.UsesBarrier,
		RestrictParams: k.RestrictParams,
		ConstParams:    k.ConstParams,
	}
}

// cloneType shallow-copies one type node so a qualifier can be set
// without mutating the original program's shared type graph.
func cloneType(t *types.Type) *types.Type {
	c := *t
	return &c
}

// remapJumps rewrites every jump target in code after the segment
// [segStart, segEnd) of the pre-rewrite kernel was replaced by a
// segment of newLen instructions. Jumps *inside* the new segment must
// already carry final absolute targets; the caller passes the range
// they occupy so they are left alone.
func remapJumps(code []ir.Instr, segStart, segEnd, newLen int) {
	delta := int64(newLen - (segEnd - segStart))
	if delta == 0 {
		return
	}
	newEnd := segStart + newLen
	for i := range code {
		if i >= segStart && i < newEnd {
			continue
		}
		switch code[i].Op {
		case ir.Jmp, ir.JmpIf, ir.JmpIfZ:
			if code[i].Imm >= int64(segEnd) {
				code[i].Imm += delta
			}
		}
	}
}

// insertAt splices insts into code before index pos and fixes every
// jump target accordingly. A jump that targeted pos itself now lands
// on the first inserted instruction — the insertions here are address
// fixups that must run on every path reaching the instruction they
// guard, so entering at the fixup is the correct behavior.
func insertAt(code []ir.Instr, pos int, insts ...ir.Instr) []ir.Instr {
	n := int64(len(insts))
	out := make([]ir.Instr, 0, len(code)+len(insts))
	out = append(out, code[:pos]...)
	out = append(out, insts...)
	out = append(out, code[pos:]...)
	for i := range out {
		if i >= pos && i < pos+len(insts) {
			continue
		}
		switch out[i].Op {
		case ir.Jmp, ir.JmpIf, ir.JmpIfZ:
			if out[i].Imm > int64(pos) {
				out[i].Imm += n
			}
		}
	}
	return out
}
