package opt

import (
	"fmt"
	"math"

	"maligo/internal/clc/analysis/dataflow"
	"maligo/internal/clc/ir"
	"maligo/internal/clc/types"
)

// loopShape is a counted loop in the exact two-block form the
// canonical lowering emits:
//
//	hs:   [ImmI consts...]          ; header constant prefix
//	      cmp iv, bound             ; cmpAt == term-1
//	      jmpifz -> exit            ; term
//	bs:   [work body...]
//	      [iv increment chain...]   ; incStart..be-2
//	      jmp -> hs                 ; be-1
//	be:
//
// The latch is entered only from the header fall-through, so the loop
// segment [hs, be) can be replaced wholesale and every outside jump
// remapped mechanically.
type loopShape struct {
	l          dataflow.Loop
	hs         int // header start
	cmpAt      int // exit compare (== term-1)
	term       int // the JmpIfZ
	bs, be     int // latch range; be-1 is the back jump
	incStart   int // first instruction of the iv-increment chain
	exitTo     int64
	headConsts []int // indexes of the header ImmI prefix
}

// recognizeShape checks one natural loop against the canonical
// two-block form. It returns nil and a short reason on any mismatch.
func recognizeShape(f *dataflow.Facts, l dataflow.Loop) (*loopShape, string) {
	if !l.Counted {
		return nil, "trip shape not recovered (divergent or non-counted exit condition)"
	}
	if len(l.Blocks) != 2 || l.Header == l.Latch {
		return nil, "loop body is not a single block"
	}
	g := f.G
	hb, lb := g.Blocks[l.Header], g.Blocks[l.Latch]
	if hb.End != lb.Start {
		return nil, "latch does not fall through from the header"
	}
	term := hb.Terminator()
	code := g.Kernel.Code
	if term < 0 || code[term].Op != ir.JmpIfZ || l.CmpAt != term-1 {
		return nil, "exit compare does not feed the header branch directly"
	}
	for _, p := range lb.Preds {
		if p != l.Header {
			return nil, "loop body has an entry besides the header"
		}
	}
	if code[lb.Terminator()].Op != ir.Jmp || code[lb.Terminator()].Imm != int64(hb.Start) {
		return nil, "latch does not end in the back jump"
	}
	s := &loopShape{
		l: l, hs: hb.Start, cmpAt: term - 1, term: term,
		bs: lb.Start, be: lb.End, exitTo: code[term].Imm,
	}
	for i := hb.Start; i < s.cmpAt; i++ {
		if code[i].Op != ir.ImmI || code[i].Width > 1 {
			return nil, "header computes more than re-materialized constants"
		}
		s.headConsts = append(s.headConsts, i)
	}
	// The increment chain must be the contiguous tail of the latch so
	// the work body [bs, incStart) is a clean straight-line region.
	inc := l.IncAt
	if len(inc) == 0 || len(inc) >= s.be-s.bs {
		return nil, "induction update chain not found in the latch"
	}
	for j, i := range inc {
		if i != s.be-1-len(inc)+j {
			return nil, "induction update is interleaved with the loop body"
		}
	}
	s.incStart = s.be - 1 - len(inc)
	// Grow the chain backward over pure scalar feeders (the lowering
	// re-materializes the step constant and copies the old iv value
	// right before the add) so the work body above incStart carries no
	// dangling loop-control defs.
	du := f.DefUse()
	for s.incStart > s.bs {
		j := s.incStart - 1
		in := &code[j]
		switch in.Op {
		case ir.ImmI, ir.MovI, ir.AddI, ir.SubI, ir.MulI, ir.AndI, ir.OrI,
			ir.XorI, ir.ShlI, ir.ShrI, ir.NegI, ir.NotI, ir.CvtII:
		default:
			return s, ""
		}
		if in.Width > 1 {
			return s, ""
		}
		d, ok := ir.Def(in)
		if !ok || (d.Bank == ir.BankI && d.Slot == l.IV) {
			return s, ""
		}
		for _, u := range du.UsesOf(j) {
			if u <= j || u >= s.be-1 {
				return s, ""
			}
		}
		s.incStart = j
	}
	return s, ""
}

// linTerm is one loop-invariant symbolic contribution to a linear
// form: coef * value(slot). Slots at or above vnumBase are pseudo
// symbols naming a loop-invariant but nonlinear expression (g*n and
// the like); they compare equal exactly when the expressions are
// structurally identical, and they never attribute to a parameter.
type linTerm struct {
	slot int32
	coef int64
}

// vnumBase is far above any real register slot index.
const vnumBase = int32(1) << 24

// lin is a symbolic linear form of an integer slot's value inside one
// loop body: value = coef*iv + Σ terms[j].coef*value(terms[j].slot)
// + off, where every term slot is loop-invariant and terms are kept
// sorted by slot with non-zero coefficients. Because Long/ULong
// arithmetic in the VM is exact mod 2^64 and the engines compute
// per-lane addresses with the same wrapping adds, 64-bit propagation
// needs no overflow side conditions; narrower bases pass through only
// when signed (overflow is UB) or when the interval facts prove the
// operation cannot wrap.
type lin struct {
	ok    bool
	coef  int64
	terms []linTerm
	off   int64
}

func linConst(v int64) lin    { return lin{ok: true, off: v} }
func linSlot(s int32) lin     { return lin{ok: true, terms: []linTerm{{slot: s, coef: 1}}} }
func linIV() lin              { return lin{ok: true, coef: 1} }
func (a lin) invariant() bool { return a.ok && a.coef == 0 }

func (a lin) add(b lin) lin {
	if !a.ok || !b.ok {
		return lin{}
	}
	out := lin{ok: true, coef: a.coef + b.coef, off: a.off + b.off}
	i, j := 0, 0
	for i < len(a.terms) || j < len(b.terms) {
		switch {
		case j >= len(b.terms) || (i < len(a.terms) && a.terms[i].slot < b.terms[j].slot):
			out.terms = append(out.terms, a.terms[i])
			i++
		case i >= len(a.terms) || b.terms[j].slot < a.terms[i].slot:
			out.terms = append(out.terms, b.terms[j])
			j++
		default:
			if c := a.terms[i].coef + b.terms[j].coef; c != 0 {
				out.terms = append(out.terms, linTerm{slot: a.terms[i].slot, coef: c})
			}
			i++
			j++
		}
	}
	return out
}

func (a lin) neg() lin { return a.scale(-1) }

func (a lin) scale(k int64) lin {
	if !a.ok {
		return lin{}
	}
	out := lin{ok: true, coef: a.coef * k, off: a.off * k}
	if k == 0 {
		return out
	}
	for _, t := range a.terms {
		out.terms = append(out.terms, linTerm{slot: t.slot, coef: t.coef * k})
	}
	return out
}

// eq reports structural equality: two equal forms denote the same
// address stream on every iteration.
func (a lin) eq(b lin) bool {
	if !a.ok || !b.ok || a.coef != b.coef || a.off != b.off || len(a.terms) != len(b.terms) {
		return false
	}
	for i := range a.terms {
		if a.terms[i] != b.terms[i] {
			return false
		}
	}
	return true
}

// baseIval mirrors the dataflow engine's canonical value range per
// integer base type; 8-byte bases report ok=false (full int64 range).
func baseIval(b types.Base) (dataflow.Interval, bool) {
	switch b {
	case types.Bool:
		return dataflow.Interval{Lo: 0, Hi: 1}, true
	case types.Char:
		return dataflow.Interval{Lo: -128, Hi: 127}, true
	case types.UChar:
		return dataflow.Interval{Lo: 0, Hi: 255}, true
	case types.Short:
		return dataflow.Interval{Lo: -32768, Hi: 32767}, true
	case types.UShort:
		return dataflow.Interval{Lo: 0, Hi: 65535}, true
	case types.Int:
		return dataflow.Interval{Lo: math.MinInt32, Hi: math.MaxInt32}, true
	case types.UInt:
		return dataflow.Interval{Lo: 0, Hi: math.MaxUint32}, true
	}
	return dataflow.Interval{Lo: dataflow.NegInf, Hi: dataflow.PosInf}, false
}

func is64(b types.Base) bool {
	_, narrow := baseIval(b)
	return !narrow
}

// satAdd/satMul saturate instead of wrapping, for no-wrap proofs.
func satAdd(a, b int64) int64 {
	r := a + b
	if (b > 0 && r < a) || (b < 0 && r > a) {
		if b > 0 {
			return math.MaxInt64
		}
		return math.MinInt64
	}
	return r
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	r := a * b
	if r/b != a {
		if (a > 0) == (b > 0) {
			return math.MaxInt64
		}
		return math.MinInt64
	}
	return r
}

func ivalAdd(a, b dataflow.Interval) dataflow.Interval {
	return dataflow.Interval{Lo: satAdd(a.Lo, b.Lo), Hi: satAdd(a.Hi, b.Hi)}
}

func ivalSub(a, b dataflow.Interval) dataflow.Interval {
	return dataflow.Interval{Lo: satAdd(a.Lo, -b.Hi), Hi: satAdd(a.Hi, -b.Lo)}
}

func ivalMul(a, b dataflow.Interval) dataflow.Interval {
	c := [4]int64{satMul(a.Lo, b.Lo), satMul(a.Lo, b.Hi), satMul(a.Hi, b.Lo), satMul(a.Hi, b.Hi)}
	out := dataflow.Interval{Lo: c[0], Hi: c[0]}
	for _, v := range c[1:] {
		if v < out.Lo {
			out.Lo = v
		}
		if v > out.Hi {
			out.Hi = v
		}
	}
	return out
}

func within(v, r dataflow.Interval) bool { return v.Lo >= r.Lo && v.Hi <= r.Hi }

// bodyLin symbolically executes one loop body's scalar integer
// dataflow and records the linear form of every memory instruction's
// address slot. Slots that resist linear reasoning simply map to
// lin{ok:false}; the passes decide what that means.
type bodyLin struct {
	addr map[int]lin // memory instr index -> address form
	defs map[int32]bool
	vn   map[string]int32 // invariant expression structure -> pseudo symbol
}

func analyzeBody(f *dataflow.Facts, s *loopShape) *bodyLin {
	code := f.G.Kernel.Code
	bl := &bodyLin{addr: map[int]lin{}, defs: map[int32]bool{}, vn: map[string]int32{}}
	for i := s.bs; i < s.incStart; i++ {
		if d, ok := ir.Def(&code[i]); ok && d.Bank == ir.BankI {
			for sl := d.Slot; sl < d.Slot+d.Width; sl++ {
				bl.defs[sl] = true
			}
		}
	}
	env := map[int32]lin{}
	cur := s.bs
	look := func(slot int32) lin {
		if v, ok := env[slot]; ok {
			return v
		}
		if slot == s.l.IV {
			return linIV()
		}
		if bl.defs[slot] {
			return lin{} // upward-exposed body def: loop-carried
		}
		// Invariant slots with a pinned value fold to constants, so
		// re-materialized array bases and strides never show up as
		// symbolic terms.
		if v, ok := f.IntervalBefore(cur, slot).Const(); ok {
			return linConst(v)
		}
		return linSlot(slot)
	}
	for i := s.bs; i < s.incStart; i++ {
		cur = i
		in := &code[i]
		switch in.Op {
		case ir.LoadI, ir.LoadF, ir.StoreI, ir.StoreF, ir.AtomicOp:
			bl.addr[i] = look(in.B)
		}
		d, hasDef := ir.Def(in)
		if !hasDef || d.Bank != ir.BankI {
			continue
		}
		var v lin
		if in.Width <= 1 {
			v = bl.transfer(f, i, in, look)
		}
		for sl := d.Slot; sl < d.Slot+d.Width; sl++ {
			delete(env, sl)
		}
		if in.Width <= 1 {
			env[d.Slot] = v
		}
	}
	return bl
}

func (bl *bodyLin) transfer(f *dataflow.Facts, i int, in *ir.Instr, look func(int32) lin) lin {
	// Arithmetic in a base narrower than 8 bytes wraps to that base.
	// Signed narrow overflow is undefined behavior in OpenCL C, so the
	// linear form may assume it never happens — the same license every
	// production compiler's scalar-evolution engine takes. Unsigned
	// wraparound is defined, so a linear form survives it only when
	// the interval facts prove the unwrapped result already fits.
	narrowOK := func(result dataflow.Interval) bool {
		if is64(in.Base) || in.Base.IsSigned() {
			return true
		}
		r, _ := baseIval(in.Base)
		return within(result, r)
	}
	iv := func(slot int32) dataflow.Interval { return f.IntervalBefore(i, slot) }
	switch in.Op {
	case ir.ImmI:
		return linConst(in.Imm)
	case ir.MovI:
		return look(in.B)
	case ir.CvtII:
		// Identity exactly when every incoming value fits the target
		// base unchanged (8-byte targets always do: the slot already
		// holds the canonical 64-bit value). The operand's canonical
		// value always lies in the source base's range, so narrowing
		// facts compose with whatever the interval engine knows.
		op := iv(in.B)
		if sr, snarrow := baseIval(in.Base2); snarrow {
			if sr.Lo > op.Lo {
				op.Lo = sr.Lo
			}
			if sr.Hi < op.Hi {
				op.Hi = sr.Hi
			}
		}
		if r, narrow := baseIval(in.Base); !narrow || within(op, r) {
			return look(in.B)
		}
	case ir.AddI:
		if narrowOK(ivalAdd(iv(in.B), iv(in.C))) {
			return look(in.B).add(look(in.C))
		}
	case ir.SubI:
		if narrowOK(ivalSub(iv(in.B), iv(in.C))) {
			return look(in.B).add(look(in.C).neg())
		}
	case ir.MulI:
		if !narrowOK(ivalMul(iv(in.B), iv(in.C))) {
			break
		}
		if c, ok := iv(in.C).Const(); ok {
			return look(in.B).scale(c)
		}
		if c, ok := iv(in.B).Const(); ok {
			return look(in.C).scale(c)
		}
	case ir.ShlI:
		if c, ok := iv(in.C).Const(); ok && c >= 0 && c < 62 {
			if narrowOK(ivalMul(iv(in.B), dataflow.Interval{Lo: 1 << c, Hi: 1 << c})) {
				return look(in.B).scale(1 << c)
			}
		}
	}
	// An expression the linear model cannot fold still names exactly
	// one value per loop execution when its operands are invariant
	// (wrapping included — the symbol denotes whatever the op computes,
	// it never licenses reassociation). Structurally identical
	// computations share a pseudo symbol so recomputed bases like g*n
	// stay comparable and attributable.
	switch in.Op {
	case ir.AddI, ir.SubI, ir.MulI, ir.DivI, ir.RemI, ir.AndI, ir.OrI,
		ir.XorI, ir.ShlI, ir.ShrI:
		b, c := look(in.B), look(in.C)
		if b.invariant() && c.invariant() {
			return bl.vnum(in, b, c)
		}
	case ir.NegI, ir.NotI, ir.CvtII:
		if b := look(in.B); b.invariant() {
			return bl.vnum(in, b, lin{})
		}
	}
	return lin{}
}

func (bl *bodyLin) vnum(in *ir.Instr, b, c lin) lin {
	key := fmt.Sprintf("%d|%d|%d|%v|%v", in.Op, in.Base, in.Base2, b, c)
	id, ok := bl.vn[key]
	if !ok {
		id = vnumBase + int32(len(bl.vn))
		bl.vn[key] = id
	}
	return lin{ok: true, terms: []linTerm{{slot: id, coef: 1}}}
}

// memAddrSlot returns the scalar address operand of a memory
// instruction, or -1.
func memAddrSlot(in *ir.Instr) int32 {
	switch in.Op {
	case ir.LoadI, ir.LoadF, ir.StoreI, ir.StoreF, ir.AtomicOp:
		return in.B
	}
	return -1
}

func isStoreOp(op ir.Op) bool { return op == ir.StoreI || op == ir.StoreF }
func isMemOp(op ir.Op) bool {
	return op == ir.LoadI || op == ir.LoadF || op == ir.StoreI || op == ir.StoreF || op == ir.AtomicOp
}
