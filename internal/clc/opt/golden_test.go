package opt

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"maligo/internal/clc/backend"
)

var updateGolden = flag.Bool("update", false, "rewrite the transform golden files")

// renderGolden produces the committed before/after dump for one
// corpus source: the applied-pass summary, then each kernel's irdump
// before and after the full pipeline. The irdump backend is versioned,
// so the goldens are stable across unrelated emitter work.
func renderGolden(t *testing.T, name, src string) string {
	t.Helper()
	be, _ := backend.Get("irdump")
	prog, out, rep := optimizeOne(t, src, nil)
	var b strings.Builder
	fmt.Fprintf(&b, "; transform golden for %s\n", name)
	applied := rep.AppliedPasses()
	if len(applied) == 0 {
		b.WriteString("; passes applied: (none)\n")
	} else {
		fmt.Fprintf(&b, "; passes applied: %s\n", strings.Join(applied, ", "))
	}
	for _, kn := range kernelNames(prog) {
		before, err := be.Emit(prog.Kernels[kn])
		if err != nil {
			t.Fatalf("irdump before %s: %v", kn, err)
		}
		after, err := be.Emit(out.Kernels[kn])
		if err != nil {
			t.Fatalf("irdump after %s: %v", kn, err)
		}
		fmt.Fprintf(&b, "\n== BEFORE %s ==\n%s\n== AFTER %s ==\n%s", kn, before, kn, after)
	}
	return b.String()
}

// TestGoldenCorpus locks the exact transformed IR for one exemplar
// kernel per pass (plus a refuse-everything case). Run with -update
// after an intentional codegen change; the diff in the golden file is
// the review artifact.
func TestGoldenCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.cl"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no golden corpus sources found: %v", err)
	}
	for _, f := range files {
		name := strings.TrimSuffix(filepath.Base(f), ".cl")
		t.Run(name, func(t *testing.T) {
			srcBytes, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			got := renderGolden(t, name, string(srcBytes))
			// Two independent pipeline runs must render identically
			// before a golden is written or compared: goldens may not
			// encode one lucky map ordering.
			if again := renderGolden(t, name, string(srcBytes)); again != got {
				t.Fatal("transform output is nondeterministic between identical runs")
			}
			goldenPath := strings.TrimSuffix(f, ".cl") + ".ir.golden"
			if *updateGolden {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(want, []byte(got)) {
				t.Errorf("golden mismatch for %s; run `go test ./internal/clc/opt -run TestGoldenCorpus -update` after verifying the new IR\ngot:\n%s", name, got)
			}
		})
	}
}
