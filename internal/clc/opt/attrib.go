package opt

import (
	"maligo/internal/clc/analysis/dataflow"
	"maligo/internal/clc/ast"
	"maligo/internal/clc/ir"
)

// memAttrib is the provenance of one memory instruction's address:
// the pointer parameter it derives from (or -1) and the address space
// it stays inside (or -1 when unknown). Both -1 means the access is
// unattributable and every pass must treat it as potentially touching
// anything.
type memAttrib struct {
	param int
	space int
}

func (a memAttrib) known() bool { return a.param >= 0 || a.space >= 0 }

// classifyMem attributes every reachable memory instruction. Two
// engines cooperate: the tier-2 affine facts resolve straight-line
// addresses directly, and for addresses that vary inside a recognized
// counted loop the body-linear form reduces the question to the
// affine form of the loop-invariant base at the body entry.
func classifyMem(k *ir.Kernel, f *dataflow.Facts) map[int]memAttrib {
	type bodyAddr struct {
		li lin
		bs int
	}
	inBody := map[int]bodyAddr{}
	for _, l := range f.Loops() {
		if s, _ := recognizeShape(f, l); s != nil {
			bl := analyzeBody(f, s)
			for i, li := range bl.addr { // maligo:allow maporder distinct keys fill the index map
				inBody[i] = bodyAddr{li, s.bs}
			}
		}
	}
	out := map[int]memAttrib{}
	for i := range k.Code {
		in := &k.Code[i]
		if !isMemOp(in.Op) || !f.Reachable(i) {
			continue
		}
		a := attribAffine(k, f.AffineBefore(i, in.B))
		if !a.known() {
			if ba, ok := inBody[i]; ok {
				a = attributeLin(f, k, ba.bs, ba.li)
			}
		}
		out[i] = a
	}
	return out
}

// attributeLin resolves a body-linear address form. With no symbolic
// terms the space tag sits in the constant part. Otherwise exactly
// one unit-coefficient term must resolve (via the affine facts at the
// body entry) to a pointer parameter; the remaining terms are integer
// offsets. As with every production restrict model, an address that
// launders a second buffer's pointer through integer arithmetic is
// outside the promise the qualifier makes, so one resolved pointer
// term attributes the access.
func attributeLin(f *dataflow.Facts, k *ir.Kernel, bs int, li lin) memAttrib {
	a := memAttrib{param: -1, space: -1}
	if !li.ok {
		return a
	}
	if len(li.terms) == 0 {
		sp, _ := ir.DecodeAddr(li.off)
		a.space = sp
		return a
	}
	n := 0
	for _, t := range li.terms {
		if t.coef != 1 || t.slot >= vnumBase {
			continue
		}
		if ta := attribAffine(k, f.AffineBefore(bs, t.slot)); ta.param >= 0 {
			n++
			a = ta
		}
	}
	if n != 1 {
		return memAttrib{param: -1, space: -1}
	}
	return a
}

// attribAffine resolves one affine address form: constant-rooted
// forms carry their space in the tag bits, and single-symbol forms
// with coefficient 1 attribute to a pointer parameter.
func attribAffine(k *ir.Kernel, af dataflow.Affine) memAttrib {
	a := memAttrib{param: -1, space: -1}
	if !af.OK {
		return a
	}
	switch af.SymC {
	case 0:
		sp, _ := ir.DecodeAddr(af.C)
		a.space = sp
	case 1:
		for pi := range k.Params {
			p := &k.Params[pi]
			if p.Slot != af.Sym {
				continue
			}
			switch p.Class {
			case ir.ParamGlobalPtr:
				a.param = pi
				if p.Space == ast.ConstantSpace {
					a.space = ir.SpaceConstant
				} else {
					a.space = ir.SpaceGlobal
				}
			case ir.ParamLocalPtr:
				a.param = pi
				a.space = ir.SpaceLocal
			}
		}
	}
	return a
}
