package opt

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"maligo/internal/clc"
	"maligo/internal/clc/ir"
	"maligo/internal/vm"
)

// flatMem is a trivial GlobalMemory over byte slices per space,
// mirroring the VM test harness: enough surface for the engines, no
// device model in the way.
type flatMem struct {
	global   []byte
	constant []byte
}

func (m *flatMem) space(s int) []byte {
	if s == ir.SpaceConstant {
		return m.constant
	}
	return m.global
}

func (m *flatMem) LoadBits(space int, off int64, size int) (uint64, error) {
	mem := m.space(space)
	if off < 0 || off+int64(size) > int64(len(mem)) {
		return 0, fmt.Errorf("load out of bounds: space=%d off=%d size=%d", space, off, size)
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(mem[off+int64(i)])
	}
	return v, nil
}

func (m *flatMem) StoreBits(space int, off int64, size int, bits uint64) error {
	mem := m.space(space)
	if off < 0 || off+int64(size) > int64(len(mem)) {
		return fmt.Errorf("store out of bounds: space=%d off=%d size=%d", space, off, size)
	}
	for i := 0; i < size; i++ {
		mem[off+int64(i)] = byte(bits >> (8 * uint(i)))
	}
	return nil
}

func (m *flatMem) AtomicRMW(space int, off int64, size int, fn func(uint64) uint64) (uint64, error) {
	old, err := m.LoadBits(space, off, size)
	if err != nil {
		return 0, err
	}
	return old, m.StoreBits(space, off, size, fn(old))
}

// fillDeterministic writes an LCG byte stream whose bytes stay below
// 0x40, so any float32/float64 reinterpretation is finite (exponent
// never saturates) and engine comparisons never hinge on NaN payload
// propagation.
func fillDeterministic(b []byte, seed uint64) {
	x := seed*6364136223846793005 + 1442695040888963407
	for i := range b {
		x = x*6364136223846793005 + 1442695040888963407
		b[i] = byte(x>>33) & 0x3f
	}
}

func mustCompile(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := clc.Compile("opt_test.cl", src, "")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

// autoArgs binds every kernel parameter mechanically: each global or
// constant pointer gets its own 64-byte-aligned window in the arena
// (distinct buffers, honoring the host no-alias contract the passes
// assume), integer scalars get scalarVal, float scalars 1.5, and
// __local pointer args 256 bytes.
func autoArgs(k *ir.Kernel, arenaBytes int, scalarVal int64) ([]vm.ArgValue, int) {
	args := make([]vm.ArgValue, len(k.Params))
	nptr := 0
	for _, p := range k.Params {
		if p.Class == ir.ParamGlobalPtr {
			nptr++
		}
	}
	per := 0
	if nptr > 0 {
		per = arenaBytes / nptr / 64 * 64
	}
	off := int64(0)
	for i, p := range k.Params {
		switch p.Class {
		case ir.ParamGlobalPtr:
			// __constant pointer args get a global-tagged window too:
			// the engines route accesses by the address tag, and the
			// harness keeps one arena.
			args[i] = vm.ArgValue{Bits: ir.EncodeAddr(ir.SpaceGlobal, off)}
			off += int64(per)
		case ir.ParamLocalPtr:
			args[i] = vm.ArgValue{LocalSize: 256}
		case ir.ParamScalarF:
			args[i] = vm.ArgValue{F: 1.5}
		default:
			args[i] = vm.ArgValue{Bits: scalarVal}
		}
	}
	return args, per
}

// runKernel executes a 1-D NDRange and returns the final global
// arena. A nil error means every group completed.
func runKernel(k *ir.Kernel, args []vm.ArgValue, global, local, arenaBytes int, seed uint64, eng vm.Engine, stepLimit uint64) ([]byte, error) {
	mem := &flatMem{global: make([]byte, arenaBytes)}
	fillDeterministic(mem.global, seed)
	prof := &vm.Profile{}
	for g := 0; g < (global+local-1)/local; g++ {
		cfg := &vm.GroupConfig{
			Kernel:     k,
			WorkDim:    1,
			GroupID:    [3]int{g, 0, 0},
			LocalSize:  [3]int{local, 1, 1},
			GlobalSize: [3]int{global, 1, 1},
			Args:       args,
			Mem:        mem,
			Engine:     eng,
			StepLimit:  stepLimit,
		}
		if err := vm.RunGroup(cfg, prof); err != nil {
			return nil, err
		}
	}
	return mem.global, nil
}

const (
	diffArena     = 1 << 12
	diffStepLimit = 1 << 22
)

var allEngines = []struct {
	name string
	eng  vm.Engine
}{
	{"interp", vm.EngineInterp},
	{"compiled", vm.EngineCompiled},
	{"lanes", vm.EngineLanes},
}

// checkEquivalence is the differential contract: the reference
// interpreter on the UNTRANSFORMED kernel is the oracle; the
// transformed kernel must reproduce its final memory image
// bit-for-bit on all three engines. If the oracle faults, the
// transformed kernel must fault too (messages may differ). The
// transformed kernel gets a larger step budget: address fixups and
// remainder loops add instructions without changing results.
func checkEquivalence(t *testing.T, orig, xform *ir.Kernel, global, local int, scalarVal int64, seed uint64) {
	t.Helper()
	args, _ := autoArgs(orig, diffArena, scalarVal)
	want, oracleErr := runKernel(orig, args, global, local, diffArena, seed, vm.EngineInterp, diffStepLimit)
	for _, e := range allEngines {
		got, err := runKernel(xform, args, global, local, diffArena, seed, e.eng, 4*diffStepLimit+1024)
		if oracleErr != nil {
			if err == nil {
				t.Errorf("%s: oracle faulted (%v) but transformed kernel succeeded", e.name, oracleErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: transformed kernel faulted: %v", e.name, err)
			continue
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s: transformed kernel diverges from interpreter oracle at %s", e.name, firstDiff(want, got))
		}
	}
}

func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("byte %d (%#02x vs %#02x)", i, a[i], b[i])
		}
	}
	return fmt.Sprintf("length %d vs %d", len(a), len(b))
}

// optimizeOne compiles src, applies the selected passes to every
// kernel, and returns the original program, the transformed program
// and the report.
func optimizeOne(t *testing.T, src string, only []string) (*ir.Program, *ir.Program, *Report) {
	t.Helper()
	prog := mustCompile(t, src)
	out, rep, err := OptimizeWith(prog, only)
	if err != nil {
		t.Fatalf("OptimizeWith: %v", err)
	}
	return prog, out, rep
}

func kernelNames(p *ir.Program) []string {
	var names []string
	for n := range p.Kernels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
