// Package opt is the IR-to-IR transform engine: it applies the source
// paper's Section V optimization techniques automatically, where the
// analyzer (internal/clc/analysis) only detects them.
//
// Each transform pass consumes the tier-2 dataflow facts
// (internal/clc/analysis/dataflow) recomputed fresh on the current
// kernel, rewrites the kernel in place when its soundness conditions
// hold, and records an applicability Result either way — including
// the reason it refused, keyed to the analyzer pass whose diagnostic
// it answers. The pipeline order is fixed: qualifier promotion runs
// first so the vectorizer can rely on promoted restrict facts, the
// SoA relayout runs before vectorization so rewritten address chains
// are re-analyzed, and unrolling runs last on whatever loops remain.
//
// The correctness contract is absolute: a transformed kernel must
// produce bit-identical results to the untransformed kernel on every
// VM engine. Passes therefore refuse whenever a soundness condition
// cannot be *proved* from the dataflow facts; the differential suite
// and FuzzTransformEquivalence enforce the contract with the
// interpreter on untransformed IR as the oracle.
package opt

import (
	"fmt"
	"sort"
	"strings"

	"maligo/internal/clc/analysis/dataflow"
	"maligo/internal/clc/ir"
)

// Result is one pass's applicability report for one kernel. Applied
// passes record how many code sites they rewrote; refusals record
// why, so `clc -optimize` output reads as the transform-side answer
// to the analyzer's diagnostics.
type Result struct {
	Pass    string   `json:"pass"`
	Answers []string `json:"answers"` // analyzer passes this transform acts on
	Kernel  string   `json:"kernel"`
	Applied bool     `json:"applied"`
	Sites   int      `json:"sites"`
	Notes   []string `json:"notes,omitempty"`
}

// Report aggregates the per-kernel, per-pass results of one Optimize
// run over a program.
type Report struct {
	Results []Result `json:"results"`
}

// Applied reports whether any pass changed any kernel.
func (r *Report) Applied() bool {
	for _, res := range r.Results {
		if res.Applied {
			return true
		}
	}
	return false
}

// AppliedPasses returns the distinct applied pass names in pipeline
// order.
func (r *Report) AppliedPasses() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range passes {
		for _, res := range r.Results {
			if res.Applied && res.Pass == p.Name && !seen[p.Name] {
				seen[p.Name] = true
				out = append(out, p.Name)
			}
		}
	}
	return out
}

// ChangedKernels returns the names of kernels any pass rewrote,
// sorted.
func (r *Report) ChangedKernels() []string {
	seen := map[string]bool{}
	for _, res := range r.Results {
		if res.Applied {
			seen[res.Kernel] = true
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen { // maligo:allow maporder sorted on the next line
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders the report in the single-line-per-result form used
// by `clc -optimize`.
func (r *Report) String() string {
	var b strings.Builder
	for _, res := range r.Results {
		verdict := "refused"
		if res.Applied {
			verdict = fmt.Sprintf("applied (%d sites)", res.Sites)
		}
		fmt.Fprintf(&b, "%s: [%s] %s", res.Kernel, res.Pass, verdict)
		if len(res.Notes) > 0 {
			fmt.Fprintf(&b, ": %s", strings.Join(res.Notes, "; "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// passCtx is the per-pass view of one kernel. Facts are recomputed
// fresh for every pass so later passes see earlier rewrites.
type passCtx struct {
	k     *ir.Kernel
	facts *dataflow.Facts
	notes []string
	sites int
}

func (c *passCtx) note(format string, args ...any) {
	c.notes = append(c.notes, fmt.Sprintf(format, args...))
}

// Pass is one registered transform.
type Pass struct {
	Name    string
	Doc     string
	Answers []string // analyzer pass names whose findings this transform applies

	run func(c *passCtx) bool // true when the kernel was changed
}

// passes is the registry in pipeline order. Qualifier promotion runs
// first (the vectorizer's aliasing rules trust promoted restrict),
// SoA before vectorize (relayout rewrites address chains the
// vectorizer then re-analyzes), unroll last.
var passes = []Pass{
	{
		Name:    "constrestrict",
		Doc:     "promote const/restrict on __global pointer params the dataflow proves unwritten/unaliased (§V-D)",
		Answers: []string{"constparam", "restrictparam"},
		run:     runConstRestrict,
	},
	{
		Name:    "soa",
		Doc:     "relayout in-kernel AoS scratch arrays to SoA when every access is provably decomposable (§V-C)",
		Answers: []string{"soa"},
		run:     runSoA,
	},
	{
		Name:    "vectorize",
		Doc:     "widen unit-stride scalar loops to 4 lanes with a scalar remainder loop (§V-B)",
		Answers: []string{"vectorize"},
		run:     runVectorize,
	},
	{
		Name:    "unroll",
		Doc:     "fully unroll short constant-trip loops inside the register budget (§V-E)",
		Answers: []string{"unroll", "regbudget"},
		run:     runUnroll,
	},
}

// Passes returns the registry in pipeline order.
func Passes() []Pass { return append([]Pass(nil), passes...) }

// PassNames returns the registered pass names in pipeline order.
func PassNames() []string {
	names := make([]string, len(passes))
	for i, p := range passes {
		names[i] = p.Name
	}
	return names
}

func selectPasses(only []string) ([]Pass, error) {
	if only == nil {
		return passes, nil
	}
	want := map[string]bool{}
	for _, n := range only {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		found := false
		for _, p := range passes {
			if p.Name == n {
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("opt: unknown pass %q (have %s)", n, strings.Join(PassNames(), ", "))
		}
		want[n] = true
	}
	var sel []Pass
	for _, p := range passes {
		if want[p.Name] {
			sel = append(sel, p)
		}
	}
	return sel, nil
}

// Optimize runs the full pipeline over every kernel of p. The input
// program is never mutated: changed kernels are deep-cloned first,
// and when no pass applies the original *ir.Program is returned
// unchanged (pointer-identical).
func Optimize(p *ir.Program) (*ir.Program, *Report) {
	out, rep, err := OptimizeWith(p, nil)
	if err != nil { // unreachable: nil selects every pass
		panic(err)
	}
	return out, rep
}

// OptimizeWith runs only the named passes (nil means all) over every
// kernel of p, in pipeline order regardless of the order names are
// given in.
func OptimizeWith(p *ir.Program, only []string) (*ir.Program, *Report, error) {
	sel, err := selectPasses(only)
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{}
	changed := map[string]*ir.Kernel{}
	for _, name := range sortedKernelNames(p) {
		k2, results := optimizeKernel(p.Kernels[name], sel)
		rep.Results = append(rep.Results, results...)
		if k2 != p.Kernels[name] {
			changed[name] = k2
		}
	}
	if len(changed) == 0 {
		return p, rep, nil
	}
	out := &ir.Program{
		Kernels:      make(map[string]*ir.Kernel, len(p.Kernels)),
		ConstantData: p.ConstantData,
		Source:       p.Source,
	}
	for name, k := range p.Kernels { // maligo:allow maporder distinct keys fill the output map
		if k2, ok := changed[name]; ok {
			out.Kernels[name] = k2
		} else {
			out.Kernels[name] = k
		}
	}
	return out, rep, nil
}

// OptimizeKernel runs the named passes (nil means all) over a single
// kernel. The input kernel is never mutated; when no pass applies the
// original pointer is returned.
func OptimizeKernel(k *ir.Kernel, only []string) (*ir.Kernel, []Result, error) {
	sel, err := selectPasses(only)
	if err != nil {
		return nil, nil, err
	}
	k2, results := optimizeKernel(k, sel)
	return k2, results, nil
}

func optimizeKernel(k *ir.Kernel, sel []Pass) (*ir.Kernel, []Result) {
	work := cloneKernel(k)
	var results []Result
	any := false
	for _, p := range sel {
		c := &passCtx{k: work, facts: dataflow.Analyze(work)}
		applied := p.run(c)
		any = any || applied
		results = append(results, Result{
			Pass:    p.Name,
			Answers: append([]string(nil), p.Answers...),
			Kernel:  k.Name,
			Applied: applied,
			Sites:   c.sites,
			Notes:   c.notes,
		})
	}
	if !any {
		return k, results
	}
	// Canonicalize the rewritten kernel with the same fold+DCE pass
	// lowering runs, so transformed IR meets every invariant the
	// execution engines assume.
	ir.Optimize(work)
	return work, results
}

func sortedKernelNames(p *ir.Program) []string {
	names := make([]string, 0, len(p.Kernels))
	for n := range p.Kernels { // maligo:allow maporder sorted on the next line
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
