package opt

import (
	"sort"

	"maligo/internal/clc/analysis/dataflow"
	"maligo/internal/clc/ir"
	"maligo/internal/clc/types"
)

// vf is the vectorization factor: the paper's §V-B widens to the
// Mali-T604's natural 128-bit vec4 shape.
const vf = 4

// runVectorize rewrites eligible counted scalar loops into a 4-lane
// main loop plus the original loop as a scalar remainder:
//
//	pre:  header consts, lane offsets, loop-invariant broadcasts
//	vh:   ivl = (long)iv; vt = ivl + 3*step; if !(vt < bound) goto sh
//	vb:   ivv = [iv, iv+step, iv+2*step, iv+3*step]
//	      ...body, every scalar op widened to 4 lanes...
//	      iv += 4*step; goto vh
//	sh:   the untouched scalar loop, running the remainder
//
// The 4-ahead bound check runs in 64-bit arithmetic, so it is exact
// for any iv base up to 32 bits regardless of runtime bounds, and the
// scalar remainder reproduces the original loop bit-for-bit for the
// tail iterations. Every widened lane computes exactly the value the
// corresponding scalar iteration computed — including wraparound,
// because Long/ULong address chains are exact mod 2^64 and narrower
// chains are only accepted when the interval facts prove they cannot
// wrap. Memory safety demands unit-stride stores, unit-stride or
// loop-invariant loads, and a proof for every store/access pair:
// identical address stream, distinct restrict-qualified buffers, or
// distinct address spaces.
func runVectorize(c *passCtx) bool {
	f := c.facts

	var shapes []*loopShape
	for _, l := range f.Loops() {
		s, why := recognizeShape(f, l)
		if s == nil {
			c.note("loop at %d: %s", l.Header, why)
			continue
		}
		shapes = append(shapes, s)
	}
	// Back-to-front so earlier shapes' indexes survive rewrites.
	sort.Slice(shapes, func(i, j int) bool { return shapes[i].hs > shapes[j].hs })

	applied := false
	for _, s := range shapes {
		if why := vectorizeLoop(c, f, s); why != "" {
			c.note("loop at %d: %s", s.hs, why)
		} else {
			c.sites++
			applied = true
			c.note("loop at %d: vectorized to %d lanes with scalar remainder", s.hs, vf)
			// The rewrite grew the code, so the def-use graph and the
			// interval facts are stale. Earlier shapes' indexes are
			// still valid (rewrites only touch later code), but their
			// soundness checks must run against fresh facts.
			f = dataflow.Analyze(c.k)
		}
	}
	return applied
}

// memKind classifies one body memory access for widening.
type memKind int

const (
	memWide  memKind = iota // unit stride: one wide op
	memSplat                // loop-invariant address: scalar load + broadcast
)

func vectorizeLoop(c *passCtx, f *dataflow.Facts, s *loopShape) (refuse string) {
	k := c.k
	code := k.Code
	du := f.DefUse()
	step := s.l.Step
	ivBase := code[s.cmpAt].Base
	// The 4-ahead guard computes in 64-bit space, which is exact only
	// when the induction base is at most 32 bits; the lane offsets
	// (up to 4*step) must also be representable in that base.
	if r, narrow := baseIval(ivBase); !narrow || int64(vf)*step > r.Hi {
		return "induction base unsupported (wider than 32 bits, or lane offsets overflow it)"
	}

	// --- eligibility -----------------------------------------------------

	defsI, defsF := map[int32]bool{}, map[int32]bool{}
	for i := s.bs; i < s.incStart; i++ {
		in := &code[i]
		switch in.Op {
		case ir.MovI, ir.MovF, ir.ImmI, ir.ImmF, ir.BcastI, ir.BcastF,
			ir.AddI, ir.SubI, ir.MulI, ir.DivI, ir.RemI, ir.AndI, ir.OrI, ir.XorI,
			ir.ShlI, ir.ShrI, ir.NegI, ir.NotI,
			ir.AddF, ir.SubF, ir.MulF, ir.DivF, ir.NegF,
			ir.CmpEqI, ir.CmpNeI, ir.CmpLtI, ir.CmpLeI,
			ir.CmpEqF, ir.CmpNeF, ir.CmpLtF, ir.CmpLeF,
			ir.SelI, ir.SelF, ir.CvtII, ir.CvtIF, ir.CvtFI, ir.CvtFF,
			ir.LoadI, ir.LoadF, ir.StoreI, ir.StoreF:
		default:
			return "body contains a call, atomic, barrier or branch"
		}
		if in.Width > 1 {
			return "body already operates on vectors"
		}
		if d, ok := ir.Def(&code[i]); ok {
			if d.Bank == ir.BankI {
				defsI[d.Slot] = true
			} else {
				defsF[d.Slot] = true
			}
			if d.Bank == ir.BankI && d.Slot == s.l.IV {
				return "body redefines the induction variable"
			}
		}
	}

	// No loop-carried scalar dependences: a read of a body-defined
	// slot before its definition carries a value across iterations
	// (the float-reduction pattern) and cannot widen bit-identically.
	seenI, seenF := map[int32]bool{}, map[int32]bool{}
	carried := false
	for i := s.bs; i < s.incStart; i++ {
		ir.Uses(&code[i], func(r ir.RegRef) {
			for sl := r.Slot; sl < r.Slot+r.Width; sl++ {
				if r.Bank == ir.BankI && defsI[sl] && !seenI[sl] {
					carried = true
				}
				if r.Bank == ir.BankF && defsF[sl] && !seenF[sl] {
					carried = true
				}
			}
		})
		if d, ok := ir.Def(&code[i]); ok {
			for sl := d.Slot; sl < d.Slot+d.Width; sl++ {
				if d.Bank == ir.BankI {
					seenI[sl] = true
				} else {
					seenF[sl] = true
				}
			}
		}
	}
	if carried {
		return "loop-carried dependence (reduction-style accumulation)"
	}

	// Body-defined values must die inside the body: the widened loop
	// computes them in fresh wide registers, and when the remainder
	// runs zero iterations the original slots would go stale.
	for i := s.bs; i < s.incStart; i++ {
		if _, ok := ir.Def(&code[i]); !ok {
			continue
		}
		for _, u := range du.UsesOf(i) {
			if u < s.bs || u >= s.incStart {
				return "a body-computed value is used outside the loop body"
			}
		}
	}
	// Increment-chain temporaries stay loop-control-local (the wide
	// loop replaces the whole chain with one add).
	for d := s.incStart; d < s.be-1; d++ {
		dr, ok := ir.Def(&code[d])
		if !ok || (dr.Bank == ir.BankI && dr.Slot == s.l.IV && dr.Width == 1) {
			continue
		}
		for _, u := range du.UsesOf(d) {
			if u < s.incStart || u >= s.be-1 {
				return "loop-control temporaries escape the loop"
			}
		}
	}

	// --- memory discipline -----------------------------------------------

	bl := analyzeBody(f, s)
	kinds := map[int]memKind{}
	type memSite struct {
		instr int
		write bool
		li    lin
	}
	var sites []memSite
	for i := s.bs; i < s.incStart; i++ {
		in := &code[i]
		if !isMemOp(in.Op) {
			continue
		}
		li := bl.addr[i]
		es := int64(in.Base.Size())
		write := isStoreOp(in.Op)
		switch {
		case li.ok && li.coef*step == es:
			kinds[i] = memWide
		case li.ok && li.coef == 0 && !write:
			kinds[i] = memSplat
		case write:
			return "store is not unit-stride"
		default:
			return "load is neither unit-stride nor loop-invariant"
		}
		sites = append(sites, memSite{instr: i, write: write, li: li})
	}
	for _, st := range sites {
		if !st.write {
			continue
		}
		for _, m := range sites {
			if m.instr == st.instr {
				continue
			}
			if ok, why := disjointOrSame(f, k, s, st.li, m.li); !ok {
				return why
			}
		}
	}

	// --- lane demand -------------------------------------------------------
	//
	// Address chains stay scalar: a wide unit-stride memory op takes
	// lane 0's address and strides by the element size itself, so the
	// instructions that only ever feed memory-op address operands keep
	// computing the scalar (lane 0) address. Only defs whose values
	// flow into widened computation or stored data need vf lanes; this
	// is what keeps the widened register footprint inside the T604
	// budget for real kernels.
	needWide := map[int]bool{}
	for i := s.bs; i < s.incStart; i++ {
		if isMemOp(code[i].Op) {
			continue
		}
		if _, ok := ir.Def(&code[i]); !ok {
			return "body instruction computes nothing and is not a memory access"
		}
	}
	for {
		changed := false
		wideSlot := map[ir.RegRef]bool{}
		markWide := func(i int) {
			if d, ok := ir.Def(&code[i]); ok {
				wideSlot[ir.RegRef{Bank: d.Bank, Slot: d.Slot, Width: 1}] = true
			}
		}
		for i := s.bs; i < s.incStart; i++ {
			if isMemOp(code[i].Op) || needWide[i] {
				markWide(i)
			}
		}
		for i := s.incStart - 1; i >= s.bs; i-- {
			in := &code[i]
			if isMemOp(in.Op) || needWide[i] {
				continue
			}
			d, _ := ir.Def(in)
			wide := false
			for _, u := range du.UsesOf(i) {
				if u < s.bs || u >= s.incStart {
					continue
				}
				ui := &code[u]
				if isMemOp(ui.Op) {
					valBank := ir.BankI
					if ui.Op == ir.StoreF {
						valBank = ir.BankF
					}
					if isStoreOp(ui.Op) && ui.A == d.Slot && d.Bank == valBank {
						wide = true
					}
					continue
				}
				if needWide[u] {
					wide = true
				}
			}
			// A slot must be all-scalar or all-wide across its body
			// defs, or wide readers would see the wrong register run.
			if wideSlot[ir.RegRef{Bank: d.Bank, Slot: d.Slot, Width: 1}] {
				wide = true
			}
			// Reading a slot whose body defs went wide forces this
			// instruction wide too: slot reuse means the scalar value
			// it wants is no longer computed anywhere.
			ir.Uses(in, func(r ir.RegRef) {
				for sl := r.Slot; sl < r.Slot+r.Width; sl++ {
					if wideSlot[ir.RegRef{Bank: r.Bank, Slot: sl, Width: 1}] {
						wide = true
					}
				}
			})
			if wide && !needWide[i] {
				needWide[i] = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	wideDef := map[ir.RegRef]bool{}
	for i := s.bs; i < s.incStart; i++ {
		if isMemOp(code[i].Op) && isStoreOp(code[i].Op) {
			continue
		}
		if isMemOp(code[i].Op) || needWide[i] {
			if d, ok := ir.Def(&code[i]); ok {
				wideDef[ir.RegRef{Bank: d.Bank, Slot: d.Slot, Width: 1}] = true
			}
		}
	}

	// --- widening plan ----------------------------------------------------

	newI, newF := int32(k.NumI), int32(k.NumF)
	addBytes := 0
	allocI := func(n int32, elem int) int32 {
		sl := newI
		newI += n
		addBytes += int(n) * elem
		return sl
	}
	allocF := func(n int32, elem int) int32 {
		sl := newF
		newF += n
		addBytes += int(n) * elem
		return sl
	}
	ivSize := ivBase.Size()
	laneOff := allocI(vf, ivSize)
	c4 := allocI(1, ivSize)
	c3L := allocI(1, 8)
	ivl := allocI(1, 8)
	bL := allocI(1, 8)
	vt := allocI(1, 8)
	vc := allocI(1, 8)
	ivv := allocI(vf, ivSize)

	wideI, wideF := map[int32]int32{}, map[int32]int32{}
	bcI, bcF := map[int32]int32{}, map[int32]int32{}
	var bcOrderI, bcOrderF []int32
	mapI := func(slot int32, elem int) int32 {
		if slot == s.l.IV {
			return ivv
		}
		if wideDef[ir.RegRef{Bank: ir.BankI, Slot: slot, Width: 1}] {
			w, ok := wideI[slot]
			if !ok {
				w = allocI(vf, elem)
				wideI[slot] = w
			}
			return w
		}
		w, ok := bcI[slot]
		if !ok {
			w = allocI(vf, elem)
			bcI[slot] = w
			bcOrderI = append(bcOrderI, slot)
		}
		return w
	}
	mapF := func(slot int32, elem int) int32 {
		if wideDef[ir.RegRef{Bank: ir.BankF, Slot: slot, Width: 1}] {
			w, ok := wideF[slot]
			if !ok {
				w = allocF(vf, elem)
				wideF[slot] = w
			}
			return w
		}
		w, ok := bcF[slot]
		if !ok {
			w = allocF(vf, elem)
			bcF[slot] = w
			bcOrderF = append(bcOrderF, slot)
		}
		return w
	}
	// Address operands stay scalar (the wide op strides from lane 0's
	// address itself). The scalar iv and the verbatim scalar-slice body
	// instructions hold exactly the lane 0 values; a slot whose def was
	// widened reads lane 0 of its wide run instead.
	mapAddr := func(slot int32) int32 {
		if slot == s.l.IV {
			return slot
		}
		if wideDef[ir.RegRef{Bank: ir.BankI, Slot: slot, Width: 1}] {
			return mapI(slot, 8)
		}
		return slot
	}

	// widen rewrites one scalar body instruction into its wide form,
	// allocating wide registers on first touch. Called once in
	// planning mode (emit=nil counts instructions) and once for real.
	widen := func(in ir.Instr, emit func(ir.Instr)) int {
		elem := in.Base.Size()
		if elem == 0 {
			elem = 8
		}
		n := 1
		out := in
		out.Width = vf
		switch in.Op {
		case ir.ImmI, ir.ImmF:
			// broadcast immediate: dest wide, no operands
		case ir.BcastI: // scalar bcast is a move
			out.Op = ir.MovI
			out.B = mapI(in.B, elem)
		case ir.BcastF:
			out.Op = ir.MovF
			out.B = mapF(in.B, elem)
		case ir.MovI, ir.NegI, ir.NotI, ir.CvtII:
			out.B = mapI(in.B, elem)
		case ir.MovF, ir.NegF, ir.CvtFF:
			out.B = mapF(in.B, elem)
		case ir.CvtIF:
			out.B = mapI(in.B, 8)
		case ir.CvtFI:
			out.B = mapF(in.B, 8)
		case ir.AddI, ir.SubI, ir.MulI, ir.DivI, ir.RemI, ir.AndI, ir.OrI, ir.XorI,
			ir.ShlI, ir.ShrI, ir.CmpEqI, ir.CmpNeI, ir.CmpLtI, ir.CmpLeI:
			out.B = mapI(in.B, elem)
			out.C = mapI(in.C, elem)
		case ir.AddF, ir.SubF, ir.MulF, ir.DivF, ir.CmpEqF, ir.CmpNeF, ir.CmpLtF, ir.CmpLeF:
			out.B = mapF(in.B, elem)
			out.C = mapF(in.C, elem)
		case ir.SelI:
			out.B = mapI(in.B, 8)
			out.C = mapI(in.C, elem)
			out.D = mapI(in.D, elem)
		case ir.SelF:
			out.B = mapI(in.B, 8)
			out.C = mapF(in.C, elem)
			out.D = mapF(in.D, elem)
		case ir.LoadI, ir.LoadF:
			// dest handled below; address stays scalar
			out.B = mapAddr(in.B)
		case ir.StoreI:
			out.A = mapI(in.A, elem)
			out.B = mapAddr(in.B)
		case ir.StoreF:
			out.A = mapF(in.A, elem)
			out.B = mapAddr(in.B)
		}
		if d, ok := ir.Def(&in); ok {
			if d.Bank == ir.BankI {
				out.A = mapI(in.A, elem)
			} else {
				out.A = mapF(in.A, elem)
			}
		}
		if emit != nil {
			emit(out)
		}
		return n
	}

	// Planning pass: walk the body once to fix every wide/broadcast
	// slot assignment and count emitted instructions.
	vbWork := 0
	for i := s.bs; i < s.incStart; i++ {
		in := code[i]
		if !isMemOp(in.Op) && !needWide[i] {
			vbWork++ // scalar slice: emitted verbatim
			continue
		}
		if isMemOp(in.Op) && kinds[i] == memSplat {
			mapAddr(in.B)
			elem := in.Base.Size()
			if in.Op == ir.LoadI {
				mapI(in.A, elem)
			} else {
				mapF(in.A, elem)
			}
			vbWork += 2
			continue
		}
		vbWork += widen(in, nil)
	}

	if k.RegBytes > 0 && overBudget(k.RegBytes+addBytes) {
		return "register budget exceeded after widening"
	}

	// --- layout -----------------------------------------------------------

	preLen := len(s.headConsts) + vf + 3 + len(bcOrderI) + len(bcOrderF)
	vhLen := 4
	vbLen := 2 + vbWork + 2
	segLen := preLen + vhLen + vbLen + (s.be - s.hs)
	vhStart := s.hs + preLen
	vbStart := vhStart + vhLen
	shStart := vbStart + vbLen
	delta := segLen - (s.be - s.hs)

	seg := make([]ir.Instr, 0, segLen)
	emit := func(in ir.Instr) { seg = append(seg, in) }

	// Preamble.
	for _, hc := range s.headConsts {
		emit(code[hc])
	}
	for l := int32(0); l < vf; l++ {
		emit(ir.Instr{Op: ir.ImmI, A: laneOff + l, Imm: int64(l) * step, Width: 1, Base: ivBase})
	}
	emit(ir.Instr{Op: ir.ImmI, A: c4, Imm: int64(vf) * step, Width: 1, Base: ivBase})
	emit(ir.Instr{Op: ir.ImmI, A: c3L, Imm: int64(vf-1) * step, Width: 1, Base: types.Long})
	emit(ir.Instr{Op: ir.CvtII, A: bL, B: s.l.BoundSlot, Width: 1, Base: types.Long, Base2: ivBase})
	for _, sl := range bcOrderI {
		emit(ir.Instr{Op: ir.BcastI, A: bcI[sl], B: sl, Width: vf, Base: types.Long})
	}
	for _, sl := range bcOrderF {
		emit(ir.Instr{Op: ir.BcastF, A: bcF[sl], B: sl, Width: vf, Base: types.Double})
	}

	// Vector header: exact 4-ahead bound check in 64-bit space.
	emit(ir.Instr{Op: ir.CvtII, A: ivl, B: s.l.IV, Width: 1, Base: types.Long, Base2: ivBase})
	emit(ir.Instr{Op: ir.AddI, A: vt, B: ivl, C: c3L, Width: 1, Base: types.Long})
	emit(ir.Instr{Op: s.l.CmpOp, A: vc, B: vt, C: bL, Width: 1, Base: types.Long})
	emit(ir.Instr{Op: ir.JmpIfZ, B: vc, Imm: int64(shStart), Width: 1})

	// Vector body.
	emit(ir.Instr{Op: ir.BcastI, A: ivv, B: s.l.IV, Width: vf, Base: ivBase})
	emit(ir.Instr{Op: ir.AddI, A: ivv, B: ivv, C: laneOff, Width: vf, Base: ivBase})
	for i := s.bs; i < s.incStart; i++ {
		in := code[i]
		if !isMemOp(in.Op) && !needWide[i] {
			emit(in)
			continue
		}
		if isMemOp(in.Op) && kinds[i] == memSplat {
			elem := in.Base.Size()
			addr := mapAddr(in.B)
			if in.Op == ir.LoadI {
				w := mapI(in.A, elem)
				emit(ir.Instr{Op: ir.LoadI, A: w, B: addr, Width: 1, Base: in.Base, Pos: in.Pos})
				emit(ir.Instr{Op: ir.BcastI, A: w, B: w, Width: vf, Base: in.Base, Pos: in.Pos})
			} else {
				w := mapF(in.A, elem)
				emit(ir.Instr{Op: ir.LoadF, A: w, B: addr, Width: 1, Base: in.Base, Pos: in.Pos})
				emit(ir.Instr{Op: ir.BcastF, A: w, B: w, Width: vf, Base: in.Base, Pos: in.Pos})
			}
			continue
		}
		widen(in, emit)
	}
	emit(ir.Instr{Op: ir.AddI, A: s.l.IV, B: s.l.IV, C: c4, Width: 1, Base: ivBase})
	emit(ir.Instr{Op: ir.Jmp, Imm: int64(vhStart), Width: 1})

	// Scalar remainder: the original loop, back jump retargeted.
	for i := s.hs; i < s.be; i++ {
		in := code[i]
		switch in.Op {
		case ir.Jmp, ir.JmpIf, ir.JmpIfZ:
			switch {
			case in.Imm == int64(s.hs):
				in.Imm = int64(shStart)
			case in.Imm >= int64(s.be):
				in.Imm += int64(delta)
			}
		}
		emit(in)
	}
	if len(seg) != segLen {
		// Layout accounting must match emission exactly; a mismatch
		// would scramble every branch target in the kernel.
		panic("opt: vectorize segment length mismatch")
	}

	out := make([]ir.Instr, 0, len(code)+delta)
	out = append(out, code[:s.hs]...)
	out = append(out, seg...)
	out = append(out, code[s.be:]...)
	remapJumps(out, s.hs, s.be, segLen)
	k.Code = out
	k.NumI, k.NumF = int(newI), int(newF)
	if k.RegBytes > 0 {
		k.RegBytes += addBytes
	}
	if k.MaxVectorWidth < vf {
		k.MaxVectorWidth = vf
	}
	return ""
}

// disjointOrSame proves one store/access pair safe to widen: the two
// address streams are identical, or they live in provably disjoint
// memory (distinct restrict-qualified buffers, or distinct address
// spaces).
func disjointOrSame(f *dataflow.Facts, k *ir.Kernel, s *loopShape, a, b lin) (bool, string) {
	if !a.ok || !b.ok {
		return false, "store aliasing unresolved (address not linear in the induction variable)"
	}
	if a.eq(b) {
		return true, ""
	}
	aa := attributeLin(f, k, s.bs, a)
	ab := attributeLin(f, k, s.bs, b)
	if aa.param >= 0 && ab.param >= 0 && aa.param != ab.param &&
		k.Params[aa.param].Type != nil && k.Params[aa.param].Type.Restrict &&
		k.Params[ab.param].Type != nil && k.Params[ab.param].Type.Restrict {
		return true, ""
	}
	if aa.space >= 0 && ab.space >= 0 && aa.space != ab.space {
		return true, ""
	}
	return false, "possible aliasing between a store and another access"
}
