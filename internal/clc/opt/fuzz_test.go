package opt

import (
	"testing"

	"maligo/internal/clc"
)

// FuzzTransformEquivalence is the transform engine's standing
// correctness fuzzer: any OpenCL C source the frontend accepts is
// compiled, pushed through the full pass pipeline, and every kernel is
// executed on all three VM engines against the reference interpreter
// running the UNTRANSFORMED IR. Any divergence — results, or
// fault/no-fault disagreement — is a soundness bug in a pass.
//
// The seed corpus covers each pass plus the hard refusal shapes;
// `make fuzz-smoke` gives it a short deterministic budget on every CI
// run and the nightly long-fuzz workflow lets it explore.
func FuzzTransformEquivalence(f *testing.F) {
	for _, tc := range diffCases {
		f.Add(tc.src, int64(tc.scalar), uint64(1))
	}
	for _, tc := range negCases {
		f.Add(tc.src, int64(9), uint64(7))
	}
	f.Fuzz(func(t *testing.T, src string, scalar int64, seed uint64) {
		if len(src) > 1<<14 {
			t.Skip("oversized source")
		}
		prog, err := clc.Compile("fuzz.cl", src, "")
		if err != nil {
			t.Skip("source does not compile")
		}
		out, rep, err := OptimizeWith(prog, nil)
		if err != nil {
			t.Fatalf("OptimizeWith on compiled source: %v", err)
		}
		if !rep.Applied() {
			return // nothing transformed; nothing to compare
		}
		// Clamp the scalar binding: huge values only buy step-limit
		// timeouts, and negative trip counts are covered by small ones.
		scalar = ((scalar % 33) + 33) % 33
		for _, name := range kernelNames(prog) {
			ko, kx := prog.Kernels[name], out.Kernels[name]
			if len(ko.Params) > 12 {
				continue
			}
			checkEquivalence(t, ko, kx, 4, 2, scalar, seed)
		}
	})
}
