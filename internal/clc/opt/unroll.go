package opt

import (
	"sort"

	"maligo/internal/clc/ir"
	"maligo/internal/platform"
)

const (
	unrollMinTrip = 2
	unrollMaxTrip = 8
	// unrollMaxInstrs bounds the expanded segment so unrolling never
	// turns a hot loop into an instruction-cache-hostile blob.
	unrollMaxInstrs = 256
)

// overBudget mirrors mali.CheckResources: the scaled register
// footprint against the T604 per-thread budget.
func overBudget(regBytes int) bool {
	return float64(regBytes)*platform.GPURegFootprintScale > platform.GPUMaxRegBytesPerThread
}

// runUnroll fully unrolls counted loops whose trip count the tier-2
// engine pinned to a small constant (§V-E). The rewrite is pure
// duplication — each copy keeps the header's re-materialized
// constants and the induction update, only the compare and branches
// go — so the dynamic instruction sequence of the loop body is
// reproduced exactly: reductions, barriers and atomics are all safe
// to unroll. The pass is gated by the same T604 register budget the
// device model enforces; a kernel already over budget is left alone
// (the paper's §V-E observation: unrolling helps only while the
// register file holds).
func runUnroll(c *passCtx) bool {
	k, f := c.k, c.facts
	if overBudget(k.RegisterFootprint()) {
		c.note("register budget exceeded (%d reg bytes); unrolling refused", k.RegisterFootprint())
		return false
	}
	du := f.DefUse()

	type job struct {
		s    *loopShape
		trip int64
	}
	var jobs []job
	for _, l := range f.Loops() {
		s, why := recognizeShape(f, l)
		if s == nil {
			c.note("loop at %d: %s", l.Header, why)
			continue
		}
		if l.Trip < 0 {
			c.note("loop at %d: trip count not a compile-time constant", s.hs)
			continue
		}
		if l.Trip < unrollMinTrip || l.Trip > unrollMaxTrip {
			c.note("loop at %d: trip %d outside the %d..%d unroll window", s.hs, l.Trip, unrollMinTrip, unrollMaxTrip)
			continue
		}
		copyLen := len(s.headConsts) + (s.be - 1 - s.bs)
		if int64(copyLen)*l.Trip > unrollMaxInstrs {
			c.note("loop at %d: unrolled size %d exceeds %d instructions", s.hs, int64(copyLen)*l.Trip, unrollMaxInstrs)
			continue
		}
		// The compare's result dies at the branch in the original; the
		// unrolled form never computes it, so any other use vetoes.
		otherUse := false
		for _, u := range du.UsesOf(s.cmpAt) {
			if u != s.term {
				otherUse = true
			}
		}
		// Increment-chain temporaries must likewise stay loop-local.
		for d := s.incStart; d < s.be-1; d++ {
			dr, ok := ir.Def(&k.Code[d])
			if !ok || (dr.Bank == ir.BankI && dr.Slot == l.IV && dr.Width == 1) {
				continue
			}
			for _, u := range du.UsesOf(d) {
				if u < s.incStart || u >= s.be-1 {
					otherUse = true
				}
			}
		}
		if otherUse {
			c.note("loop at %d: loop-control temporaries escape the loop", s.hs)
			continue
		}
		jobs = append(jobs, job{s, l.Trip})
	}
	// Rewrite back-to-front so earlier shapes' indexes stay valid.
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].s.hs > jobs[j].s.hs })

	applied := false
	for _, j := range jobs {
		s := j.s
		var seg []ir.Instr
		for n := int64(0); n < j.trip; n++ {
			for _, hc := range s.headConsts {
				seg = append(seg, k.Code[hc])
			}
			seg = append(seg, k.Code[s.bs:s.be-1]...)
		}
		code := make([]ir.Instr, 0, len(k.Code)-(s.be-s.hs)+len(seg))
		code = append(code, k.Code[:s.hs]...)
		code = append(code, seg...)
		code = append(code, k.Code[s.be:]...)
		remapJumps(code, s.hs, s.be, len(seg))
		k.Code = code
		c.sites++
		applied = true
		c.note("loop at %d: unrolled trip %d (%d instructions)", s.hs, j.trip, len(seg))
	}
	return applied
}
