// Package clc is the driver for the OpenCL C kernel compiler: it runs
// the preprocessor, parser, semantic analyzer and IR lowering in
// sequence, mirroring what clBuildProgram does inside a real OpenCL
// driver.
package clc

import (
	"maligo/internal/clc/ast"
	"maligo/internal/clc/ir"
	"maligo/internal/clc/parser"
	"maligo/internal/clc/preproc"
	"maligo/internal/clc/sema"
)

// predefined are the macros every compilation sees, matching the
// OpenCL C environment of the simulated platform.
var predefined = map[string]string{
	"__OPENCL_VERSION__":        "110",
	"CL_VERSION_1_0":            "100",
	"CL_VERSION_1_1":            "110",
	"__ENDIAN_LITTLE__":         "1",
	"__kernel_exec":             "",
	"CLK_LOCAL_MEM_FENCE":       "1",
	"CLK_GLOBAL_MEM_FENCE":      "2",
	"MAXFLOAT":                  "3.402823466e+38f",
	"HUGE_VALF":                 "3.402823466e+38f",
	"FLT_EPSILON":               "1.19209290e-7f",
	"DBL_EPSILON":               "2.2204460492503131e-16",
	"M_PI":                      "3.14159265358979323846",
	"M_PI_F":                    "3.14159274101257f",
	"M_E":                       "2.71828182845904523536",
	"cl_khr_fp64":               "1",
	"cl_khr_int64_base_atomics": "1",
}

// Artifacts bundles every intermediate representation of one
// compilation: the preprocessed source (comments and line structure
// preserved), the parsed AST, the semantic analysis result and the
// lowered IR program. The static-analysis passes in
// internal/clc/analysis consume all four.
type Artifacts struct {
	Name   string
	Source string // preprocessed source
	File   *ast.File
	Sema   *sema.Result
	Prog   *ir.Program
}

// Compile builds OpenCL C source into an executable IR program.
// options is a clBuildProgram-style option string ("-DREAL=float ...").
func Compile(name, src, options string) (*ir.Program, error) {
	art, err := CompileArtifacts(name, src, options)
	if err != nil {
		return nil, err
	}
	return art.Prog, nil
}

// CompileArtifacts runs the full pipeline and returns every
// intermediate stage alongside the executable program.
func CompileArtifacts(name, src, options string) (*Artifacts, error) {
	defs := preproc.ParseOptions(options)
	for k, v := range predefined { // maligo:allow maporder distinct keys fill the defs map
		if _, user := defs[k]; !user {
			defs[k] = v
		}
	}
	expanded, err := preproc.Process(src, defs)
	if err != nil {
		return nil, err
	}
	file, err := parser.Parse(name, expanded)
	if err != nil {
		return nil, err
	}
	res, err := sema.Check(file)
	if err != nil {
		return nil, err
	}
	prog, err := ir.Lower(res)
	if err != nil {
		return nil, err
	}
	prog.Source = expanded
	return &Artifacts{Name: name, Source: expanded, File: file, Sema: res, Prog: prog}, nil
}
