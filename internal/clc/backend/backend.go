// Package backend lowers compiled kernel IR to external targets.
//
// The execution engines in internal/vm consume ir.Kernel directly; this
// package is the other side of that contract: it treats the IR as a
// stable input language and emits self-contained artifacts from it,
// following the IR→multi-target lowering shape of naga (one validated
// intermediate form, many independent writers). Two backends ship
// today:
//
//   - "irdump" — a canonical, versioned textual dump of the kernel IR.
//     Byte-stable across runs, it is the snapshot format the test suite
//     locks down and the interchange format for external tooling.
//   - "gosrc"  — standalone Go source: one package per kernel with a
//     Run function that executes the kernel as a basic-block state
//     machine against a small Machine interface (memory + builtins).
//     Barriers return control to the host with a resume block, so a
//     host can schedule work-groups exactly like the VM does.
//
// Backends are pure functions of the kernel: no global state, no
// engine coupling, deterministic output. Register in init and look up
// by name.
package backend

import (
	"fmt"
	"sort"
	"sync"

	"maligo/internal/clc/ir"
)

// Backend emits one artifact from a lowered kernel.
type Backend interface {
	// Name is the registry key ("irdump", "gosrc").
	Name() string
	// Emit renders the kernel. Output must be deterministic: equal
	// kernels produce byte-equal artifacts.
	Emit(k *ir.Kernel) ([]byte, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Backend{}
)

// Register adds a backend to the registry. Duplicate names panic: two
// writers for one target is a wiring bug, not a runtime condition.
func Register(b Backend) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[b.Name()]; dup {
		panic(fmt.Sprintf("backend: duplicate registration of %q", b.Name()))
	}
	registry[b.Name()] = b
}

// Get returns the named backend or an error listing the known ones.
func Get(name string) (Backend, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	if b, ok := registry[name]; ok {
		return b, nil
	}
	return nil, fmt.Errorf("backend: unknown backend %q (have %v)", name, namesLocked())
}

// Names lists registered backends in sorted order. Callers must hold
// no registry assumptions beyond this list.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	names := make([]string, 0, len(registry))
	for n := range registry { // maligo:allow maporder sorted on the next line
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register(irDump{})
	Register(goSrc{})
}
