package backend

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"maligo/internal/clc/builtin"
	"maligo/internal/clc/ir"
	"maligo/internal/clc/types"
)

// irDump renders the versioned canonical textual form of a kernel.
//
// The format is line-oriented and complete: every Instr field that
// affects execution appears (operands, immediates with exact float
// bits, width, both bases, source position), so a dump fully
// determines engine behaviour and two kernels dump equal iff they
// execute identically. The version header guards snapshot churn: any
// format change must bump it.
type irDump struct{}

// irDumpVersion is bumped on any change to the dump grammar.
const irDumpVersion = 1

func (irDump) Name() string { return "irdump" }

func (irDump) Emit(k *ir.Kernel) ([]byte, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "; maligo irdump v%d\n", irDumpVersion)
	fmt.Fprintf(&b, "kernel %s\n", k.Name)
	for i, p := range k.Params {
		fmt.Fprintf(&b, "param %d name=%s type=%s class=%s slot=%d space=%s\n",
			i, p.Name, p.Type, paramClassName(p.Class), p.Slot, p.Space)
	}
	fmt.Fprintf(&b, "regs i=%d f=%d bytes=%d maxvec=%d\n",
		k.NumI, k.NumF, k.RegBytes, k.MaxVectorWidth)
	fmt.Fprintf(&b, "mem local=%d private=%d\n", k.LocalBytes, k.PrivateBytes)
	fmt.Fprintf(&b, "flags double=%t barrier=%t restrict=%d const=%d\n",
		k.UsesDouble, k.UsesBarrier, k.RestrictParams, k.ConstParams)
	for _, a := range k.Arrays {
		fmt.Fprintf(&b, "array name=%s space=%s off=%d bytes=%d elem=%d len=%d\n",
			a.Name, spaceName(a.Space), a.Offset, a.Bytes, a.ElemSize, a.Len)
	}
	fmt.Fprintf(&b, "code %d\n", len(k.Code))
	for i := range k.Code {
		in := &k.Code[i]
		fmt.Fprintf(&b, "%5d  %-8s", i, in.Op)
		fmt.Fprintf(&b, " a=%d b=%d c=%d d=%d", in.A, in.B, in.C, in.D)
		switch in.Op {
		case ir.ImmF:
			fmt.Fprintf(&b, " fimm=%s/%#016x", formatFloat(in.FImm), math.Float64bits(in.FImm))
		case ir.CallB, ir.AtomicOp:
			fmt.Fprintf(&b, " imm=%d(%s)", in.Imm, builtin.ID(in.Imm))
		default:
			if in.Imm != 0 || in.Op == ir.ImmI || in.Op == ir.Jmp || in.Op == ir.JmpIf || in.Op == ir.JmpIfZ {
				fmt.Fprintf(&b, " imm=%d", in.Imm)
			}
		}
		if in.Width > 1 {
			fmt.Fprintf(&b, " w=%d", in.Width)
		}
		if in.Base != types.Invalid {
			fmt.Fprintf(&b, " base=%s", in.Base)
		}
		if in.Base2 != types.Invalid {
			fmt.Fprintf(&b, " base2=%s", in.Base2)
		}
		if in.Pos.IsValid() {
			fmt.Fprintf(&b, " @%s", in.Pos)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "end %s\n", k.Name)
	return []byte(b.String()), nil
}

func paramClassName(c ir.ParamClass) string {
	switch c {
	case ir.ParamScalarI:
		return "scalari"
	case ir.ParamScalarF:
		return "scalarf"
	case ir.ParamGlobalPtr:
		return "globalptr"
	case ir.ParamLocalPtr:
		return "localptr"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

func spaceName(s int) string {
	switch s {
	case ir.SpaceGlobal:
		return "global"
	case ir.SpaceLocal:
		return "local"
	case ir.SpaceConstant:
		return "constant"
	case ir.SpacePrivate:
		return "private"
	}
	return fmt.Sprintf("space(%d)", s)
}

// formatFloat renders f round-trip exactly; the paired bit pattern in
// the dump removes any residual ambiguity (NaN payloads, -0).
func formatFloat(f float64) string {
	switch {
	case math.IsNaN(f):
		return "nan"
	case math.IsInf(f, 1):
		return "+inf"
	case math.IsInf(f, -1):
		return "-inf"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
