package backend_test

import (
	"bytes"
	"flag"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"maligo/internal/bench"
	"maligo/internal/clc"
	"maligo/internal/clc/backend"
)

// -update regenerates the golden snapshots instead of comparing.
var update = flag.Bool("update", false, "rewrite backend snapshot goldens")

func TestRegistry(t *testing.T) {
	names := backend.Names()
	for _, want := range []string{"gosrc", "irdump"} {
		b, err := backend.Get(want)
		if err != nil {
			t.Fatalf("Get(%q): %v", want, err)
		}
		if b.Name() != want {
			t.Errorf("Get(%q).Name() = %q", want, b.Name())
		}
	}
	if len(names) != 2 || names[0] != "gosrc" || names[1] != "irdump" {
		t.Errorf("Names() = %v, want sorted [gosrc irdump]", names)
	}
	if _, err := backend.Get("llvm"); err == nil {
		t.Error("Get of unknown backend should fail")
	} else if !strings.Contains(err.Error(), "gosrc") {
		t.Errorf("unknown-backend error should list known backends, got %v", err)
	}
}

// TestSnapshots locks down the emitted artifact of every backend for
// every kernel of every paper benchmark, byte for byte. A diff here
// means the backend output format changed: if intentional, regenerate
// with `go test ./internal/clc/backend/ -run Snapshots -update` and
// review the golden diff like any other code change.
func TestSnapshots(t *testing.T) {
	for _, name := range bench.Names() {
		b := bench.ByName(name)
		prog, err := clc.Compile(name+".cl", b.Source(), bench.F32.BuildOptions())
		if err != nil {
			t.Fatalf("compile %s: %v", name, err)
		}
		for _, kname := range prog.KernelNames() {
			k := prog.Kernel(kname)
			for _, bkName := range backend.Names() {
				bk, err := backend.Get(bkName)
				if err != nil {
					t.Fatal(err)
				}
				t.Run(name+"/"+kname+"/"+bkName, func(t *testing.T) {
					out, err := bk.Emit(k)
					if err != nil {
						t.Fatalf("Emit: %v", err)
					}
					again, err := bk.Emit(k)
					if err != nil {
						t.Fatalf("second Emit: %v", err)
					}
					if !bytes.Equal(out, again) {
						t.Fatal("emission is not deterministic")
					}
					if bkName == "gosrc" {
						fset := token.NewFileSet()
						if _, err := parser.ParseFile(fset, kname+".go", out, 0); err != nil {
							t.Fatalf("emitted Go does not parse: %v", err)
						}
					}
					golden := filepath.Join("testdata", name, kname+"."+goldenExt(bkName))
					if *update {
						if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
							t.Fatal(err)
						}
						if err := os.WriteFile(golden, out, 0o644); err != nil {
							t.Fatal(err)
						}
						return
					}
					want, err := os.ReadFile(golden)
					if err != nil {
						t.Fatalf("missing golden (run with -update): %v", err)
					}
					if !bytes.Equal(out, want) {
						t.Errorf("emitted %s for %s/%s differs from golden %s (len %d vs %d); run with -update if intended",
							bkName, name, kname, golden, len(out), len(want))
					}
				})
			}
		}
	}
}

func goldenExt(backendName string) string {
	if backendName == "gosrc" {
		return "go.golden"
	}
	return "ir.golden"
}
