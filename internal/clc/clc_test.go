package clc_test

import (
	"strings"
	"testing"

	"maligo/internal/clc"
)

func TestPredefinedMacros(t *testing.T) {
	// CLK_* fence flags and __OPENCL_VERSION__ must be available
	// without user definitions, as in a real driver.
	src := `
#if __OPENCL_VERSION__
__kernel void k(__global float* p, __local float* s) {
    s[get_local_id(0)] = p[0];
    barrier(CLK_LOCAL_MEM_FENCE);
    p[0] = s[0] + M_PI_F;
}
#endif
`
	prog, err := clc.Compile("predef.cl", src, "")
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if prog.Kernel("k") == nil {
		t.Fatal("kernel missing — #if __OPENCL_VERSION__ branch not taken?")
	}
}

func TestBuildOptionsOverridePredefined(t *testing.T) {
	src := `
__kernel void k(__global float* p) {
    p[0] = (float)VALUE;
}
`
	if _, err := clc.Compile("opts.cl", src, "-DVALUE=3"); err != nil {
		t.Fatalf("Compile with -D: %v", err)
	}
	if _, err := clc.Compile("opts.cl", src, ""); err == nil {
		t.Fatal("VALUE undefined should fail to compile")
	}
}

func TestPrecisionSelectionViaReal(t *testing.T) {
	src := `
__kernel void k(__global REAL* p) {
#ifdef FP64
    p[0] = (REAL)1.0;
#else
    p[0] = (REAL)1.0f;
#endif
}
`
	f32, err := clc.Compile("r.cl", src, "-DREAL=float -DFP32")
	if err != nil {
		t.Fatal(err)
	}
	f64, err := clc.Compile("r.cl", src, "-DREAL=double -DFP64")
	if err != nil {
		t.Fatal(err)
	}
	if f32.Kernel("k").UsesDouble {
		t.Error("float build marked as double")
	}
	if !f64.Kernel("k").UsesDouble {
		t.Error("double build not marked as double")
	}
}

func TestErrorsCarryPositions(t *testing.T) {
	src := "__kernel void k(__global float* p) {\n    p[0] = undefined_var;\n}\n"
	_, err := clc.Compile("pos.cl", src, "")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error %q should carry line 2", err)
	}
}

func TestSourceRetained(t *testing.T) {
	prog, err := clc.Compile("s.cl", "#define X 1\n__kernel void k(__global int* p) { p[0] = X; }", "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.Source, "p[0] = 1") {
		t.Errorf("preprocessed source not retained: %q", prog.Source)
	}
}
