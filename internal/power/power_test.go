package power

import (
	"math"
	"testing"
	"testing/quick"

	"maligo/internal/platform"
)

func TestMeanPowerIdle(t *testing.T) {
	p := MeanPower(Activity{Seconds: 1})
	if p != platform.PBoardStatic {
		t.Fatalf("idle power = %v, want board static %v", p, platform.PBoardStatic)
	}
}

func TestMeanPowerComponentsAdd(t *testing.T) {
	base := MeanPower(Activity{Seconds: 1})
	cpu := MeanPower(Activity{Seconds: 1, CPUBusyCoreSeconds: 1, CPUUtil: 1})
	two := MeanPower(Activity{Seconds: 1, CPUBusyCoreSeconds: 2, CPUUtil: 1})
	gpu := MeanPower(Activity{Seconds: 1, GPUBusyCoreSeconds: 4, GPUUtil: 1})
	if cpu <= base {
		t.Error("a busy CPU core must add power")
	}
	if two <= cpu {
		t.Error("two busy cores must add more than one")
	}
	if gpu <= base {
		t.Error("a busy GPU must add power")
	}
	// §V-B calibration: OpenMP (two cores) draws ~1.2-1.45x of Serial.
	ratio := two / cpu
	if ratio < 1.15 || ratio > 1.55 {
		t.Errorf("2-core/1-core power ratio = %.2f, outside the paper's band", ratio)
	}
}

func TestDRAMTrafficPower(t *testing.T) {
	lo := MeanPower(Activity{Seconds: 1, DRAMBytes: 0})
	hi := MeanPower(Activity{Seconds: 1, DRAMBytes: 8e9})
	if hi <= lo {
		t.Error("DRAM traffic must add power")
	}
	if hi-lo > 1.5 {
		t.Errorf("8 GB/s adds %.2f W, implausibly high", hi-lo)
	}
}

func TestEnergyIsPowerTimesTime(t *testing.T) {
	act := Activity{Seconds: 2, CPUBusyCoreSeconds: 2, CPUUtil: 0.5}
	if got, want := Energy(act), MeanPower(act)*2; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Energy = %v, want %v", got, want)
	}
}

func TestMeterDeterminism(t *testing.T) {
	act := Activity{Seconds: 0.5, CPUBusyCoreSeconds: 0.5, CPUUtil: 0.8}
	m1 := NewMeter(7).Measure(act)
	m2 := NewMeter(7).Measure(act)
	if m1 != m2 {
		t.Fatalf("same seed must reproduce: %+v vs %+v", m1, m2)
	}
	m3 := NewMeter(8).Measure(act)
	if m1.MeanPowerW == m3.MeanPowerW {
		t.Fatal("different seeds should perturb the noise stream")
	}
}

func TestMeterAccuracy(t *testing.T) {
	act := Activity{Seconds: 2, CPUBusyCoreSeconds: 2, CPUUtil: 1}
	truth := MeanPower(act)
	m := NewMeter(3).Measure(act)
	if rel := math.Abs(m.MeanPowerW-truth) / truth; rel > 0.002 {
		t.Fatalf("meter error %.4f%% exceeds spec", rel*100)
	}
	if m.StdPowerW <= 0 || m.StdPowerW > truth*0.01 {
		t.Fatalf("meter σ = %v implausible", m.StdPowerW)
	}
	if m.Samples != int(2*platform.MeterSampleHz) {
		t.Fatalf("samples = %d", m.Samples)
	}
}

func TestMeterShortRegionStillSampled(t *testing.T) {
	m := NewMeter(1).Measure(Activity{Seconds: 0.001, CPUBusyCoreSeconds: 0.001, CPUUtil: 1})
	if m.Samples < 1 {
		t.Fatal("short regions must yield at least one sample")
	}
	if m.EnergyJ <= 0 {
		t.Fatal("energy must be positive")
	}
}

// Property: MeanPower is monotone in utilization and never below the
// board's static floor.
func TestMeanPowerMonotoneProperty(t *testing.T) {
	f := func(u1, u2 uint8, gpu bool) bool {
		a, b := float64(u1%101)/100, float64(u2%101)/100
		if a > b {
			a, b = b, a
		}
		actA := Activity{Seconds: 1}
		actB := Activity{Seconds: 1}
		if gpu {
			actA.GPUBusyCoreSeconds, actA.GPUUtil = 4, a
			actB.GPUBusyCoreSeconds, actB.GPUUtil = 4, b
		} else {
			actA.CPUBusyCoreSeconds, actA.CPUUtil = 1, a
			actB.CPUBusyCoreSeconds, actB.CPUUtil = 1, b
		}
		pa, pb := MeanPower(actA), MeanPower(actB)
		return pa >= platform.PBoardStatic && pb+1e-12 >= pa
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: meter energy mean scales linearly with region duration.
func TestMeterEnergyScalesProperty(t *testing.T) {
	f := func(k uint8) bool {
		n := 1 + int(k%5)
		base := Activity{Seconds: 1, CPUBusyCoreSeconds: 1, CPUUtil: 0.7}
		scaled := base
		scaled.Seconds = float64(n)
		scaled.CPUBusyCoreSeconds = float64(n)
		e1 := NewMeter(5).Measure(base).EnergyJ
		en := NewMeter(5).Measure(scaled).EnergyJ
		return math.Abs(en-float64(n)*e1)/en < 0.01
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
