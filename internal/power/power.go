// Package power implements the board-level power and energy model of
// the simulated Arndale platform, plus a model of the Yokogawa WT230
// power meter used by the paper (10 Hz sampling, 0.1% accuracy, 20
// repetitions per experiment).
package power

import (
	"math"

	"maligo/internal/platform"
)

// Activity summarizes what the SoC did during a measured region; the
// harness builds it from device reports.
type Activity struct {
	// Seconds is the wall-clock duration of the region.
	Seconds float64
	// CPUBusyCoreSeconds is Σ over A15 cores of busy time.
	CPUBusyCoreSeconds float64
	// CPUUtil is the average pipeline utilization of busy CPU cores.
	CPUUtil float64
	// GPUBusyCoreSeconds is Σ over shader cores of busy time.
	GPUBusyCoreSeconds float64
	// GPUUtil is the average pipe utilization of busy shader cores.
	GPUUtil float64
	// HostSpinSeconds is time an A15 core spends polling for GPU
	// completion (clFinish).
	HostSpinSeconds float64
	// DRAMBytes is the total DRAM traffic of the region.
	DRAMBytes uint64
}

// MeanPower returns the average board power in watts over the region
// on the default board (the Exynos 5250).
func MeanPower(a Activity) float64 { return MeanPowerOn(platform.Default(), a) }

// MeanPowerOn returns the average board power in watts over the
// region on the given SoC model. Pass a DVFS-derived SoC (SoC.At) to
// price the region at a non-nominal operating point.
func MeanPowerOn(soc *platform.SoC, a Activity) float64 {
	pm := soc.Power
	if a.Seconds <= 0 {
		return pm.BoardStatic
	}
	p := pm.BoardStatic

	// CPU cores: base power while busy plus utilization-scaled
	// dynamic power.
	cpuBusyFrac := a.CPUBusyCoreSeconds / a.Seconds // in units of cores
	p += cpuBusyFrac * (pm.CPUCoreBase + pm.CPUCoreDynamic*a.CPUUtil)

	// Host core spinning on the GPU queue.
	p += a.HostSpinSeconds / a.Seconds * pm.CPUIdleHost

	// GPU: base power whenever the GPU is on, dynamic scaled by
	// utilization and occupancy.
	if a.GPUBusyCoreSeconds > 0 {
		occupancy := a.GPUBusyCoreSeconds / (a.Seconds * float64(soc.GPU.Cores))
		if occupancy > 1 {
			occupancy = 1
		}
		p += pm.GPUBase + pm.GPUDynamic*a.GPUUtil*occupancy
	}

	// DRAM dynamic power per GB/s of traffic.
	gbs := float64(a.DRAMBytes) / a.Seconds / 1e9
	p += pm.DRAMPerGBs * gbs
	return p
}

// Energy returns the energy-to-solution of the region in joules on
// the default board.
func Energy(a Activity) float64 { return MeanPower(a) * a.Seconds }

// EnergyOn returns the energy-to-solution of the region in joules on
// the given SoC model — the quantity the cross-device autotuner
// minimizes. Unlike Meter.Measure it carries no instrument noise, so
// it is exactly deterministic.
func EnergyOn(soc *platform.SoC, a Activity) float64 {
	return MeanPowerOn(soc, a) * a.Seconds
}

// Measurement is the outcome of a metered experiment.
type Measurement struct {
	MeanPowerW float64 // mean across repetitions
	StdPowerW  float64
	EnergyJ    float64 // mean energy-to-solution
	StdEnergyJ float64
	Seconds    float64 // region duration (per repetition)
	Samples    int     // meter samples per repetition
}

// Meter models the Yokogawa WT230: it samples the (piecewise-constant)
// board power at 10 Hz with 0.1% gaussian accuracy and repeats the
// experiment the configured number of times. The noise generator is a
// deterministic xorshift so experiments are reproducible.
type Meter struct {
	soc  *platform.SoC
	seed uint64
	hz   float64
}

// NewMeter creates a meter whose noise stream is derived from seed,
// sampling at the platform's default rate (the WT230's 10 Hz).
func NewMeter(seed uint64) *Meter {
	return NewMeterRate(seed, 0)
}

// NewMeterRate creates a meter with a custom sampling rate in Hz;
// hz <= 0 selects the platform default. Higher rates model faster
// acquisition hardware (more samples over short regions).
func NewMeterRate(seed uint64, hz float64) *Meter {
	return NewMeterFor(platform.Default(), seed, hz)
}

// NewMeterFor creates a meter wired to the given SoC: the true power
// it samples comes from that board's power model and the instrument
// parameters (sampling rate when hz <= 0, accuracy, repetitions)
// from its meter model.
func NewMeterFor(soc *platform.SoC, seed uint64, hz float64) *Meter {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	if hz <= 0 {
		hz = soc.Meter.SampleHz
	}
	return &Meter{soc: soc, seed: seed, hz: hz}
}

// SampleHz returns the meter's sampling rate.
func (m *Meter) SampleHz() float64 { return m.hz }

// next returns a uniform float64 in [0,1).
func (m *Meter) next() float64 {
	m.seed ^= m.seed << 13
	m.seed ^= m.seed >> 7
	m.seed ^= m.seed << 17
	return float64(m.seed>>11) / float64(1<<53)
}

// gauss returns a standard normal variate (Box-Muller).
func (m *Meter) gauss() float64 {
	u1 := m.next()
	for u1 == 0 {
		u1 = m.next()
	}
	u2 := m.next()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Measure runs the metering protocol over a region with the given
// true activity: the region is repeated platform.MeterRepetitions
// times; in each repetition the meter averages its 10 Hz samples, each
// perturbed by 0.1% gaussian error. Regions shorter than one meter
// sample period still yield one sample, as a real averaging power
// meter integrating over the run would.
func (m *Meter) Measure(a Activity) Measurement {
	truePower := MeanPowerOn(m.soc, a)
	samples := int(a.Seconds * m.hz)
	if samples < 1 {
		samples = 1
	}
	reps := m.soc.Meter.Repetitions
	powers := make([]float64, reps)
	for r := 0; r < reps; r++ {
		var sum float64
		for s := 0; s < samples; s++ {
			noise := 1 + m.gauss()*m.soc.Meter.Accuracy/3
			sum += truePower * noise
		}
		powers[r] = sum / float64(samples)
	}
	meanP, stdP := meanStd(powers)
	energies := make([]float64, reps)
	for r := 0; r < reps; r++ {
		energies[r] = powers[r] * a.Seconds
	}
	meanE, stdE := meanStd(energies)
	return Measurement{
		MeanPowerW: meanP,
		StdPowerW:  stdP,
		EnergyJ:    meanE,
		StdEnergyJ: stdE,
		Seconds:    a.Seconds,
		Samples:    samples,
	}
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
