package maligo

import (
	"maligo/internal/tune"
)

// The cross-device autotuner: Autotune exhaustively enumerates
// placements of one benchmark kernel over the registered device fleet
// — target unit × DVFS operating point × GPU work-group size × §V
// transform pass set — and reports the energy-optimal and
// time-optimal placements with the full deterministic search table.
type (
	// TuneSpace is the candidate grid (zero fields select fleet-wide
	// defaults; Bench is required).
	TuneSpace = tune.Space
	// TuneReport is the deterministic search report: every outcome in
	// enumeration order plus the two argmin indices. Render gives the
	// byte-stable text table, JSON the machine-readable form.
	TuneReport = tune.Report
	// TuneOutcome is one evaluated placement.
	TuneOutcome = tune.Outcome
	// TuneCandidate identifies one placement of the grid.
	TuneCandidate = tune.Candidate
)

// Autotuner target units.
const (
	// TuneTargetCPU is the serial version on one CPU core.
	TuneTargetCPU = tune.TargetCPU
	// TuneTargetCPUCluster is the OpenMP version on the full cluster.
	TuneTargetCPUCluster = tune.TargetCPUCluster
	// TuneTargetGPU is the naive OpenCL version on the Mali — the
	// target the work-group-size and pass-set dimensions act on.
	TuneTargetGPU = tune.TargetGPU
	// TunePassSetAll selects the full transform pipeline as a pass
	// set; "" runs the kernel as written.
	TunePassSetAll = tune.PassSetAll
)

// TuneTargets lists the valid target names in enumeration order.
func TuneTargets() []string { return tune.Targets() }

// Autotune runs the search. The report is bit-identical across runs
// and across Workers settings; an unknown device name fails with an
// error wrapping ErrUnknownDevice.
func Autotune(space TuneSpace) (*TuneReport, error) { return tune.Run(space) }
