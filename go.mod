module maligo

go 1.22
