/* vectorize pass: positive and negative cases. */

/* Positive: scalar loads from __global memory in a unit-stride loop;
 * each iteration moves 4 bytes where vload4 would move 16. */
__kernel void vec_scalar(__global const float* restrict a,
                         __global float* restrict out,
                         int n) {
    int gid = get_global_id(0);
    float s = 0.0f;
    for (int i = 0; i < n; i++) {
        s += a[i];
    }
    out[gid] = s;
}

/* Negative: the loop already moves 128-bit lines through vload4. */
__kernel void vec_wide(__global const float* restrict a,
                       __global float* restrict out,
                       int n) {
    int gid = get_global_id(0);
    float4 s = (float4)(0.0f);
    for (int i = 0; i < n; i++) {
        s += vload4(i, a);
    }
    out[gid] = s.x + s.y + s.z + s.w;
}
