/* constparam pass: positive and negative cases. */

/* Positive: 'in' is only ever read but lacks const. */
__kernel void read_noconst(__global float* restrict in,
                           __global float* restrict out) {
    int gid = get_global_id(0);
    out[gid] = in[gid] * 2.0f;
}

/* Negative: read-only buffer properly declared const. */
__kernel void read_const(__global const float* restrict in,
                         __global float* restrict out) {
    int gid = get_global_id(0);
    out[gid] = in[gid] * 2.0f;
}
