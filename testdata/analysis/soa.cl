/* soa pass: positive and negative cases. */

/* Positive: x/y/z interleaved per point (array of structures), so
 * consecutive work-items load with stride 3. */
__kernel void aos_norm(__global const float* restrict pos,
                       __global float* restrict mag) {
    int gid = get_global_id(0);
    float x = pos[3 * gid + 0];
    float y = pos[3 * gid + 1];
    float z = pos[3 * gid + 2];
    mag[gid] = sqrt(x * x + y * y + z * z);
}

/* Negative: structure of arrays; every access is unit-stride. */
__kernel void soa_norm(__global const float* restrict px,
                       __global const float* restrict py,
                       __global const float* restrict pz,
                       __global float* restrict mag) {
    int gid = get_global_id(0);
    float x = px[gid];
    float y = py[gid];
    float z = pz[gid];
    mag[gid] = sqrt(x * x + y * y + z * z);
}
