/* Guard-aware correctness analysis: the syntax-level analyzer
 * over-reported on guarded code; the dataflow engine proves these
 * clean (or racy) from the guard constraints themselves. */

/* Clean: both guards select the same single work-item, which executes
 * the two stores in program order. The syntax analyzer saw two
 * distinct guard expressions and reported a race. */
__kernel void same_item_twice(__global int* restrict out, int n) {
    int gid = get_global_id(0);
    if (gid == n) { out[0] = 1; }
    if (gid == n) { out[0] = 2; }
}

/* Clean: the branch is statically dead, so the out-of-bounds store in
 * it can never execute. */
__kernel void dead_branch(__global int* restrict out) {
    int acc[8];
    int n = 4;
    acc[0] = 3;
    if (n > 8) { acc[31] = 7; }
    out[get_global_id(0)] = acc[0];
}

/* Positive: the guard admits work-items 0 and 1, which both store to
 * the same __local word in the same barrier interval. The old
 * analyzer dropped every access under a non-equality guard. */
__kernel void narrow_guard_race(__global int* restrict out) {
    __local int flag[4];
    int lid = get_local_id(0);
    if (lid < 2) { flag[0] = lid; }
    out[get_global_id(0)] = flag[0];
}
