/* unroll pass: positive and negative cases. */

/* Positive: constant trip count 4; the branch overhead outweighs the
 * body. */
__kernel void small_loop(__global const float* restrict in,
                         __global float* restrict out) {
    int gid = get_global_id(0);
    float s = in[gid];
    for (int i = 0; i < 4; i++) {
        s = s * 2.0f + 1.0f;
    }
    out[gid] = s;
}

/* Negative: the trip count is long enough that the loop is fine. */
__kernel void long_loop(__global const float* restrict in,
                        __global float* restrict out) {
    int gid = get_global_id(0);
    float s = in[gid];
    for (int i = 0; i < 100; i++) {
        s = s * 2.0f + 1.0f;
    }
    out[gid] = s;
}
