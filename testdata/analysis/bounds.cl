/* bounds pass: positive and negative cases. */

/* Positive: constant index one past the end of a private array. */
__kernel void oob(__global float* restrict out) {
    float acc[16];
    for (int i = 0; i < 16; i++) {
        acc[i] = 0.0f;
    }
    acc[16] = 1.0f;
    out[get_global_id(0)] = acc[15];
}

/* Negative: every constant index stays in range (acc[15] above). */
__kernel void in_bounds(__global float* restrict out) {
    float acc[16];
    for (int i = 0; i < 16; i++) {
        acc[i] = 0.0f;
    }
    acc[0] = 1.0f;
    out[get_global_id(0)] = acc[15];
}
