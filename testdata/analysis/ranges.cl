/* Value-range findings from the dataflow engine. */

/* Positive: the loop bound admits i == 16, one past the end. The
 * index is range-derived rather than constant, so it reports as a
 * warning ("may reach") instead of a proven error. */
__kernel void off_by_one(__global float* restrict out) {
    float acc[16];
    for (int i = 0; i <= 16; i++) {
        acc[i] = 0.0f;
    }
    out[get_global_id(0)] = acc[3];
}

/* Clean: the loop keeps every index strictly inside the array. */
__kernel void exact_fit(__global float* restrict out) {
    float acc[16];
    for (int i = 0; i < 16; i++) {
        acc[i] = 0.0f;
    }
    out[get_global_id(0)] = acc[15];
}
