/* Diagnostic deduplication: a helper inlined at two call sites
 * produces two position-identical findings; the analyzer must report
 * the finding once. */

int bump(__local int *t) {
    t[20] = 1;
    return 0;
}

__kernel void dedupe_sites(__global int* restrict out) {
    __local int tile[16];
    if (get_local_id(0) == 0) {
        bump(tile);
        bump(tile);
    }
    out[get_global_id(0)] = tile[0];
}
