/* barrierdiv pass: positive and negative cases. */

/* Positive: only work-item 0 reaches the barrier; the rest of the
 * group waits forever. */
__kernel void bad_barrier(__global float* restrict out,
                          __local float* restrict l) {
    int lid = get_local_id(0);
    if (lid == 0) {
        l[0] = 1.0f;
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    out[get_global_id(0)] = l[0];
}

/* Negative: the condition is uniform across the group, so either all
 * work-items hit the barrier or none do. */
__kernel void good_barrier(__global float* restrict out,
                           __local float* restrict l,
                           int n) {
    int lid = get_local_id(0);
    l[lid] = (float)lid;
    if (n > 0) {
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    out[get_global_id(0)] = l[lid];
}
