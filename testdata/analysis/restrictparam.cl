/* restrictparam pass: positive and negative cases. */

/* Positive: two __global buffers that could alias; neither carries
 * restrict, so the compiler must order every load after every store. */
__kernel void axpy_alias(__global const float* x,
                         __global float* y,
                         float a) {
    int gid = get_global_id(0);
    y[gid] += a * x[gid];
}

/* Negative: both buffers promise non-aliasing. */
__kernel void axpy_restrict(__global const float* restrict x,
                            __global float* restrict y,
                            float a) {
    int gid = get_global_id(0);
    y[gid] += a * x[gid];
}
