/* race pass: positive and negative cases. */

/* Positive: each work-item reads its neighbor's __local slot in the
 * same barrier interval the neighbor writes it. */
__kernel void shift_race(__global const float* restrict in,
                         __global float* restrict out,
                         __local float* restrict tile) {
    int lid = get_local_id(0);
    int gid = get_global_id(0);
    tile[lid] = in[gid];
    out[gid] = tile[lid] - tile[lid + 1];
}

/* Negative: the barrier orders the writes before the neighbor reads. */
__kernel void shift_ok(__global const float* restrict in,
                       __global float* restrict out,
                       __local float* restrict tile) {
    int lid = get_local_id(0);
    int gid = get_global_id(0);
    tile[lid] = in[gid];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[gid] = tile[lid] - tile[lid + 1];
}
