/* Interprocedural findings: helpers are inlined during lowering, so
 * index facts flow through call sites and diagnostics point at the
 * access inside the helper-computed expression. */

int mirror(int n, int l) { return n - l; }
int off_by(int i) { return i + 12; }

/* Positive: work-items l and 4-l collide on the same __local word
 * through the helper-computed index. */
__kernel void helper_race(__global int* restrict out) {
    __local int tile[8];
    int lid = get_local_id(0);
    tile[mirror(4, lid)] = lid;
    out[get_global_id(0)] = tile[lid];
}

/* Positive: a constant index through a helper lands past the end. */
__kernel void helper_oob(__global int* restrict out) {
    int acc[16];
    acc[0] = 1;
    acc[off_by(8)] = 2;
    out[get_global_id(0)] = acc[0];
}

/* Clean: the same helper with a small argument stays in bounds. */
__kernel void helper_ok(__global int* restrict out) {
    int acc[16];
    acc[off_by(2)] = 2;
    out[get_global_id(0)] = acc[14];
}
