/* regbudget pass: positive and negative cases. */

/* Positive: several live double16 values; the estimated demand blows
 * the per-thread register budget, the paper's CL_OUT_OF_RESOURCES
 * failure mode. */
__kernel void fat_regs(__global const double* restrict in,
                       __global double* restrict out) {
    int gid = get_global_id(0);
    double16 a = vload16(gid, in);
    double16 b = a * a;
    double16 c = b + a;
    double16 d = c * b + a;
    out[gid] = d.s0 + d.s1 + c.s2 + b.s3;
}

/* Negative: a lean scalar kernel far under the budget. */
__kernel void lean_regs(__global const float* restrict in,
                        __global float* restrict out) {
    int gid = get_global_id(0);
    out[gid] = in[gid] + 1.0f;
}
