/* copyprivate pass: positive and negative cases. */

/* Positive: stages a __global row into a private array element by
 * element. On the unified-memory SoC this moves every byte through
 * the same LPDDR controller twice. */
__kernel void stage_private(__global const float* restrict in,
                            __global float* restrict out,
                            int n) {
    int gid = get_global_id(0);
    float tmp[16];
    for (int i = 0; i < 16; i++) {
        tmp[i] = in[i * n + gid];
    }
    float s = 0.0f;
    for (int i = 0; i < 16; i++) {
        s += tmp[i];
    }
    out[gid] = s;
}

/* Negative: reads the __global buffer directly. */
__kernel void no_stage(__global const float* restrict in,
                       __global float* restrict out,
                       int n) {
    int gid = get_global_id(0);
    float s = 0.0f;
    for (int i = 0; i < 16; i++) {
        s += in[i * n + gid];
    }
    out[gid] = s;
}
