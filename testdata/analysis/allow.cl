/* Suppression directives: maligo:allow disables named passes for the
 * next kernel only. */

// maligo:allow vectorize scalar baseline kept on purpose for figures
__kernel void allowed_scalar(__global const float* restrict a,
                             __global float* restrict out,
                             int n) {
    int gid = get_global_id(0);
    float s = 0.0f;
    for (int i = 0; i < n; i++) {
        s += a[i];
    }
    out[gid] = s;
}

/* The directive above does not leak onto this kernel. */
__kernel void unallowed_scalar(__global const float* restrict a,
                               __global float* restrict out,
                               int n) {
    int gid = get_global_id(0);
    float s = 0.0f;
    for (int i = 0; i < n; i++) {
        s += a[i];
    }
    out[gid] = s;
}
