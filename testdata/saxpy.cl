// saxpy demo kernel for cmd/clc
__kernel void saxpy(__global const REAL* restrict x,
                    __global REAL* restrict y,
                    const REAL a,
                    const uint n) {
    size_t i = get_global_id(0);
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}
