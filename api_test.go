package maligo_test

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"maligo"
)

const saxpySrc = `
__kernel void saxpy(__global const float* x,
                    __global float* y,
                    const float a,
                    const uint n) {
    size_t i = get_global_id(0);
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}
`

// saxpyRun executes one measured saxpy region on a fresh platform with
// the given engine worker count and returns the output bytes and the
// measurement.
func saxpyRun(t *testing.T, workers int) ([]byte, maligo.Measurement, maligo.Activity) {
	t.Helper()
	const n = 1 << 14
	p := maligo.NewPlatform(maligo.WithWorkers(workers))
	defer p.Close()
	ctx := p.Context

	prog := ctx.CreateProgramWithSource(saxpySrc)
	if err := prog.Build(""); err != nil {
		t.Fatalf("build: %v\n%s", err, prog.BuildLog())
	}
	kernel, err := prog.CreateKernel("saxpy")
	if err != nil {
		t.Fatal(err)
	}

	host := make([]byte, n*4)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(host[i*4:], math.Float32bits(float32(i)))
	}
	bufX, err := ctx.CreateBuffer(maligo.MemReadOnly|maligo.MemCopyHostPtr, n*4, host)
	if err != nil {
		t.Fatal(err)
	}
	bufY, err := ctx.CreateBuffer(maligo.MemReadWrite|maligo.MemCopyHostPtr, n*4, host)
	if err != nil {
		t.Fatal(err)
	}
	kernel.SetArgBuffer(0, bufX)
	kernel.SetArgBuffer(1, bufY)
	kernel.SetArgFloat(2, 2.5)
	kernel.SetArgInt(3, n)

	q := ctx.CreateCommandQueue(p.Mali())
	if _, err := q.EnqueueNDRangeKernel(kernel, 1, []int{n}, []int{64}); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	q.Finish()
	meas, act := p.Measure(q)

	out := make([]byte, n*4)
	if _, err := q.EnqueueReadBuffer(bufY, 0, out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got := math.Float32frombits(binary.LittleEndian.Uint32(out[i*4:]))
		want := 2.5*float32(i) + float32(i)
		if got != want {
			t.Fatalf("y[%d] = %g, want %g", i, got, want)
		}
	}
	return out, meas, act
}

// TestPublicAPIDeterminism drives the whole public surface — platform
// options, buffers, kernels, queue, Measure — and checks the serial
// and sharded engines agree bit for bit on output and measurement.
func TestPublicAPIDeterminism(t *testing.T) {
	serialOut, serialMeas, serialAct := saxpyRun(t, 1)
	shardedOut, shardedMeas, shardedAct := saxpyRun(t, 4)

	for i := range serialOut {
		if serialOut[i] != shardedOut[i] {
			t.Fatalf("output differs at byte %d", i)
		}
	}
	if serialMeas != shardedMeas {
		t.Errorf("measurements differ:\n serial:  %+v\n sharded: %+v", serialMeas, shardedMeas)
	}
	if serialAct != shardedAct {
		t.Errorf("activity differs:\n serial:  %+v\n sharded: %+v", serialAct, shardedAct)
	}
	if serialMeas.EnergyJ <= 0 || serialMeas.MeanPowerW <= 0 {
		t.Errorf("implausible measurement: %+v", serialMeas)
	}
}

// TestPlatformOptions checks the remaining NewPlatform options take
// effect through the façade.
func TestPlatformOptions(t *testing.T) {
	p := maligo.NewPlatform(
		maligo.WithArenaBytes(1<<22),
		maligo.WithWorkers(2),
		maligo.WithMeterHz(100),
		maligo.WithMeterSeed(7),
	)
	defer p.Close()
	if got := p.Context.ArenaBytes(); got != 1<<22 {
		t.Errorf("ArenaBytes = %d, want %d", got, 1<<22)
	}
	if got := p.Context.Workers(); got != 2 {
		t.Errorf("Workers = %d, want 2", got)
	}
	if got := p.Meter.SampleHz(); got != 100 {
		t.Errorf("SampleHz = %g, want 100", got)
	}
	info := p.Context.DeviceInfo(p.Mali())
	if info.GlobalMemBytes != 1<<22 {
		t.Errorf("DeviceInfo.GlobalMemBytes = %d, want %d", info.GlobalMemBytes, 1<<22)
	}
	if p.CPU() == nil || p.CPUDual() == nil || p.Mali() == nil {
		t.Error("device accessors returned nil")
	}
}

const racyKernelSrc = `
__kernel void shift(__global float* out, __local float* tile) {
    int lid = get_local_id(0);
    tile[lid] = (float)lid;
    out[get_global_id(0)] = tile[lid + 1];
}
`

// TestAnalyzePublicAPI exercises the static-analysis surface: Analyze,
// the severity gate, the formatters and the pass registry.
func TestAnalyzePublicAPI(t *testing.T) {
	diags, err := maligo.Analyze("saxpy.cl", saxpySrc, "")
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if maligo.MaxDiagnosticSeverity(diags) >= maligo.SevWarning {
		t.Errorf("saxpy should lint clean at warning level: %s", maligo.FormatDiagnostics(diags))
	}

	diags, err = maligo.Analyze("racy.cl", racyKernelSrc, "")
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if maligo.MaxDiagnosticSeverity(diags) != maligo.SevError {
		t.Fatalf("racy kernel must produce an error diagnostic, got:\n%s", maligo.FormatDiagnostics(diags))
	}
	text := maligo.FormatDiagnostics(diags)
	if !strings.Contains(text, "[race]") || !strings.Contains(text, "racy.cl:") {
		t.Errorf("formatted diagnostics missing pass tag or file: %s", text)
	}
	if raw, err := maligo.FormatDiagnosticsJSON(diags); err != nil || len(raw) == 0 {
		t.Errorf("FormatDiagnosticsJSON: %v", err)
	}
	if len(maligo.AnalysisPasses()) < 6 {
		t.Errorf("pass registry too small: %d", len(maligo.AnalysisPasses()))
	}
}

// TestRaceCheckPublicAPI drives the dynamic confirmation tier through
// the façade on the sharded engine: the queue records attributed
// traces, the detector confirms the static report.
func TestRaceCheckPublicAPI(t *testing.T) {
	p := maligo.NewPlatform(maligo.WithWorkers(4))
	defer p.Close()
	ctx := p.Context

	prog := ctx.CreateProgramWithSource(racyKernelSrc)
	if err := prog.Build(""); err != nil {
		t.Fatalf("build: %v\n%s", err, prog.BuildLog())
	}
	kernel, err := prog.CreateKernel("shift")
	if err != nil {
		t.Fatal(err)
	}
	const n, local = 64, 16
	buf, err := ctx.CreateBuffer(maligo.MemReadWrite|maligo.MemAllocHostPtr, n*4, nil)
	if err != nil {
		t.Fatal(err)
	}
	kernel.SetArgBuffer(0, buf)
	kernel.SetArgLocal(1, (local+1)*4)

	q := ctx.CreateCommandQueue(p.Mali())
	q.SetRaceCheck(true)
	ev, err := q.EnqueueNDRangeKernel(kernel, 1, []int{n}, []int{local})
	if err != nil {
		t.Fatal(err)
	}
	if ev.RaceCheck == nil {
		t.Fatal("race check enabled but event carries no result")
	}
	if len(ev.RaceCheck.Confirmed()) == 0 {
		t.Fatalf("dynamic tier did not confirm the static race:\nstatic: %v\ndynamic: %v",
			ev.RaceCheck.Static, ev.RaceCheck.Dynamic)
	}
}
