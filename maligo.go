package maligo

import (
	"maligo/internal/core"
	"maligo/internal/cpu"
	"maligo/internal/mali"
)

// Platform is one simulated Arndale board (Samsung Exynos 5250): two
// Cortex-A15 device views, the Mali-T604 GPU, a context over their
// shared unified memory, and the simulated power meter. It is the
// entry point of the public API.
type Platform struct {
	*core.Platform
}

// Option configures NewPlatform and NewContext through one shared
// functional-option vocabulary. Every With* option applies to both
// constructors; the few that only make sense for one (WithDevices for
// standalone contexts, the meter options for platforms) are no-ops on
// the other, so option lists can be assembled generically.
type Option func(*config)

// config is the merged option target: the platform options plus the
// standalone-context extras.
type config struct {
	opts    core.Options
	devices []Device
}

// WithArenaBytes sets the simulated unified-memory capacity
// (default 512 MiB).
func WithArenaBytes(n int64) Option {
	return func(c *config) { c.opts.ArenaBytes = n }
}

// WithWorkers sets the host worker count of the parallel NDRange
// execution engine. The default (0) is runtime.NumCPU(); 1 forces the
// serial engine. Simulated timing and energy reports are bit-identical
// at every worker count — only the simulator's own wall-clock changes.
func WithWorkers(n int) Option {
	return func(c *config) { c.opts.Workers = n }
}

// WithEngine selects the VM execution engine: EngineInterp for the
// reference interpreter, EngineCompiled for the closure-compiled fast
// path. The default (EngineAuto) honours the MALIGO_ENGINE environment
// variable and otherwise runs the fast path. Results, reports and
// traces are bit-identical either way.
func WithEngine(e Engine) Option {
	return func(c *config) { c.opts.Engine = e }
}

// WithAsyncQueues routes every queue created from the context through
// the DAG command scheduler, enabling event wait-lists (EnqueueAsync,
// markers, barriers, user events) and out-of-order queues
// (CreateCommandQueueWith + QueueOutOfOrderExec). Simulated
// timestamps and results are bit-identical to the serial queue — the
// schedule is a pure function of the dependency graph, never of host
// goroutine interleaving.
func WithAsyncQueues(on bool) Option {
	return func(c *config) { c.opts.AsyncQueues = on }
}

// WithDevices sets a standalone context's devices (NewContext only; a
// Platform always carries the Exynos 5250's fixed device set).
func WithDevices(devices ...Device) Option {
	return func(c *config) { c.devices = append(c.devices, devices...) }
}

// WithMeterHz sets the power meter's sampling rate (default 10 Hz,
// the Yokogawa WT230 the paper used). Platform only.
func WithMeterHz(hz float64) Option {
	return func(c *config) { c.opts.MeterHz = hz }
}

// WithMeterSeed seeds the meter's deterministic noise stream.
// Platform only.
func WithMeterSeed(seed uint64) Option {
	return func(c *config) { c.opts.MeterSeed = seed }
}

// WithOutOfOrderQueues is the original spelling of WithAsyncQueues.
//
// Deprecated: use WithAsyncQueues, which names what the option
// enables (scheduler-backed queues) rather than one feature of them.
func WithOutOfOrderQueues(on bool) Option { return WithAsyncQueues(on) }

// NewPlatform assembles a fresh simulated board with cold caches.
func NewPlatform(opts ...Option) *Platform {
	var c config
	for _, opt := range opts {
		opt(&c)
	}
	return &Platform{Platform: core.NewPlatformWith(c.opts)}
}

// CPU returns the single-core Cortex-A15 device (the paper's Serial
// target); CPUDual returns the two-core view (the OpenMP target).
func (p *Platform) CPU() Device     { return p.Platform.CPU1 }
func (p *Platform) CPUDual() Device { return p.Platform.CPU2 }

// Mali returns the Mali-T604 GPU device.
func (p *Platform) Mali() Device { return p.Platform.GPU }

// Measure folds the events recorded on q since the last ResetEvents
// into a board-level power/energy measurement, inferring from the
// queue's device whether the region ran on the CPU cluster or on the
// GPU (with the host spinning on clFinish).
func (p *Platform) Measure(q *Queue) (Measurement, Activity) {
	kind := core.CPURun
	if _, ok := q.Device().(*mali.GPU); ok {
		kind = core.GPURun
	}
	return p.Platform.Measure(q, kind)
}

// MeasureKind is Measure with the run kind stated explicitly.
func (p *Platform) MeasureKind(q *Queue, kind RunKind) (Measurement, Activity) {
	return p.Platform.Measure(q, kind)
}

// Metrics returns the platform context's metrics registry — counters,
// gauges and histograms the runtime feeds on every enqueue. Take a
// point-in-time view with Metrics().Snapshot().
func (p *Platform) Metrics() *MetricsRegistry { return p.Platform.Context.Metrics() }

// Close releases platform resources (the engine worker pool). Queues
// created from the platform keep working afterwards on the serial
// engine.
func (p *Platform) Close() { p.Platform.Close() }

// Compile-time checks that the devices still satisfy the public
// Device surface.
var (
	_ Device = (*cpu.CPU)(nil)
	_ Device = (*mali.GPU)(nil)
)
