GO ?= go

.PHONY: build vet test race short bench figures verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

short:
	$(GO) test -short ./...

test:
	$(GO) test ./...

# The parallel engine executes work-groups concurrently; the race
# detector must stay green. -short skips only the paper-scale shape
# regression (already covered by `make test`), which under the race
# detector outlasts the default test timeout on small hosts.
race:
	$(GO) test -race -short -timeout 30m ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

figures:
	$(GO) run ./cmd/figures

# Full verification: what CI runs.
verify: build vet test race
