GO ?= go

.PHONY: build vet test race race-sched short bench bench-malid bench-smoke figures lint trace-smoke trace-golden serve-smoke fuzz-smoke verify

# Per-target budget for the fuzz smoke pass.
FUZZTIME ?= 30s

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

short:
	$(GO) test -short ./...

test:
	$(GO) test ./...

# The parallel engine executes work-groups concurrently; the race
# detector must stay green. -short skips only the paper-scale shape
# regression (already covered by `make test`), which under the race
# detector outlasts the default test timeout on small hosts.
race:
	$(GO) test -race -short -timeout 30m ./...

# The command-DAG scheduler is the concurrency hot spot: run its full
# test suite (not -short) under the race detector on every verify.
race-sched:
	$(GO) test -race -count=1 ./internal/sched

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .
	$(GO) test -run xxx -bench BenchmarkEngine -benchtime 200x -count 3 ./internal/vm \
		| $(GO) run ./cmd/benchjson > BENCH_vm_v2.json
	@echo "wrote BENCH_vm_v2.json (three-tier VM engine baseline; diff against the committed copy)"

# Cheap benchmark smoke for CI: one iteration of the VM engine
# benchmarks under all three engines, so a broken bench harness fails
# verify rather than the next baseline refresh.
bench-smoke:
	$(GO) test -run xxx -bench BenchmarkEngine -benchtime 1x ./internal/vm >/dev/null

# Static checks: Go hygiene, the repository self-lint (no unexplained
# map iteration or time.Now in deterministic paths — cmd/repolint),
# and the kernel linter over every tracked .cl file. The golden corpus
# under testdata/analysis is excluded — it intentionally contains
# positive findings and is locked down by the analyzer's golden tests
# instead. The nine benchmarks' kernels are embedded in Go and linted
# by TestKernelsLintClean.
lint: vet
	@fmtout="$$(gofmt -l . 2>/dev/null)"; \
	if [ -n "$$fmtout" ]; then echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) run ./cmd/repolint
	@for f in $$(git ls-files '*.cl' | grep -v '^testdata/analysis/' | grep -v '^internal/clc/opt/testdata/'); do \
		echo "clc -analyze -Werror $$f"; \
		$(GO) run ./cmd/clc -analyze -Werror -D REAL=float "$$f" || exit 1; \
	done

figures:
	$(GO) run ./cmd/figures

# Observability smoke test: run one small benchmark with trace +
# metrics export and validate the JSON with tracecheck.
trace-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./cmd/malisim -bench vecop -scale 0.05 -trace "$$tmp/trace.json" -metrics-out "$$tmp/metrics.json" >/dev/null && \
	$(GO) run ./cmd/tracecheck -metrics "$$tmp/metrics.json" "$$tmp/trace.json" && \
	$(GO) run ./cmd/malisim -bench vecop -scale 0.05 -async -trace "$$tmp/trace_async.json" >/dev/null && \
	$(GO) run ./cmd/tracecheck "$$tmp/trace_async.json"

# Serving-layer smoke test: drive an in-process malid daemon with the
# nine-benchmark mix over real HTTP under the race detector. The
# driver exits non-zero on any failed job, any served body that is not
# byte-identical to the in-process run, or a repeat-traffic cache hit
# rate at or below 90%.
serve-smoke:
	$(GO) run -race ./cmd/malid-load -n 360 -c 8 -tenants 3 -min-hit-rate 0.9 >/dev/null

# Refresh the committed malid throughput baseline (larger stream, no
# race detector — this one is about the numbers).
bench-malid:
	$(GO) run ./cmd/malid-load -n 1800 -c 16 -tenants 4 -min-hit-rate 0.9 \
		| $(GO) run ./cmd/benchjson > BENCH_malid.json
	@echo "wrote BENCH_malid.json (malid serving baseline; diff against the committed copy)"

# Validate the committed golden multi-queue trace (two out-of-order
# queues with cross-queue wait-lists; locked byte-exact by
# TestTraceMultiQueueGolden).
trace-golden:
	$(GO) run ./cmd/tracecheck internal/cl/testdata/trace_multiqueue.json

# Short native-fuzzing pass over every fuzz target ($(FUZZTIME) each):
# the 3-way engine differential (interp oracle vs compiled vs lanes),
# the command-DAG scheduler vs its serial oracle, the profile algebra
# and the kernel analyzer.
fuzz-smoke:
	$(GO) test -run xxx -fuzz '^FuzzEngineEquivalence$$' -fuzztime $(FUZZTIME) ./internal/vm
	$(GO) test -run xxx -fuzz '^FuzzCommandDAG$$' -fuzztime $(FUZZTIME) ./internal/sched
	$(GO) test -run xxx -fuzz '^FuzzProfileAddCommutes$$' -fuzztime $(FUZZTIME) ./internal/vm
	$(GO) test -run xxx -fuzz '^FuzzAnalyze$$' -fuzztime $(FUZZTIME) ./internal/clc/analysis
	$(GO) test -run xxx -fuzz '^FuzzSolver$$' -fuzztime $(FUZZTIME) ./internal/clc/analysis/dataflow
	$(GO) test -run xxx -fuzz '^FuzzTransformEquivalence$$' -fuzztime $(FUZZTIME) ./internal/clc/opt
	$(GO) test -run xxx -fuzz '^FuzzAutotune$$' -fuzztime $(FUZZTIME) ./internal/tune

# Full verification: what CI runs. The -short race pass includes the
# engine differential cross-section; `make test` runs the full 3-way
# matrix (interp oracle vs compiled vs lanes) plus the codegen backend
# snapshot tests.
verify: build lint test race race-sched trace-smoke trace-golden serve-smoke bench-smoke fuzz-smoke
