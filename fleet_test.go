package maligo_test

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"maligo"
)

var updateGolden = flag.Bool("update", false, "rewrite the device-model golden files")

// TestDeviceModelGolden pins every registered SoC's full calibration
// surface: the canonical Dump form is compared byte-for-byte against
// testdata/platform/<name>.golden, so any drift in a device model's
// numbers — intended recalibration or accidental edit — shows up as
// an explicit diff in review. Refresh with `go test -run Golden
// -update .` after a deliberate change.
func TestDeviceModelGolden(t *testing.T) {
	dir := filepath.Join("testdata", "platform")
	names := map[string]bool{}
	for _, s := range maligo.Devices() {
		names[s.Name] = true
		path := filepath.Join(dir, s.Name+".golden")
		got := s.Dump()
		if *updateGolden {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run `go test -run Golden -update .` after adding a device)", s.Name, err)
		}
		if got != string(want) {
			t.Errorf("%s: device model drifted from its golden file %s:\n%s",
				s.Name, path, firstDiffLines(string(want), got))
		}
	}
	if *updateGolden {
		return
	}
	// Every golden file must belong to a registered device — a model
	// removed from the registry must take its golden file along.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := strings.TrimSuffix(e.Name(), ".golden")
		if !names[name] {
			t.Errorf("stray golden file %s: no registered device %q", e.Name(), name)
		}
	}
}

// firstDiffLines renders the first diverging line of two dumps.
func firstDiffLines(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return "  golden: " + wl[i] + "\n  got:    " + gl[i]
		}
	}
	return "  (dumps differ in length)"
}

// TestExynos5250Pinned pins the reference board's headline numbers to
// today's calibration constants in-source (the golden file pins the
// rest): the registered "exynos5250" must stay exactly the paper's
// board or every figure moves.
func TestExynos5250Pinned(t *testing.T) {
	s, err := maligo.LookupDevice("exynos5250")
	if err != nil {
		t.Fatal(err)
	}
	if s != maligo.DefaultDevice() {
		t.Error("exynos5250 is not the default device")
	}
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"cpu.freq_hz", s.CPU.FreqHz, 1.7e9},
		{"cpu.cores", float64(s.CPU.Cores), 2},
		{"gpu.freq_hz", s.GPU.FreqHz, 533e6},
		{"gpu.cores", float64(s.GPU.Cores), 4},
		{"dram.peak_bandwidth", s.DRAM.PeakBandwidth, 12.8e9},
		{"dram.efficiency", s.DRAM.Efficiency, 0.72},
		{"dram.bandwidth", s.DRAM.Bandwidth, 12.8e9 * 0.72},
		{"meter.sample_hz", s.Meter.SampleHz, 10.0},
		{"power.board_static", s.Power.BoardStatic, 2.10},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	if s.CPU.Name != "Cortex-A15" || s.GPU.Name != "Mali-T604" {
		t.Errorf("unit names drifted: %q / %q", s.CPU.Name, s.GPU.Name)
	}
	if len(s.CPU.DVFS) < 2 || len(s.GPU.DVFS) < 2 {
		t.Errorf("DVFS ladders too short: cpu %d, gpu %d", len(s.CPU.DVFS), len(s.GPU.DVFS))
	}
}

// TestFleetShape guards the acceptance floor: at least three
// registered device models, each with at least two operating points
// per unit, including an A7 LITTLE cluster and a T628-class GPU.
func TestFleetShape(t *testing.T) {
	devs := maligo.Devices()
	if len(devs) < 3 {
		t.Fatalf("fleet has %d devices, want >= 3 (%v)", len(devs), maligo.DeviceNames())
	}
	var haveA7, haveT628 bool
	for _, s := range devs {
		if len(s.CPU.DVFS) < 2 {
			t.Errorf("%s: CPU ladder has %d points, want >= 2", s.Name, len(s.CPU.DVFS))
		}
		if len(s.GPU.DVFS) < 2 {
			t.Errorf("%s: GPU ladder has %d points, want >= 2", s.Name, len(s.GPU.DVFS))
		}
		if s.CPU.Name == "Cortex-A7" {
			haveA7 = true
		}
		if strings.HasPrefix(s.GPU.Name, "Mali-T628") {
			haveT628 = true
		}
	}
	if !haveA7 {
		t.Error("no Cortex-A7 LITTLE cluster in the fleet")
	}
	if !haveT628 {
		t.Error("no Mali-T628-class GPU in the fleet")
	}
}

// TestErrUnknownDevice pins the typed unknown-device error across the
// entry points: the facade lookup (which the malisim and figures
// -device flags call), the autotuner, and malid server startup.
func TestErrUnknownDevice(t *testing.T) {
	if _, err := maligo.LookupDevice("vax-11"); !errors.Is(err, maligo.ErrUnknownDevice) {
		t.Errorf("LookupDevice: got %v, want ErrUnknownDevice", err)
	}
	if _, err := maligo.Autotune(maligo.TuneSpace{Bench: "vecop", Devices: []string{"vax-11"}}); !errors.Is(err, maligo.ErrUnknownDevice) {
		t.Errorf("Autotune: got %v, want ErrUnknownDevice", err)
	}
	if _, err := maligo.NewServer(maligo.ServerConfig{Device: "vax-11"}); !errors.Is(err, maligo.ErrUnknownDevice) {
		t.Errorf("NewServer: got %v, want ErrUnknownDevice", err)
	}
	// The error names the registered fleet, so a typo is self-serving.
	_, err := maligo.LookupDevice("vax-11")
	for _, name := range maligo.DeviceNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list registered device %q", err, name)
		}
	}
}

// TestWithSoCFacade runs a Platform on a non-default board through
// the public API and checks the device views took the fleet model.
func TestWithSoCFacade(t *testing.T) {
	soc, err := maligo.LookupDevice("exynos5422")
	if err != nil {
		t.Fatal(err)
	}
	p := maligo.NewPlatform(maligo.WithSoC(soc), maligo.WithWorkers(1))
	defer p.Close()
	if name := p.Mali().Name(); !strings.Contains(name, "T628") {
		t.Errorf("Mali() = %q, want a T628 view", name)
	}
	if name := p.CPUDual().Name(); !strings.Contains(name, "Cortex-A7") {
		t.Errorf("CPUDual() = %q, want the A7 cluster", name)
	}
}

// TestServerDevice checks a malid server reports its configured board
// and defaults to the Exynos 5250.
func TestServerDevice(t *testing.T) {
	srv, err := maligo.NewServer(maligo.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if got := srv.Device().Name; got != maligo.DefaultDeviceName {
		t.Errorf("default daemon device = %q, want %q", got, maligo.DefaultDeviceName)
	}
	srv2, err := maligo.NewServer(maligo.ServerConfig{Device: "exynos5422-big"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if got := srv2.Device().Name; got != "exynos5422-big" {
		t.Errorf("daemon device = %q, want exynos5422-big", got)
	}
}
