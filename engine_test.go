package maligo_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"

	"maligo"
)

// TestParseEngineTable pins the engine-name grammar shared by the
// malisim/malid -engine flags and the MALIGO_ENGINE variable: every
// accepted spelling, and the typed ErrUnknownEngine for everything
// else — never a silent fall-back.
func TestParseEngineTable(t *testing.T) {
	cases := []struct {
		in   string
		want maligo.Engine
		ok   bool
	}{
		{"", maligo.EngineAuto, true},
		{"auto", maligo.EngineAuto, true},
		{"interp", maligo.EngineInterp, true},
		{"interpreter", maligo.EngineInterp, true},
		{"compiled", maligo.EngineCompiled, true},
		{"lanes", maligo.EngineLanes, true},
		{"lane", maligo.EngineLanes, true},
		{"simt", maligo.EngineLanes, true},
		{"LANES", maligo.EngineLanes, true},
		{" compiled ", maligo.EngineCompiled, true},
		{"fast", 0, false},
		{"interp2", 0, false},
		{"lanes,compiled", 0, false},
		{"gpu", 0, false},
	}
	for _, c := range cases {
		got, err := maligo.ParseEngine(c.in)
		if c.ok {
			if err != nil || got != c.want {
				t.Errorf("ParseEngine(%q) = %v, %v; want %v, nil", c.in, got, err, c.want)
			}
			continue
		}
		if err == nil {
			t.Errorf("ParseEngine(%q) accepted an invalid name as %v", c.in, got)
			continue
		}
		if !errors.Is(err, maligo.ErrUnknownEngine) {
			t.Errorf("ParseEngine(%q) error %v is not ErrUnknownEngine", c.in, err)
		}
	}
}

// TestEngineFromEnvStrict checks the startup-time MALIGO_ENGINE
// validation both daemons run: valid values parse, invalid values are
// a typed startup error while the lenient reader still degrades to
// auto for run-time callers.
func TestEngineFromEnvStrict(t *testing.T) {
	t.Setenv("MALIGO_ENGINE", "lanes")
	if got, err := maligo.EngineFromEnvStrict(); err != nil || got != maligo.EngineLanes {
		t.Fatalf("strict(lanes) = %v, %v", got, err)
	}

	t.Setenv("MALIGO_ENGINE", "warp")
	if _, err := maligo.EngineFromEnvStrict(); !errors.Is(err, maligo.ErrUnknownEngine) {
		t.Fatalf("strict(warp) err = %v, want ErrUnknownEngine", err)
	}
	if got := maligo.EngineFromEnv(); got != maligo.EngineAuto {
		t.Fatalf("lenient(warp) = %v, want EngineAuto", got)
	}

	t.Setenv("MALIGO_ENGINE", "")
	if got, err := maligo.EngineFromEnvStrict(); err != nil || got != maligo.EngineAuto {
		t.Fatalf("strict(unset) = %v, %v", got, err)
	}
}

// TestWithEngineEndToEnd drives the façade with every engine and
// requires bit-identical output and measurement — the root-package leg
// of the 3-way differential contract.
func TestWithEngineEndToEnd(t *testing.T) {
	run := func(eng maligo.Engine) ([]byte, maligo.Measurement) {
		const n = 1 << 10
		p := maligo.NewPlatform(maligo.WithWorkers(1), maligo.WithEngine(eng))
		defer p.Close()
		ctx := p.Context
		prog := ctx.CreateProgramWithSource(saxpySrc)
		if err := prog.Build(""); err != nil {
			t.Fatalf("build: %v\n%s", err, prog.BuildLog())
		}
		kernel, err := prog.CreateKernel("saxpy")
		if err != nil {
			t.Fatal(err)
		}
		host := make([]byte, n*4)
		for i := range host {
			host[i] = byte(i * 7)
		}
		bufX, err := ctx.CreateBuffer(maligo.MemReadOnly|maligo.MemCopyHostPtr, n*4, host)
		if err != nil {
			t.Fatal(err)
		}
		bufY, err := ctx.CreateBuffer(maligo.MemReadWrite|maligo.MemCopyHostPtr, n*4, host)
		if err != nil {
			t.Fatal(err)
		}
		kernel.SetArgBuffer(0, bufX)
		kernel.SetArgBuffer(1, bufY)
		kernel.SetArgFloat(2, 1.5)
		kernel.SetArgInt(3, n)
		q := ctx.CreateCommandQueue(p.Mali())
		if _, err := q.EnqueueNDRangeKernel(kernel, 1, []int{n}, []int{64}); err != nil {
			t.Fatalf("enqueue: %v", err)
		}
		q.Finish()
		meas, _ := p.Measure(q)
		out := make([]byte, n*4)
		if _, err := q.EnqueueReadBuffer(bufY, 0, out); err != nil {
			t.Fatal(err)
		}
		return out, meas
	}

	refOut, refMeas := run(maligo.EngineInterp)
	for _, eng := range []maligo.Engine{maligo.EngineCompiled, maligo.EngineLanes} {
		out, meas := run(eng)
		for i := range refOut {
			if out[i] != refOut[i] {
				t.Fatalf("%v: output differs from interp at byte %d", eng, i)
			}
		}
		if meas != refMeas {
			t.Errorf("%v: measurement differs:\n interp: %+v\n got:    %+v", eng, refMeas, meas)
		}
	}
}

// TestExperimentsEngineIdentity is the malisim leg: RunExperiments —
// the exact path malisim drives after its -engine flag parses — must
// produce identical simulated cells under every engine (only
// HostSeconds, the host wall-clock, may move).
func TestExperimentsEngineIdentity(t *testing.T) {
	run := func(eng maligo.Engine) *maligo.Results {
		cfg := maligo.DefaultExperimentConfig()
		cfg.Scale = 0.1
		cfg.Benchmarks = []string{"2dcon"}
		cfg.Precisions = []maligo.Precision{maligo.F32}
		cfg.Workers = 1
		cfg.Engine = eng
		res, err := maligo.RunExperiments(cfg)
		if err != nil {
			t.Fatalf("RunExperiments(%v): %v", eng, err)
		}
		return res
	}
	ref := run(maligo.EngineInterp)
	for _, eng := range []maligo.Engine{maligo.EngineCompiled, maligo.EngineLanes} {
		res := run(eng)
		for key, rc := range ref.Cells {
			gc := res.Cells[key]
			if gc == nil || rc.Supported != gc.Supported {
				t.Fatalf("%v: %s: cell mismatch", eng, key)
			}
			if !rc.Supported {
				continue
			}
			if rc.Seconds != gc.Seconds || rc.Power != gc.Power || rc.Activity != gc.Activity {
				t.Errorf("%v: %s: simulated results differ from interp", eng, key)
			}
		}
	}
}

// TestServerEngineIdentity is the malid leg: a daemon configured with
// each engine must serve byte-identical job results. (malid's -engine
// flag parses with ParseEngine and lands in ServerConfig.Runtime.Engine
// — this drives that exact path.)
func TestServerEngineIdentity(t *testing.T) {
	run := func(eng maligo.Engine) []byte {
		cfg := maligo.ServerConfig{}
		cfg.Runtime.Workers = 1
		cfg.Runtime.Engine = eng
		srv, err := maligo.NewServer(cfg)
		if err != nil {
			t.Fatalf("NewServer(%v): %v", eng, err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer func() { ts.Close(); srv.Close() }()
		client := maligo.NewClient(ts.URL, ts.Client())

		spec := maligo.JobMixSpecs()[0]
		res, err := client.RunJob(context.Background(), spec)
		if err != nil {
			t.Fatalf("RunJob(%v): %v", eng, err)
		}
		b, _ := json.Marshal(res)
		return b
	}
	ref := run(maligo.EngineInterp)
	for _, eng := range []maligo.Engine{maligo.EngineCompiled, maligo.EngineLanes} {
		if got := run(eng); string(got) != string(ref) {
			t.Errorf("%v: served job result differs from interp:\n interp: %s\n got:    %s", eng, ref, got)
		}
	}
}
