package maligo

import (
	"io"

	"maligo/internal/cl"
	"maligo/internal/core"
	"maligo/internal/device"
	"maligo/internal/job"
	"maligo/internal/obs"
	"maligo/internal/power"
	"maligo/internal/service"
	"maligo/internal/vm"
)

// The OpenCL-style runtime surface, re-exported as type aliases so the
// full method set of each handle is public without delegation
// wrappers. A Platform's Context field hands out all of these.
type (
	// Context owns the unified memory arena and the engine worker
	// pool; it creates buffers, programs and queues.
	Context = cl.Context
	// Buffer is a cl_mem buffer object over unified memory.
	Buffer = cl.Buffer
	// Program is a compiled OpenCL C program.
	Program = cl.Program
	// Kernel is a kernel object with bound arguments.
	Kernel = cl.Kernel
	// Queue is a command queue bound to one device — in-order by
	// default, out-of-order with QueueOutOfOrderExec.
	Queue = cl.CommandQueue
	// QueueProps mirror cl_command_queue_properties.
	QueueProps = cl.QueueProps
	// Event records the outcome of one enqueued command.
	Event = cl.Event
	// MemFlags mirror cl_mem_flags.
	MemFlags = cl.MemFlags
	// DeviceInfo mirrors clGetDeviceInfo.
	DeviceInfo = cl.DeviceInfo
	// KernelWorkGroupInfo mirrors clGetKernelWorkGroupInfo.
	KernelWorkGroupInfo = cl.KernelWorkGroupInfo
	// ProfilingInfo mirrors clGetEventProfilingInfo.
	ProfilingInfo = cl.ProfilingInfo

	// Device is the execution-device abstraction (CPU cluster views
	// and the Mali GPU implement it).
	Device = device.Device
	// Report is the timing/activity outcome of one enqueue.
	Report = device.Report

	// Measurement is the outcome of a metered experiment on the
	// simulated Yokogawa WT230.
	Measurement = power.Measurement
	// Activity summarizes what the SoC did during a measured region.
	Activity = power.Activity
	// Meter is the simulated power meter.
	Meter = power.Meter

	// RunKind tells MeasureKind which units were active.
	RunKind = core.RunKind

	// The observability surface: metrics the runtime accumulates on
	// every enqueue, queue timelines for trace export, and the
	// pprof-style hot-line profile.

	// MetricsRegistry is a context's live metric registry
	// (Context.Metrics hands one out).
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a frozen, serializable view of a registry.
	MetricsSnapshot = obs.Snapshot
	// Span is one command on a queue timeline, the unit of trace
	// export (Queue.Timeline produces them).
	Span = obs.Span
	// LineStat is one source line's share of the memory traffic in a
	// hot-line profile.
	LineStat = vm.LineStat
	// LineProfiler accumulates hot-line profiles across enqueues
	// (Queue.LineProfile hands one out after Queue.SetLineProfile).
	LineProfiler = vm.LineProfiler

	// Engine selects the VM execution engine: EngineInterp is the
	// reference switch-dispatch interpreter (the oracle), EngineCompiled
	// the closure-compiled fast path, EngineLanes the lock-step
	// lane-batched SIMT executor. All three are bit-identical in every
	// observable (results, reports, traces, profiles); only host
	// wall-clock differs.
	Engine = vm.Engine
)

// Buffer creation flags.
const (
	MemReadWrite      = cl.MemReadWrite
	MemReadOnly       = cl.MemReadOnly
	MemWriteOnly      = cl.MemWriteOnly
	MemUseHostPtr     = cl.MemUseHostPtr
	MemAllocHostPtr   = cl.MemAllocHostPtr
	MemCopyHostPtr    = cl.MemCopyHostPtr
	DefaultArenaBytes = cl.DefaultArenaBytes
)

// Run kinds for MeasureKind.
const (
	CPURun = core.CPURun
	GPURun = core.GPURun
)

// Queue properties for CreateCommandQueueWith.
const (
	// QueueOutOfOrderExec creates an out-of-order queue: commands only
	// order through their event wait-lists (and barriers), like
	// CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE.
	QueueOutOfOrderExec = cl.QueueOutOfOrderExec
)

// Typed errors of the asynchronous queue contract.
var (
	// ErrContextClosed reports an enqueue or Finish on a closed context.
	ErrContextClosed = cl.ErrContextClosed
	// ErrEventCycle reports a wait-list cycle at submit.
	ErrEventCycle = cl.ErrEventCycle
	// ErrDoubleWait reports a duplicated wait-list entry.
	ErrDoubleWait = cl.ErrDoubleWait
	// ErrOrphanEvent reports a wait that can never finish because an
	// incomplete user event gates it.
	ErrOrphanEvent = cl.ErrOrphanEvent
	// ErrForeignEvent reports a wait-list event from another context.
	ErrForeignEvent = cl.ErrForeignEvent
	// ErrNotUserEvent reports SetComplete/SetError on a non-user event.
	ErrNotUserEvent = cl.ErrNotUserEvent
	// ErrEventComplete reports a second SetComplete/SetError.
	ErrEventComplete = cl.ErrEventComplete
	// ErrEventDepFailed marks events failed because a dependency failed.
	ErrEventDepFailed = cl.ErrEventDepFailed
)

// Typed errors of the OpenCL-style runtime surface, in the spirit of
// the CL status codes. Re-exported so callers errors.Is against the
// root package instead of importing internals.
var (
	// ErrInvalidArgIndex reports SetArg* beyond the parameter count.
	ErrInvalidArgIndex = cl.ErrInvalidArgIndex
	// ErrInvalidArgValue reports a type-mismatched argument binding or
	// contradictory buffer flags.
	ErrInvalidArgValue = cl.ErrInvalidArgValue
	// ErrInvalidKernelArgs reports an enqueue with unbound arguments.
	ErrInvalidKernelArgs = cl.ErrInvalidKernelArgs
	// ErrInvalidBufferSize reports CreateBuffer with size <= 0.
	ErrInvalidBufferSize = cl.ErrInvalidBufferSize
	// ErrBuildFailure wraps compiler diagnostics from Program.Build.
	ErrBuildFailure = cl.ErrBuildFailure
	// ErrKernelNotFound reports CreateKernel with an unknown name.
	ErrKernelNotFound = cl.ErrKernelNotFound
	// ErrMapFailure reports a Map/Bytes range outside the buffer.
	ErrMapFailure = cl.ErrMapFailure
)

// Typed errors of the serving layer (malid). ErrInvalidJob rejects a
// malformed JobSpec; ErrTenantQuota and ErrUnknownJob surface the
// admission quota (HTTP 429) and the bounded job history (HTTP 404).
// The Client maps wire error codes back onto these, so errors.Is
// works identically in-process and over HTTP.
var (
	ErrInvalidJob  = job.ErrInvalidJob
	ErrTenantQuota = service.ErrTenantQuota
	ErrUnknownJob  = service.ErrUnknownJob
	// ErrAnalysisFailed reports a program rejected by the daemon's
	// static-analysis admission gate (HTTP 422, code "analysis_failed").
	ErrAnalysisFailed = service.ErrAnalysisFailed
)

// Analysis admission policies for ServerConfig.Analysis (and the
// malid -analysis flag): "off", "warn" (default) or "error".
const (
	AnalysisOff   = service.AnalysisOff
	AnalysisWarn  = service.AnalysisWarn
	AnalysisError = service.AnalysisError
)

// VM execution engines (see Engine).
const (
	EngineAuto     = vm.EngineAuto
	EngineInterp   = vm.EngineInterp
	EngineCompiled = vm.EngineCompiled
	EngineLanes    = vm.EngineLanes
)

// ErrUnknownEngine reports an engine name ParseEngine does not know;
// the malisim/malid -engine flags and strict MALIGO_ENGINE validation
// surface it instead of silently falling back.
var ErrUnknownEngine = vm.ErrUnknownEngine

// ParseEngine parses an engine name: "auto" (or empty), "interp" /
// "interpreter", "compiled", "lanes" (or "simt"). The malisim, malid
// and figures -engine flags accept the same names, as does the
// MALIGO_ENGINE environment variable. Unknown names return an error
// wrapping ErrUnknownEngine.
func ParseEngine(s string) (Engine, error) { return vm.ParseEngine(s) }

// EngineFromEnv returns the engine selected by the MALIGO_ENGINE
// environment variable, or EngineAuto when unset or unparsable.
func EngineFromEnv() Engine { return vm.EngineFromEnv() }

// EngineFromEnvStrict is EngineFromEnv that rejects a set-but-invalid
// MALIGO_ENGINE with an ErrUnknownEngine-wrapping error instead of
// silently running the default engine; the daemons validate startup
// configuration with it.
func EngineFromEnvStrict() (Engine, error) { return vm.EngineFromEnvStrict() }

// ContextOption is the old name of the option type NewContext takes.
//
// Deprecated: use Option — NewPlatform and NewContext now share one
// option vocabulary (WithDevices, WithArenaBytes, WithWorkers,
// WithEngine, WithAsyncQueues).
type ContextOption = Option

// NewContext creates a standalone context from the same functional
// options NewPlatform takes (WithDevices, WithArenaBytes,
// WithWorkers, WithEngine, WithAsyncQueues; meter options are
// ignored) for callers that don't want a full Platform.
func NewContext(opts ...Option) *Context {
	var c config
	for _, opt := range opts {
		opt(&c)
	}
	clOpts := []cl.ContextOption{
		cl.WithArenaBytes(c.opts.ArenaBytes),
		cl.WithWorkers(c.opts.Workers),
		cl.WithEngine(c.opts.Engine),
		cl.WithAsyncQueues(c.opts.AsyncQueues),
	}
	if len(c.devices) > 0 {
		clOpts = append(clOpts, cl.WithDevices(c.devices...))
	}
	return cl.NewContextWith(clOpts...)
}

// ContextDevices sets a standalone context's devices.
//
// Deprecated: use WithDevices.
func ContextDevices(devices ...Device) Option { return WithDevices(devices...) }

// ContextArenaBytes sets a standalone context's memory capacity.
//
// Deprecated: use WithArenaBytes.
func ContextArenaBytes(n int64) Option { return WithArenaBytes(n) }

// ContextWorkers sets a standalone context's engine worker count.
//
// Deprecated: use WithWorkers.
func ContextWorkers(n int) Option { return WithWorkers(n) }

// ContextEngine selects a standalone context's VM execution engine.
//
// Deprecated: use WithEngine.
func ContextEngine(e Engine) Option { return WithEngine(e) }

// ContextAsyncQueues routes a standalone context's queues through the
// DAG command scheduler.
//
// Deprecated: use WithAsyncQueues.
func ContextAsyncQueues(on bool) Option { return WithAsyncQueues(on) }

// EnqueueAsync launches a kernel after every wait-list event completes
// and returns a pending event immediately — the façade spelling of
// Queue.EnqueueNDRangeKernelAsync.
func EnqueueAsync(q *Queue, k *Kernel, workDim int, global, local []int, waitList ...*Event) (*Event, error) {
	return q.EnqueueNDRangeKernelAsync(k, workDim, global, local, waitList)
}

// WaitForEvents mirrors clWaitForEvents: it blocks until every event
// completes and returns the first execution error in list order.
func WaitForEvents(events ...*Event) error { return cl.WaitForEvents(events...) }

// GetDeviceInfo mirrors clGetDeviceInfo for any platform device.
func GetDeviceInfo(d Device) DeviceInfo { return cl.GetDeviceInfo(d) }

// NewMeter creates a standalone power meter with the default 10 Hz
// sampling rate; NewMeterRate sets a custom rate.
func NewMeter(seed uint64) *Meter { return power.NewMeter(seed) }

// NewMeterRate creates a power meter sampling at hz.
func NewMeterRate(seed uint64, hz float64) *Meter { return power.NewMeterRate(seed, hz) }

// WriteChromeTrace writes timeline spans (from Queue.Timeline, or a
// harness Cell's Timeline) in the Chrome tracing JSON format loadable
// by chrome://tracing and https://ui.perfetto.dev. Output is
// deterministic for a given span slice.
func WriteChromeTrace(w io.Writer, spans []Span) error { return obs.WriteChromeTrace(w, spans) }

// FormatHotLines renders a hot-line profile (Queue.LineProfile().Top)
// as a pprof-style top report, annotated with the kernel source text
// when source is non-empty.
func FormatHotLines(stats []LineStat, source string) string {
	return vm.FormatHotLines(stats, source)
}
