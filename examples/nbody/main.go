// N-body example: a multi-step gravitational simulation on the
// simulated Mali-T604, comparing the naive scalar kernel with the
// vectorized one and tracking system momentum as a physics sanity
// check. It mirrors the workload the paper's nbody benchmark models.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"maligo"
)

const src = `
#define EPS  0.0001f
#define DT   0.005f

__kernel void step_naive(__global const float* body,
                         __global const float* vel,
                         __global float* bodyOut,
                         __global float* velOut,
                         const int n) {
    int i = (int)get_global_id(0);
    float xi = body[4 * i];
    float yi = body[4 * i + 1];
    float zi = body[4 * i + 2];
    float ax = 0.0f;
    float ay = 0.0f;
    float az = 0.0f;
    for (int j = 0; j < n; j++) {
        float dx = body[4 * j] - xi;
        float dy = body[4 * j + 1] - yi;
        float dz = body[4 * j + 2] - zi;
        float r2 = dx * dx + dy * dy + dz * dz + EPS;
        float inv = rsqrt(r2);
        float f = body[4 * j + 3] * inv * inv * inv;
        ax += f * dx;
        ay += f * dy;
        az += f * dz;
    }
    float vx = vel[3 * i] + ax * DT;
    float vy = vel[3 * i + 1] + ay * DT;
    float vz = vel[3 * i + 2] + az * DT;
    velOut[3 * i] = vx;
    velOut[3 * i + 1] = vy;
    velOut[3 * i + 2] = vz;
    bodyOut[4 * i] = xi + vx * DT;
    bodyOut[4 * i + 1] = yi + vy * DT;
    bodyOut[4 * i + 2] = zi + vz * DT;
    bodyOut[4 * i + 3] = body[4 * i + 3];
}

__kernel void step_vec(__global const float* restrict body,
                       __global const float* restrict vel,
                       __global float* restrict bodyOut,
                       __global float* restrict velOut,
                       const int n) {
    int i = (int)get_global_id(0);
    float4 bi = vload4(i, body);
    float ax = 0.0f;
    float ay = 0.0f;
    float az = 0.0f;
    for (int j = 0; j < n; j++) {
        float4 bj = vload4(j, body);
        float dx = bj.x - bi.x;
        float dy = bj.y - bi.y;
        float dz = bj.z - bi.z;
        float r2 = dx * dx + dy * dy + dz * dz + EPS;
        float inv = rsqrt(r2);
        float f = bj.w * inv * inv * inv;
        ax = mad(f, dx, ax);
        ay = mad(f, dy, ay);
        az = mad(f, dz, az);
    }
    float vx = vel[3 * i] + ax * DT;
    float vy = vel[3 * i + 1] + ay * DT;
    float vz = vel[3 * i + 2] + az * DT;
    velOut[3 * i] = vx;
    velOut[3 * i + 1] = vy;
    velOut[3 * i + 2] = vz;
    float4 po = (float4)(bi.x + vx * DT, bi.y + vy * DT, bi.z + vz * DT, bi.w);
    vstore4(po, i, bodyOut);
}
`

const (
	nBodies = 1024
	steps   = 4
)

func main() {
	p := maligo.NewPlatform()
	ctx := p.Context
	prog := ctx.CreateProgramWithSource(src)
	if err := prog.Build(""); err != nil {
		log.Fatalf("build: %v", err)
	}
	q := ctx.CreateCommandQueue(p.Mali())

	// Two position/velocity buffer pairs, ping-ponged between steps.
	var body, vel [2]*maligo.Buffer
	var err error
	for s := 0; s < 2; s++ {
		if body[s], err = ctx.CreateBuffer(maligo.MemReadWrite|maligo.MemAllocHostPtr, nBodies*4*4, nil); err != nil {
			log.Fatal(err)
		}
		if vel[s], err = ctx.CreateBuffer(maligo.MemReadWrite|maligo.MemAllocHostPtr, nBodies*3*4, nil); err != nil {
			log.Fatal(err)
		}
	}
	initBodies(body[0], vel[0])

	for _, kname := range []string{"step_naive", "step_vec"} {
		initBodies(body[0], vel[0])
		k, err := prog.CreateKernel(kname)
		if err != nil {
			log.Fatal(err)
		}
		q.ResetEvents()
		cur := 0
		for s := 0; s < steps; s++ {
			next := 1 - cur
			must(k.SetArgBuffer(0, body[cur]))
			must(k.SetArgBuffer(1, vel[cur]))
			must(k.SetArgBuffer(2, body[next]))
			must(k.SetArgBuffer(3, vel[next]))
			must(k.SetArgInt(4, nBodies))
			if _, err := q.EnqueueNDRangeKernel(k, 1, []int{nBodies}, []int{128}); err != nil {
				log.Fatal(err)
			}
			cur = next
		}
		q.Finish()
		m, _ := p.Measure(q)
		px, py, pz := momentum(body[cur], vel[cur])
		fmt.Printf("%-11s %d bodies x %d steps: %7.3f ms, %.2f W, %.4f J,  |p| = %.3e\n",
			kname, nBodies, steps, q.TotalSeconds()*1000, m.MeanPowerW, m.EnergyJ,
			math.Sqrt(px*px+py*py+pz*pz))
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// initBodies places bodies deterministically on a perturbed shell.
func initBodies(body, vel *maligo.Buffer) {
	bb, err := body.Bytes(0, int64(nBodies*4*4))
	if err != nil {
		log.Fatal(err)
	}
	vb, err := vel.Bytes(0, int64(nBodies*3*4))
	if err != nil {
		log.Fatal(err)
	}
	seed := uint64(42)
	next := func() float64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return float64(seed>>11) / float64(1<<53)
	}
	putF := func(b []byte, i int, v float64) {
		binary.LittleEndian.PutUint32(b[i*4:], math.Float32bits(float32(v)))
	}
	for i := 0; i < nBodies; i++ {
		theta := 2 * math.Pi * next()
		phi := math.Acos(2*next() - 1)
		r := 1 + 0.1*next()
		putF(bb, 4*i, r*math.Sin(phi)*math.Cos(theta))
		putF(bb, 4*i+1, r*math.Sin(phi)*math.Sin(theta))
		putF(bb, 4*i+2, r*math.Cos(phi))
		putF(bb, 4*i+3, 1.0/nBodies)
		for c := 0; c < 3; c++ {
			putF(vb, 3*i+c, 0)
		}
	}
}

// momentum sums m·v over all bodies; it should stay near zero for a
// symmetric system (the forces are equal and opposite).
func momentum(body, vel *maligo.Buffer) (px, py, pz float64) {
	bb, _ := body.Bytes(0, int64(nBodies*4*4))
	vb, _ := vel.Bytes(0, int64(nBodies*3*4))
	getF := func(b []byte, i int) float64 {
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:])))
	}
	for i := 0; i < nBodies; i++ {
		m := getF(bb, 4*i+3)
		px += m * getF(vb, 3*i)
		py += m * getF(vb, 3*i+1)
		pz += m * getF(vb, 3*i+2)
	}
	return
}
