// Autotune example: the paper's §III-B "Vector Sizes" advice made
// executable — "whenever the code allows it, experiment with different
// vector sizes (e.g. size of 4, 8, 16)" and tune the work-group size
// rather than trusting the driver default. This program sweeps vector
// width x work-group size for a streaming triad kernel on the
// simulated Mali-T604 and prints the full grid with the winner.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"maligo"
)

// One kernel per vector width; width 1 is the scalar baseline.
const src = `
__kernel void triad1(__global const float* restrict a,
                     __global const float* restrict b,
                     __global float* restrict c,
                     const float s) {
    size_t i = get_global_id(0);
    c[i] = a[i] + s * b[i];
}

__kernel void triad2(__global const float* restrict a,
                     __global const float* restrict b,
                     __global float* restrict c,
                     const float s) {
    size_t i = get_global_id(0);
    float2 va = vload2(i, a);
    float2 vb = vload2(i, b);
    vstore2(va + (float2)(s) * vb, i, c);
}

__kernel void triad4(__global const float* restrict a,
                     __global const float* restrict b,
                     __global float* restrict c,
                     const float s) {
    size_t i = get_global_id(0);
    float4 va = vload4(i, a);
    float4 vb = vload4(i, b);
    vstore4(va + (float4)(s) * vb, i, c);
}

__kernel void triad8(__global const float* restrict a,
                     __global const float* restrict b,
                     __global float* restrict c,
                     const float s) {
    size_t i = get_global_id(0);
    float8 va = vload8(i, a);
    float8 vb = vload8(i, b);
    vstore8(va + (float8)(s) * vb, i, c);
}

__kernel void triad16(__global const float* restrict a,
                      __global const float* restrict b,
                      __global float* restrict c,
                      const float s) {
    size_t i = get_global_id(0);
    float16 va = vload16(i, a);
    float16 vb = vload16(i, b);
    vstore16(va + (float16)(s) * vb, i, c);
}
`

const n = 1 << 19

func main() {
	p := maligo.NewPlatform()
	ctx := p.Context
	prog := ctx.CreateProgramWithSource(src)
	if err := prog.Build(""); err != nil {
		log.Fatalf("build: %v", err)
	}

	bufA := mustBuf(ctx, n*4)
	bufB := mustBuf(ctx, n*4)
	bufC := mustBuf(ctx, n*4)
	fill(bufA, 1)
	fill(bufB, 2)

	q := ctx.CreateCommandQueue(p.Mali())
	widths := []int{1, 2, 4, 8, 16}
	wgs := []int{32, 64, 128, 256}

	fmt.Printf("triad c = a + s*b, n = %d floats on %s\n\n", n, p.Mali().Name())
	fmt.Printf("%8s", "width\\wg")
	for _, wg := range wgs {
		fmt.Printf(" %9d", wg)
	}
	fmt.Println("   (ms per launch)")

	best := math.Inf(1)
	var bestW, bestWG int
	for _, w := range widths {
		kname := fmt.Sprintf("triad%d", w)
		k, err := prog.CreateKernel(kname)
		if err != nil {
			log.Fatal(err)
		}
		must(k.SetArgBuffer(0, bufA))
		must(k.SetArgBuffer(1, bufB))
		must(k.SetArgBuffer(2, bufC))
		must(k.SetArgFloat(3, 3.0))
		fmt.Printf("%8d", w)
		for _, wg := range wgs {
			global := n / w
			// Warm-up then measure, like the harness does.
			if _, err := q.EnqueueNDRangeKernel(k, 1, []int{global}, []int{wg}); err != nil {
				log.Fatal(err)
			}
			q.ResetEvents()
			ev, err := q.EnqueueNDRangeKernel(k, 1, []int{global}, []int{wg})
			if err != nil {
				log.Fatal(err)
			}
			ms := ev.Seconds * 1000
			fmt.Printf(" %9.3f", ms)
			if ev.Seconds < best {
				best, bestW, bestWG = ev.Seconds, w, wg
			}
		}
		fmt.Println()
	}

	// Driver-default local size for comparison (the §III-A trap).
	k, _ := prog.CreateKernel("triad1")
	must(k.SetArgBuffer(0, bufA))
	must(k.SetArgBuffer(1, bufB))
	must(k.SetArgBuffer(2, bufC))
	must(k.SetArgFloat(3, 3.0))
	q.ResetEvents()
	ev, err := q.EnqueueNDRangeKernel(k, 1, []int{n}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscalar kernel with driver-default local size: %.3f ms\n", ev.Seconds*1000)
	fmt.Printf("best: width %d, work-group %d -> %.3f ms (%.1fx over driver default)\n",
		bestW, bestWG, best*1000, ev.Seconds/best)
	verify(bufA, bufB, bufC)
	fmt.Println("verified: c = a + 3b for all elements")
}

func mustBuf(ctx *maligo.Context, size int64) *maligo.Buffer {
	b, err := ctx.CreateBuffer(maligo.MemReadWrite|maligo.MemAllocHostPtr, size, nil)
	if err != nil {
		log.Fatal(err)
	}
	return b
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func fill(buf *maligo.Buffer, base float32) {
	raw, err := buf.Bytes(0, n*4)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(base+float32(i%97)))
	}
}

func verify(bufA, bufB, bufC *maligo.Buffer) {
	a, _ := bufA.Bytes(0, n*4)
	b, _ := bufB.Bytes(0, n*4)
	c, _ := bufC.Bytes(0, n*4)
	for i := 0; i < n; i++ {
		av := math.Float32frombits(binary.LittleEndian.Uint32(a[i*4:]))
		bv := math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
		cv := math.Float32frombits(binary.LittleEndian.Uint32(c[i*4:]))
		if cv != av+3*bv {
			log.Fatalf("mismatch at %d: %v != %v", i, cv, av+3*bv)
		}
	}
}
