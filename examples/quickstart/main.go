// Quickstart: compile an OpenCL C kernel, run it on the simulated
// Mali-T604, and read the result through a zero-copy mapping — the
// host-code pattern the paper's §III-A recommends (ALLOC_HOST_PTR +
// map/unmap instead of explicit copies).
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"maligo"
)

const kernelSrc = `
__kernel void saxpy(__global const float* x,
                    __global float* y,
                    const float a,
                    const uint n) {
    size_t i = get_global_id(0);
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}
`

func main() {
	p := maligo.NewPlatform()
	ctx := p.Context

	prog := ctx.CreateProgramWithSource(kernelSrc)
	if err := prog.Build(""); err != nil {
		log.Fatalf("build: %v\n%s", err, prog.BuildLog())
	}
	kernel, err := prog.CreateKernel("saxpy")
	if err != nil {
		log.Fatal(err)
	}

	const n = 1 << 16
	bufX, err := ctx.CreateBuffer(maligo.MemReadOnly|maligo.MemAllocHostPtr, n*4, nil)
	if err != nil {
		log.Fatal(err)
	}
	bufY, err := ctx.CreateBuffer(maligo.MemReadWrite|maligo.MemAllocHostPtr, n*4, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Zero-copy initialization through a mapping (no clEnqueueWrite
	// copies — the Mali-recommended path).
	q := ctx.CreateCommandQueue(p.Mali())
	xs, _, err := q.EnqueueMapBuffer(bufX, 0, n*4)
	if err != nil {
		log.Fatal(err)
	}
	ys, _, err := q.EnqueueMapBuffer(bufY, 0, n*4)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(xs[i*4:], math.Float32bits(float32(i)))
		binary.LittleEndian.PutUint32(ys[i*4:], math.Float32bits(1))
	}
	q.EnqueueUnmapMemObject(bufX)
	q.EnqueueUnmapMemObject(bufY)
	q.ResetEvents()

	if err := kernel.SetArgBuffer(0, bufX); err != nil {
		log.Fatal(err)
	}
	if err := kernel.SetArgBuffer(1, bufY); err != nil {
		log.Fatal(err)
	}
	if err := kernel.SetArgFloat(2, 2.5); err != nil {
		log.Fatal(err)
	}
	if err := kernel.SetArgInt(3, n); err != nil {
		log.Fatal(err)
	}
	ev, err := q.EnqueueNDRangeKernel(kernel, 1, []int{n}, []int{128})
	if err != nil {
		log.Fatal(err)
	}
	q.Finish()

	// Verify a few results through another mapping.
	out, _, err := q.EnqueueMapBuffer(bufY, 0, n*4)
	if err != nil {
		log.Fatal(err)
	}
	for _, i := range []int{0, 1, 1000, n - 1} {
		got := math.Float32frombits(binary.LittleEndian.Uint32(out[i*4:]))
		want := 2.5*float32(i) + 1
		fmt.Printf("y[%5d] = %10.1f (want %10.1f)\n", i, got, want)
		if got != want {
			log.Fatalf("mismatch at %d", i)
		}
	}

	m, act := p.Measure(q)
	fmt.Printf("\nkernel time   %.3f ms on %s\n", ev.Seconds*1000, p.Mali().Name())
	fmt.Printf("board power   %.2f W (simulated WT230, σ %.4f)\n", m.MeanPowerW, m.StdPowerW)
	fmt.Printf("energy        %.4f J for %.1f MB of DRAM traffic\n",
		m.EnergyJ, float64(act.DRAMBytes)/1e6)
}
