// Convolution example: blur a procedurally generated image with a 5x5
// Gaussian on the simulated platform, running the same workload as
// the paper's Serial baseline (one A15 core) and as a vectorized Mali
// kernel, and reporting the speedup and energy ratio — a miniature of
// the paper's 2dcon experiment.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"maligo"
)

const src = `
#define K 5

__kernel void blur_serial(__global const float* in,
                          __global const float* filt,
                          __global float* out,
                          const int dim) {
    int side = dim + 4;
    for (int y = 0; y < dim; y++) {
        for (int x = 0; x < dim; x++) {
            float acc = 0.0f;
            for (int ky = 0; ky < K; ky++) {
                for (int kx = 0; kx < K; kx++) {
                    acc += filt[ky * K + kx] * in[(y + ky) * side + x + kx];
                }
            }
            out[(y + 2) * side + x + 2] = acc;
        }
    }
}

__kernel void blur_vec(__global const float* restrict in,
                       __global const float* restrict filt,
                       __global float* restrict out,
                       const int dim) {
    int x0 = (int)get_global_id(0) * 4;
    int y = (int)get_global_id(1);
    int side = dim + 4;
    float4 acc = (float4)(0.0f);
    for (int ky = 0; ky < K; ky++) {
        int row = (y + ky) * side + x0;
        float4 v0 = vload4(0, in + row);
        float4 v1 = vload4(0, in + row + 4);
        acc = mad((float4)(filt[ky * K]), v0, acc);
        acc = mad((float4)(filt[ky * K + 1]), (float4)(v0.y, v0.z, v0.w, v1.x), acc);
        acc = mad((float4)(filt[ky * K + 2]), (float4)(v0.z, v0.w, v1.x, v1.y), acc);
        acc = mad((float4)(filt[ky * K + 3]), (float4)(v0.w, v1.x, v1.y, v1.z), acc);
        acc = mad((float4)(filt[ky * K + 4]), v1, acc);
    }
    vstore4(acc, 0, out + (y + 2) * side + x0 + 2);
}
`

const dim = 256

func main() {
	p := maligo.NewPlatform()
	ctx := p.Context
	prog := ctx.CreateProgramWithSource(src)
	if err := prog.Build(""); err != nil {
		log.Fatalf("build: %v", err)
	}

	side := dim + 4
	bufIn, err := ctx.CreateBuffer(maligo.MemReadOnly|maligo.MemAllocHostPtr, int64(side*side*4), nil)
	if err != nil {
		log.Fatal(err)
	}
	bufFilt, err := ctx.CreateBuffer(maligo.MemReadOnly|maligo.MemAllocHostPtr, 25*4, nil)
	if err != nil {
		log.Fatal(err)
	}
	bufOut, err := ctx.CreateBuffer(maligo.MemReadWrite|maligo.MemAllocHostPtr, int64(side*side*4), nil)
	if err != nil {
		log.Fatal(err)
	}
	fillImage(bufIn, side)
	fillGaussian(bufFilt)

	args := func(k *maligo.Kernel) {
		for i, set := range []func() error{
			func() error { return k.SetArgBuffer(0, bufIn) },
			func() error { return k.SetArgBuffer(1, bufFilt) },
			func() error { return k.SetArgBuffer(2, bufOut) },
			func() error { return k.SetArgInt(3, dim) },
		} {
			if err := set(); err != nil {
				log.Fatalf("arg %d: %v", i, err)
			}
		}
	}

	// Serial baseline on one Cortex-A15 core.
	qCPU := ctx.CreateCommandQueue(p.CPU())
	ks, err := prog.CreateKernel("blur_serial")
	if err != nil {
		log.Fatal(err)
	}
	args(ks)
	if _, err := qCPU.EnqueueNDRangeKernel(ks, 1, []int{1}, []int{1}); err != nil {
		log.Fatal(err)
	}
	mCPU, _ := p.Measure(qCPU)
	tCPU := qCPU.TotalSeconds()
	ref := checksum(bufOut, side)

	// Vectorized Mali kernel.
	qGPU := ctx.CreateCommandQueue(p.Mali())
	kv, err := prog.CreateKernel("blur_vec")
	if err != nil {
		log.Fatal(err)
	}
	args(kv)
	if _, err := qGPU.EnqueueNDRangeKernel(kv, 2, []int{dim / 4, dim}, []int{32, 4}); err != nil {
		log.Fatal(err)
	}
	mGPU, _ := p.Measure(qGPU)
	tGPU := qGPU.TotalSeconds()
	got := checksum(bufOut, side)

	if math.Abs(got-ref) > 1e-3*math.Abs(ref) {
		log.Fatalf("checksum mismatch: CPU %.6f vs GPU %.6f", ref, got)
	}
	fmt.Printf("image            %dx%d, 5x5 Gaussian\n", dim, dim)
	fmt.Printf("Cortex-A15 core  %8.3f ms  %5.2f W  %8.5f J\n", tCPU*1000, mCPU.MeanPowerW, mCPU.EnergyJ)
	fmt.Printf("Mali-T604 (vec)  %8.3f ms  %5.2f W  %8.5f J\n", tGPU*1000, mGPU.MeanPowerW, mGPU.EnergyJ)
	fmt.Printf("speedup %.1fx, energy %.0f%% of serial (checksum %.4f)\n",
		tCPU/tGPU, mGPU.EnergyJ/mCPU.EnergyJ*100, got)
}

func fillImage(buf *maligo.Buffer, side int) {
	raw, err := buf.Bytes(0, int64(side*side*4))
	if err != nil {
		log.Fatal(err)
	}
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			v := 0.5 + 0.5*math.Sin(float64(x)/7)*math.Cos(float64(y)/11)
			binary.LittleEndian.PutUint32(raw[(y*side+x)*4:], math.Float32bits(float32(v)))
		}
	}
}

func fillGaussian(buf *maligo.Buffer) {
	raw, err := buf.Bytes(0, 25*4)
	if err != nil {
		log.Fatal(err)
	}
	var sum float64
	w := make([]float64, 25)
	for ky := 0; ky < 5; ky++ {
		for kx := 0; kx < 5; kx++ {
			d := float64((ky-2)*(ky-2) + (kx-2)*(kx-2))
			w[ky*5+kx] = math.Exp(-d / 2)
			sum += w[ky*5+kx]
		}
	}
	for i, v := range w {
		binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(float32(v/sum)))
	}
}

func checksum(buf *maligo.Buffer, side int) float64 {
	raw, err := buf.Bytes(0, int64(side*side*4))
	if err != nil {
		log.Fatal(err)
	}
	var sum float64
	for i := 0; i < side*side; i++ {
		sum += float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:])))
	}
	return sum
}
