package maligo

import (
	"maligo/internal/platform"
)

// The device-model fleet: every number the timing, cache and power
// models consume lives in a platform.SoC document, and the simulator
// is instantiated against one registered SoC. The default everywhere
// remains the paper's board (Exynos 5250: 2x Cortex-A15 + Mali-T604);
// the registry adds the Odroid-XU3's two scheduler views — a
// Cortex-A7 LITTLE cluster and a 2.0 GHz A15 big cluster, both in
// front of a Mali-T628 MP6 — and each model carries its own DVFS
// operating-point ladder for the energy model.
type (
	// SoC is one registered board model: CPU cluster, GPU, DRAM,
	// power rails and meter. See the doc.go "Device fleet" chapter
	// for the schema and how to add a model.
	SoC = platform.SoC
	// CPUModel carries the CPU cluster's calibration numbers.
	CPUModel = platform.CPUModel
	// GPUModel carries the Mali core's calibration numbers.
	GPUModel = platform.GPUModel
	// DRAMModel carries the memory system's bandwidth model.
	DRAMModel = platform.DRAMModel
	// PowerRailModel carries the board's power-rail coefficients.
	PowerRailModel = platform.PowerModel
	// OperatingPoint is one DVFS frequency/voltage pair.
	OperatingPoint = platform.OperatingPoint
)

// ErrUnknownDevice reports a device (SoC) name no registered model
// carries — the fleet sibling of ErrUnknownEngine. LookupDevice, the
// malisim/malid/figures -device flags and NewServer wrap it, so
// errors.Is(err, maligo.ErrUnknownDevice) works across every entry
// point.
var ErrUnknownDevice = platform.ErrUnknownDevice

// DefaultDeviceName names the SoC every un-deviced code path runs on:
// the paper's Exynos 5250.
const DefaultDeviceName = platform.DefaultName

// LookupDevice returns the registered SoC of that name ("" selects
// the default Exynos 5250). Unknown names yield an error wrapping
// ErrUnknownDevice that lists the registered fleet.
func LookupDevice(name string) (*SoC, error) { return platform.Lookup(name) }

// DefaultDevice returns the default board model (Exynos 5250).
func DefaultDevice() *SoC { return platform.Default() }

// DeviceNames lists the registered SoC names in sorted order — the
// deterministic enumeration order of the autotuner and the fleet
// differential suite.
func DeviceNames() []string { return platform.Names() }

// Devices returns every registered SoC in DeviceNames order.
func Devices() []*SoC { return platform.All() }

// WithSoC selects the board model a Platform simulates (default the
// Exynos 5250). Obtain models from LookupDevice/Devices, or derive a
// DVFS-scaled variant with SoC.AtNamed.
func WithSoC(s *SoC) Option {
	return func(c *config) { c.opts.SoC = s }
}
