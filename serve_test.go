package maligo_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"

	"maligo"
)

// startDaemon stands up an embedded malid server behind httptest and
// returns a client for it.
func startDaemon(t *testing.T) *maligo.Client {
	t.Helper()
	srv, err := maligo.NewServer(maligo.ServerConfig{})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return maligo.NewClient(ts.URL, ts.Client())
}

// TestClientMatchesInProcess runs every mix benchmark through the
// public Client and through RunJob and requires identical JSON — the
// transport-agnosticity contract of the serving layer.
func TestClientMatchesInProcess(t *testing.T) {
	client := startDaemon(t)
	runner := maligo.NewJobRunner(0)
	defer runner.Close()

	for _, spec := range maligo.JobMixSpecs() {
		local, err := runner.Run(spec)
		if err != nil {
			t.Fatalf("%s: in-process: %v", spec.Kernel, err)
		}
		served, err := client.RunJob(context.Background(), spec)
		if err != nil {
			t.Fatalf("%s: over wire: %v", spec.Kernel, err)
		}
		lb, _ := json.Marshal(local)
		sb, _ := json.Marshal(served)
		if string(lb) != string(sb) {
			t.Fatalf("%s: served result differs from in-process:\nwire:  %s\nlocal: %s", spec.Kernel, sb, lb)
		}
	}
}

// TestClientProgramIDFlow registers a program once and submits by
// content address alone; the result must still report the program's
// id and the repeat must be a cache hit.
func TestClientProgramIDFlow(t *testing.T) {
	client := startDaemon(t)
	spec := maligo.JobMixSpecs()[0]

	info, err := client.RegisterProgram(context.Background(), spec.Source, spec.Options)
	if err != nil {
		t.Fatalf("RegisterProgram: %v", err)
	}
	if want := maligo.JobProgramID(spec.Source, spec.Options); info.ProgramID != want {
		t.Fatalf("program id %q, want %q", info.ProgramID, want)
	}

	byID := *spec
	byID.Source, byID.Options = "", ""
	byID.ProgramID = info.ProgramID
	res, hit, err := client.RunJobCached(context.Background(), &byID)
	if err != nil {
		t.Fatalf("RunJobCached: %v", err)
	}
	if !hit {
		t.Fatal("program_id submission missed the cache it was just registered into")
	}
	if res.ProgramID != info.ProgramID {
		t.Fatalf("result program id %q, want %q", res.ProgramID, info.ProgramID)
	}
}

// TestClientErrorMapping checks wire error envelopes come back as the
// same typed errors the in-process API returns.
func TestClientErrorMapping(t *testing.T) {
	client := startDaemon(t)
	ctx := context.Background()

	_, err := client.RunJob(ctx, &maligo.JobSpec{Kernel: "k"})
	if !errors.Is(err, maligo.ErrInvalidJob) {
		t.Fatalf("invalid spec: %v, want ErrInvalidJob", err)
	}

	_, err = client.RunJob(ctx, &maligo.JobSpec{
		Source: "__kernel void k(int x{}", Kernel: "k",
		Device: maligo.JobDeviceGPU, Global: []int{1},
	})
	if !errors.Is(err, maligo.ErrBuildFailure) {
		t.Fatalf("broken program: %v, want ErrBuildFailure", err)
	}

	_, err = client.GetJob(ctx, "j-ffffffff")
	if !errors.Is(err, maligo.ErrUnknownJob) {
		t.Fatalf("unknown job: %v, want ErrUnknownJob", err)
	}
}

// TestDeprecatedOptionsStillWork pins the compatibility contract of
// the option unification: the old spellings must keep compiling and
// producing working handles.
func TestDeprecatedOptionsStillWork(t *testing.T) {
	p := maligo.NewPlatform(maligo.WithOutOfOrderQueues(true), maligo.WithWorkers(1))
	defer p.Close()
	ctx := maligo.NewContext(
		maligo.ContextDevices(p.Mali()),
		maligo.ContextArenaBytes(1<<20),
		maligo.ContextWorkers(1),
		maligo.ContextAsyncQueues(true),
	)
	defer ctx.Close()
	if _, err := ctx.CreateBuffer(maligo.MemReadWrite, 1024, nil); err != nil {
		t.Fatalf("CreateBuffer on deprecated-option context: %v", err)
	}
}
