package maligo

import (
	"maligo/internal/clc"
	"maligo/internal/clc/ir"
	"maligo/internal/mali"
)

// The offline-compiler surface: compile OpenCL C without a platform,
// inspect per-kernel resource usage, and check kernels against the
// Mali register budget — what ARM's offline kernel compiler does.
type (
	// CompiledProgram is a compiled OpenCL C program: kernels plus the
	// __constant data segment.
	CompiledProgram = ir.Program
	// CompiledKernel is one lowered kernel with its resource counts
	// (Code, NumI, NumF, RegBytes, LocalBytes, PrivateBytes,
	// UsesBarrier, UsesDouble) and Disassemble method.
	CompiledKernel = ir.Kernel
)

// Compile compiles OpenCL C source with clBuildProgram-style options
// (e.g. "-DREAL=float"). filename only labels diagnostics.
func Compile(filename, source, options string) (*CompiledProgram, error) {
	return clc.Compile(filename, source, options)
}

// CheckKernelResources returns CL_OUT_OF_RESOURCES when the kernel
// cannot be mapped onto the Mali-T604 register file — the failure mode
// the paper's double-precision optimized kernels hit.
func CheckKernelResources(k *CompiledKernel) error { return mali.CheckResources(k) }

// KernelRegisterDemand estimates the per-thread register bytes the
// Mali compiler would allocate for k.
func KernelRegisterDemand(k *CompiledKernel) float64 { return mali.RegisterDemand(k) }
