package maligo_test

import (
	"strings"
	"testing"

	"maligo"
)

const optFacadeSrc = `
__kernel void saxpy(__global float* restrict y,
                    __global const float* restrict x,
                    float a, int n) {
	int g = get_global_id(0);
	int base = g * n;
	for (int i = 0; i < n; i++) {
		y[base + i] = a * x[base + i] + y[base + i];
	}
}
`

func TestOptimizeFacade(t *testing.T) {
	prog, err := maligo.Compile("saxpy.cl", optFacadeSrc, "")
	if err != nil {
		t.Fatal(err)
	}
	out, rep := maligo.Optimize(prog)
	if !rep.Applied() {
		t.Fatalf("pipeline should transform the saxpy loop:\n%s", rep.String())
	}
	if out == prog {
		t.Fatal("applied transforms must return a new program, not the input pointer")
	}
	applied := rep.AppliedPasses()
	found := false
	for _, p := range applied {
		if p == "vectorize" {
			found = true
		}
	}
	if !found {
		t.Errorf("vectorize should be among the applied passes, got %v", applied)
	}
	before, err := maligo.KernelIRDump(prog.Kernels["saxpy"])
	if err != nil {
		t.Fatal(err)
	}
	after, err := maligo.KernelIRDump(out.Kernels["saxpy"])
	if err != nil {
		t.Fatal(err)
	}
	if before == after {
		t.Error("irdump of a transformed kernel should differ from the original")
	}
}

func TestOptimizeWithFacade(t *testing.T) {
	prog, err := maligo.Compile("saxpy.cl", optFacadeSrc, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := maligo.OptimizeWith(prog, []string{"loopjam"}); err == nil {
		t.Error("unknown transform pass name should be an error")
	}
	_, rep, err := maligo.OptimizeWith(prog, []string{"unroll"})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range rep.Results {
		if res.Pass != "unroll" {
			t.Errorf("restricted run reported pass %q", res.Pass)
		}
	}
}

func TestOptimizePassVocabulary(t *testing.T) {
	names := maligo.OptimizePassNames()
	want := []string{"constrestrict", "soa", "vectorize", "unroll"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("pipeline order = %v, want %v", names, want)
	}
	passes := maligo.OptimizePasses()
	if len(passes) != len(names) {
		t.Fatalf("OptimizePasses returned %d entries for %d names", len(passes), len(names))
	}
	for i, p := range passes {
		if p.Name != names[i] {
			t.Errorf("pass %d: name %q != %q", i, p.Name, names[i])
		}
		if p.Doc == "" || len(p.Answers) == 0 {
			t.Errorf("pass %q must document itself and name the analyzer passes it answers", p.Name)
		}
	}
}
