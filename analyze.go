package maligo

import (
	"maligo/internal/cl"
	"maligo/internal/clc/analysis"
	"maligo/internal/vm"
)

// The static-analysis surface: the kernel linter that checks OpenCL C
// against the paper's Mali optimization techniques (vectorization,
// const/restrict qualifiers, copy-to-local/private staging, SoA
// layouts, register pressure) and diagnoses barrier divergence, static
// intra-work-group races and out-of-bounds constant indices. The
// dynamic half — cross-checking static race reports against executed
// memory traces — hangs off Queue.SetRaceCheck and Event.RaceCheck.
type (
	// Diagnostic is one analyzer finding: position, severity, the pass
	// that produced it, and a fix hint.
	Diagnostic = analysis.Diagnostic
	// Severity ranks diagnostics: Info < Warning < Error.
	Severity = analysis.Severity
	// AnalysisPass describes one registered lint or correctness pass.
	AnalysisPass = analysis.Pass
	// DataRace is one dynamically-observed intra-work-group race.
	DataRace = vm.DataRace
	// RaceCheckResult pairs static race diagnostics with the races the
	// VM observed during an enqueue (Event.RaceCheck).
	RaceCheckResult = cl.RaceCheckResult
)

// Diagnostic severities.
const (
	SevInfo    = analysis.Info
	SevWarning = analysis.Warning
	SevError   = analysis.Error
)

// Analyze runs every registered static-analysis pass over the given
// OpenCL C source and returns the findings in source order. filename
// only labels diagnostics; options are clBuildProgram-style.
func Analyze(filename, source, options string) ([]Diagnostic, error) {
	return analysis.AnalyzeSource(filename, source, options)
}

// AnalyzeWith is Analyze restricted to the named passes (see
// AnalysisPassNames); a nil or empty list runs everything.
func AnalyzeWith(filename, source, options string, passes []string) ([]Diagnostic, error) {
	return analysis.AnalyzeSourcePasses(filename, source, options, passes)
}

// AnalysisPasses lists the registered passes with their documentation.
func AnalysisPasses() []AnalysisPass { return analysis.Passes() }

// AnalysisPassNames lists the registered pass names in run order —
// the vocabulary of AnalyzeWith and the clc -passes flag.
func AnalysisPassNames() []string { return analysis.PassNames() }

// ParseSeverity converts "info", "warning" or "error" to a Severity.
func ParseSeverity(s string) (Severity, error) { return analysis.ParseSeverity(s) }

// FormatDiagnostics renders diagnostics one per line in
// file:line:col: severity: [pass] message (hint) form.
func FormatDiagnostics(diags []Diagnostic) string { return analysis.Format(diags) }

// FormatDiagnosticsJSON renders diagnostics as a JSON array.
func FormatDiagnosticsJSON(diags []Diagnostic) ([]byte, error) {
	return analysis.FormatJSON(diags)
}

// MaxDiagnosticSeverity returns the highest severity present (Info for
// an empty list) — the -Werror-style gate.
func MaxDiagnosticSeverity(diags []Diagnostic) Severity { return analysis.MaxSeverity(diags) }
