// Package maligo's top-level benchmarks regenerate every table and
// figure of the paper's evaluation (§V) as Go benchmarks: one
// Benchmark per figure series plus the §V-D summary. Each benchmark
// reports the paper-relevant quantities as custom metrics
// (speedup-over-serial, normalized power/energy) so `go test -bench`
// output reads like the figures.
//
// Workloads run at a reduced scale by default so the whole suite
// finishes in minutes; set -paperscale for the full sizes used by
// EXPERIMENTS.md.
//
// Everything here goes through the public maligo API — the file
// doubles as a compile-time check that the façade covers the whole
// evaluation surface.
package maligo_test

import (
	"flag"
	"fmt"
	"math"
	"runtime"
	"testing"

	"maligo"
)

var paperScale = flag.Bool("paperscale", false, "run figure benchmarks at full paper-equivalent workload sizes")

func benchScale() float64 {
	if *paperScale {
		return 1.0
	}
	return 0.25
}

// figureCache caches one harness run per scale across benchmarks.
var figureCache = map[float64]*maligo.Results{}

func results(b *testing.B) *maligo.Results {
	b.Helper()
	scale := benchScale()
	if res, ok := figureCache[scale]; ok {
		return res
	}
	cfg := maligo.DefaultExperimentConfig()
	cfg.Scale = scale
	res, err := maligo.RunExperiments(cfg)
	if err != nil {
		b.Fatalf("harness: %v", err)
	}
	figureCache[scale] = res
	return res
}

// reportFigure emits one figure's series as benchmark metrics.
func reportFigure(b *testing.B, fig maligo.Figure) {
	res := results(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = res.FigureTable(fig)
	}
	b.StopTimer()
	tab := res.FigureTable(fig)
	for r, name := range tab.Rows {
		for c := 1; c < len(tab.Cols); c++ {
			v := tab.Values[r][c]
			if math.IsNaN(v) {
				continue
			}
			metric := fmt.Sprintf("%s/%s", name, shortCol(tab.Cols[c]))
			b.ReportMetric(v, metric)
		}
	}
}

func shortCol(col string) string {
	switch col {
	case "OpenMP":
		return "omp"
	case "OpenCL":
		return "cl"
	case "OpenCL Opt":
		return "opt"
	}
	return col
}

// BenchmarkFigure2a reproduces Figure 2(a): single-precision speedup
// over Serial for all nine benchmarks and three parallel versions.
func BenchmarkFigure2a(b *testing.B) { reportFigure(b, maligo.Fig2a) }

// BenchmarkFigure2b reproduces Figure 2(b): double-precision speedups,
// including the amcd n/a cells and the nbody/2dcon fallbacks.
func BenchmarkFigure2b(b *testing.B) { reportFigure(b, maligo.Fig2b) }

// BenchmarkFigure3a reproduces Figure 3(a): single-precision power
// normalized to Serial.
func BenchmarkFigure3a(b *testing.B) { reportFigure(b, maligo.Fig3a) }

// BenchmarkFigure3b reproduces Figure 3(b): double-precision power.
func BenchmarkFigure3b(b *testing.B) { reportFigure(b, maligo.Fig3b) }

// BenchmarkFigure4a reproduces Figure 4(a): single-precision
// energy-to-solution normalized to Serial.
func BenchmarkFigure4a(b *testing.B) { reportFigure(b, maligo.Fig4a) }

// BenchmarkFigure4b reproduces Figure 4(b): double-precision
// energy-to-solution.
func BenchmarkFigure4b(b *testing.B) { reportFigure(b, maligo.Fig4b) }

// BenchmarkSummary reproduces the §V-D averages (8.7x speedup, 32%
// energy, +31% OpenMP power, +7% OpenCL power).
func BenchmarkSummary(b *testing.B) {
	res := results(b)
	b.ResetTimer()
	var s maligo.Summary
	for i := 0; i < b.N; i++ {
		s = res.Summarize()
	}
	b.StopTimer()
	b.ReportMetric(s.OptSpeedupAll, "opt-speedup-x")
	b.ReportMetric(s.OptEnergyFracAll*100, "opt-energy-%")
	b.ReportMetric(s.OptEnergyFracF32*100, "opt-energy-f32-%")
	b.ReportMetric(s.ClEnergyFracF32*100, "cl-energy-f32-%")
	b.ReportMetric((1+s.OMPPowerIncrease)*100, "omp-power-%")
	b.ReportMetric((1+s.CLPowerIncrease)*100, "cl-power-%")
	b.ReportMetric(s.OMPSpeedupAvg, "omp-speedup-x")
}

// BenchmarkSimulatorThroughput measures the simulator itself: executed
// kernel instructions per second for a representative compute kernel
// (useful when tuning the VM).
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := maligo.DefaultExperimentConfig()
	cfg.Scale = 0.1
	cfg.Benchmarks = []string{"dmmm"}
	cfg.Precisions = []maligo.Precision{maligo.F32}
	cfg.Verify = false
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		res, err := maligo.RunExperiments(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range res.CellsSorted() {
			if c.Supported {
				instrs += c.Activity.DRAMBytes // proxy touch to keep results alive
			}
		}
	}
	b.StopTimer()
	_ = instrs
}

// --- parallel execution engine --------------------------------------------

// engineRun measures one conv2d+nbody harness pass with the given
// worker count and returns total host wall-clock of the measured
// regions plus the results for cross-checking.
func engineRun(tb testing.TB, workers int) (float64, *maligo.Results) {
	tb.Helper()
	cfg := maligo.DefaultExperimentConfig()
	cfg.Scale = benchScale()
	cfg.Benchmarks = []string{"2dcon", "nbody"}
	cfg.Precisions = []maligo.Precision{maligo.F32}
	cfg.Workers = workers
	res, err := maligo.RunExperiments(cfg)
	if err != nil {
		tb.Fatalf("harness(workers=%d): %v", workers, err)
	}
	var host float64
	for _, c := range res.CellsSorted() {
		if c.Supported {
			host += c.HostSeconds
		}
	}
	return host, res
}

// TestEngineSpeedup checks the point of the whole engine: with at
// least four host CPUs, sharding conv2d+nbody across NumCPU workers
// must cut host wall-clock at least 2x versus the serial engine while
// every simulated number stays bit-identical.
func TestEngineSpeedup(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 host CPUs for a meaningful speedup bound, have %d", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("wall-clock comparison too slow for -short")
	}
	serialHost, serialRes := engineRun(t, 1)
	shardedHost, shardedRes := engineRun(t, runtime.NumCPU())

	for key, sc := range serialRes.Cells {
		pc := shardedRes.Cells[key]
		if pc == nil || sc.Supported != pc.Supported {
			t.Fatalf("%s: cell mismatch", key)
		}
		if !sc.Supported {
			continue
		}
		if sc.Seconds != pc.Seconds || sc.Power != pc.Power || sc.Activity != pc.Activity {
			t.Errorf("%s: simulated results differ between engines", key)
		}
	}
	speedup := serialHost / shardedHost
	t.Logf("host wall-clock: serial %.2fs, %d workers %.2fs (%.2fx)",
		serialHost, runtime.NumCPU(), shardedHost, speedup)
	if speedup < 2 {
		t.Errorf("engine speedup = %.2fx, want >= 2x with %d workers", speedup, runtime.NumCPU())
	}
}

// BenchmarkEngineSerial measures host wall-clock of the conv2d+nbody
// simulation on the serial engine.
func BenchmarkEngineSerial(b *testing.B) { benchmarkEngine(b, 1) }

// BenchmarkEngineParallel measures the same run sharded across all
// host CPUs; compare ns/op against BenchmarkEngineSerial.
func BenchmarkEngineParallel(b *testing.B) { benchmarkEngine(b, runtime.NumCPU()) }

func benchmarkEngine(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		host, _ := engineRun(b, workers)
		b.ReportMetric(host, "host-sec/run")
	}
}

// --- per-optimization ablation benches (DESIGN.md §5) -----------------------

// ablationRun measures one benchmark version pair and reports the
// ratio as a metric.
func ablationRun(b *testing.B, name string, prec maligo.Precision) {
	res := results(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = res.Speedup(name, prec, maligo.OpenCLOpt)
	}
	b.StopTimer()
	cl := res.Speedup(name, prec, maligo.OpenCL)
	opt := res.Speedup(name, prec, maligo.OpenCLOpt)
	if !math.IsNaN(cl) && !math.IsNaN(opt) && cl > 0 {
		b.ReportMetric(opt/cl, "opt-vs-naive-x")
		b.ReportMetric(opt, "opt-vs-serial-x")
	}
}

// BenchmarkAblationVectorization isolates the vectorization payoff on
// the bandwidth-bound vecop (vload4/vstore4 vs scalar).
func BenchmarkAblationVectorization(b *testing.B) { ablationRun(b, "vecop", maligo.F32) }

// BenchmarkAblationPrivatization isolates local-memory privatization
// on hist (local atomics vs contended global atomics).
func BenchmarkAblationPrivatization(b *testing.B) { ablationRun(b, "hist", maligo.F32) }

// BenchmarkAblationUnrollTiling isolates register blocking + unrolling
// on dmmm.
func BenchmarkAblationUnrollTiling(b *testing.B) { ablationRun(b, "dmmm", maligo.F32) }

// BenchmarkAblationHostMemory measures §III-A's copy-vs-map host
// memory strategies.
func BenchmarkAblationHostMemory(b *testing.B) {
	var res maligo.HostMemResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = maligo.RunHostMemAblation(1 << 18)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Speedup(), "map-vs-copy-x")
}

// BenchmarkAblationDataLayout measures §III-B's AoS-vs-SoA gap.
func BenchmarkAblationDataLayout(b *testing.B) {
	var res maligo.LayoutResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = maligo.RunLayoutAblation(1 << 18)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Speedup(), "soa-vs-aos-x")
}
