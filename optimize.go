package maligo

import (
	"maligo/internal/clc/backend"
	"maligo/internal/clc/opt"
)

// The transform surface: where Analyze only reports the source paper's
// Section V optimization opportunities, Optimize applies them as
// verified IR-to-IR rewrites — auto-vectorization of unit-stride
// loops, AoS-to-SoA relayout of kernel scratch arrays, register-budget
// gated unrolling, and const/restrict promotion. A transformed program
// is guaranteed bit-identical to the original on every VM engine; a
// pass that cannot prove its soundness conditions refuses and says
// why, keyed to the analyzer pass whose diagnostic it answers.
type (
	// OptimizeResult is one transform pass's applicability verdict for
	// one kernel: applied with a site count, or refused with reasons.
	OptimizeResult = opt.Result
	// OptimizeReport aggregates per-kernel, per-pass OptimizeResults
	// for one Optimize run.
	OptimizeReport = opt.Report
	// OptimizePass describes one registered transform pass and the
	// analyzer passes whose findings it acts on.
	OptimizePass = opt.Pass
)

// Optimize runs the full transform pipeline over a compiled program.
// The input is never mutated; when no pass applies, the returned
// program is the input pointer itself.
func Optimize(p *CompiledProgram) (*CompiledProgram, *OptimizeReport) {
	return opt.Optimize(p)
}

// OptimizeWith is Optimize restricted to the named transform passes
// (see OptimizePassNames); a nil list runs everything. Passes always
// execute in pipeline order regardless of the order given.
func OptimizeWith(p *CompiledProgram, passes []string) (*CompiledProgram, *OptimizeReport, error) {
	return opt.OptimizeWith(p, passes)
}

// OptimizePasses lists the registered transform passes in pipeline
// order with their documentation.
func OptimizePasses() []OptimizePass { return opt.Passes() }

// OptimizePassNames lists the transform pass names in pipeline order —
// the vocabulary of OptimizeWith and the clc -optimize -passes flag.
func OptimizePassNames() []string {
	return opt.PassNames()
}

// KernelIRDump renders one compiled kernel in the versioned irdump
// text format — the stable before/after representation the transform
// goldens and `clc -optimize -dis` print.
func KernelIRDump(k *CompiledKernel) (string, error) {
	be, err := backend.Get("irdump")
	if err != nil {
		return "", err
	}
	out, err := be.Emit(k)
	if err != nil {
		return "", err
	}
	return string(out), nil
}
