package maligo

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"maligo/internal/job"
	"maligo/internal/service"
)

// The serializable request/response layer: the same JobSpec document
// runs in-process through RunJob or over the wire through Client
// against a malid daemon, and both paths return byte-identical
// JobResult JSON — every field of a result is simulated state, never
// host timing.
type (
	// JobSpec describes one compile+enqueue job: OpenCL C source (or
	// a cached program's content address), the kernel, its positional
	// arguments, the NDRange geometry and the target device.
	JobSpec = job.Spec
	// JobArg is one positional kernel argument of a JobSpec.
	JobArg = job.Arg
	// JobResult is the deterministic simulated report of one job.
	JobResult = job.Result
	// ServerConfig sizes an embedded malid server (NewServer).
	ServerConfig = service.Config
	// Server is the malid service core: admission queues, program
	// cache and job registry behind an http.Handler.
	Server = service.Server
)

// JobSpec device names.
const (
	JobDeviceCPU     = job.DeviceCPU
	JobDeviceCPUDual = job.DeviceCPUDual
	JobDeviceGPU     = job.DeviceGPU
)

// JobSpec argument kinds.
const (
	JobArgBuffer = job.ArgBuffer
	JobArgInt    = job.ArgInt
	JobArgFloat  = job.ArgFloat
	JobArgLocal  = job.ArgLocal
)

// JobProgramID computes the content address of a program (the
// sha256-based id the malid program cache keys on).
func JobProgramID(source, options string) string { return job.ProgramID(source, options) }

// JobRunner executes JobSpecs in-process with the same pooling and
// determinism contract as the daemon. Close releases its worker pool
// and pooled contexts.
type JobRunner = job.Runtime

// NewJobRunner creates an in-process job executor. workers <= 0
// selects runtime.NumCPU(); results are bit-identical at any setting.
func NewJobRunner(workers int) *JobRunner {
	return job.NewRuntime(job.Config{Workers: workers})
}

// RunJob executes one job document in-process on a throwaway runner.
// For repeated runs, hold a NewJobRunner (context pooling amortizes
// per-job setup) or stand up a Server.
func RunJob(spec *JobSpec) (*JobResult, error) {
	r := job.NewRuntime(job.Config{})
	defer r.Close()
	return r.Run(spec)
}

// NewServer assembles the malid service core. Mount Handler on any
// http.Server (cmd/malid is a thin flag wrapper around exactly this):
//
//	srv, _ := maligo.NewServer(maligo.ServerConfig{})
//	defer srv.Close()
//	http.ListenAndServe(addr, srv.Handler())
func NewServer(cfg ServerConfig) (*Server, error) { return service.New(cfg) }

// Client talks to a malid daemon. The zero value is unusable; use
// NewClient. Errors coming back over the wire are mapped onto the
// same typed errors the in-process API returns (ErrInvalidJob,
// ErrTenantQuota, ErrUnknownJob, ErrBuildFailure), so errors.Is-based
// handling is transport-agnostic.
type Client struct {
	base string
	http *http.Client
}

// NewClient creates a client for a malid base URL, e.g.
// "http://localhost:8372". httpClient may be nil for
// http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), http: httpClient}
}

// ProgramInfo is the daemon's answer to a program registration:
// content address, cache disposition, kernels, and the static
// analyzer's findings (empty under the daemon's "off" policy).
type ProgramInfo struct {
	ProgramID   string       `json:"program_id"`
	Cached      bool         `json:"cached"`
	Kernels     []string     `json:"kernels"`
	Diagnostics []Diagnostic `json:"diagnostics,omitempty"`
}

// wireError mirrors the server's error envelope.
type wireError struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// typed maps a wire error code back onto the package's sentinel.
func (we wireError) typed(status int) error {
	base := fmt.Errorf("malid: %s", we.Error)
	switch we.Code {
	case "analysis_failed":
		return fmt.Errorf("%w: %s", ErrAnalysisFailed, we.Error)
	case "tenant_quota":
		return fmt.Errorf("%w: %s", ErrTenantQuota, we.Error)
	case "unknown_job":
		return fmt.Errorf("%w: %s", ErrUnknownJob, we.Error)
	case "invalid_job":
		return fmt.Errorf("%w: %s", ErrInvalidJob, we.Error)
	case "job_error":
		if strings.Contains(we.Error, "CL_BUILD_PROGRAM_FAILURE") {
			return fmt.Errorf("%w: %s", ErrBuildFailure, we.Error)
		}
		return base
	default:
		return fmt.Errorf("malid: HTTP %d: %s", status, we.Error)
	}
}

// post sends one JSON document and decodes the response or error
// envelope.
func (c *Client) post(ctx context.Context, path string, req, resp any) (http.Header, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	res, err := c.http.Do(hr)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	return res.Header, decodeResponse(res, resp)
}

func decodeResponse(res *http.Response, out any) error {
	data, err := io.ReadAll(io.LimitReader(res.Body, 64<<20))
	if err != nil {
		return err
	}
	if res.StatusCode >= 400 {
		var we wireError
		if json.Unmarshal(data, &we) == nil && we.Error != "" {
			return we.typed(res.StatusCode)
		}
		return fmt.Errorf("malid: HTTP %d: %s", res.StatusCode, bytes.TrimSpace(data))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// RegisterProgram uploads source once and returns its content
// address plus the analyzer's diagnostics; subsequent jobs may carry
// only the program_id. Under a daemon's "error" analysis policy a
// program with error-severity findings fails with ErrAnalysisFailed.
func (c *Client) RegisterProgram(ctx context.Context, source, options string) (*ProgramInfo, error) {
	return c.RegisterProgramAs(ctx, "", source, options)
}

// RegisterProgramAs is RegisterProgram on behalf of a named tenant,
// which selects that tenant's analysis admission policy.
func (c *Client) RegisterProgramAs(ctx context.Context, tenant, source, options string) (*ProgramInfo, error) {
	var info ProgramInfo
	req := map[string]string{"source": source, "options": options}
	if tenant != "" {
		req["tenant"] = tenant
	}
	if _, err := c.post(ctx, "/v1/programs", req, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// RunJob submits a job and waits for its result. The returned result
// is byte-identical (as JSON) to running the same spec in-process.
func (c *Client) RunJob(ctx context.Context, spec *JobSpec) (*JobResult, error) {
	var res JobResult
	if _, err := c.post(ctx, "/v1/jobs", spec, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// RunJobCached is RunJob plus the server's cache disposition (whether
// the program compile was skipped).
func (c *Client) RunJobCached(ctx context.Context, spec *JobSpec) (*JobResult, bool, error) {
	var res JobResult
	hdr, err := c.post(ctx, "/v1/jobs", spec, &res)
	if err != nil {
		return nil, false, err
	}
	return &res, hdr.Get("X-Malid-Cache") == "hit", nil
}

// SubmitJob submits a job asynchronously and returns its id for
// polling with JobStatus.
func (c *Client) SubmitJob(ctx context.Context, spec *JobSpec) (string, error) {
	var ack struct {
		JobID  string `json:"job_id"`
		Status string `json:"status"`
	}
	if _, err := c.post(ctx, "/v1/jobs?async=1", spec, &ack); err != nil {
		return "", err
	}
	return ack.JobID, nil
}

// JobStatus is one registry record of a submitted job.
type JobStatus struct {
	JobID  string     `json:"job_id"`
	Tenant string     `json:"tenant"`
	Status string     `json:"status"`
	Error  string     `json:"error,omitempty"`
	Result *JobResult `json:"result,omitempty"`
}

// GetJob fetches a job's registry record.
func (c *Client) GetJob(ctx context.Context, id string) (*JobStatus, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	res, err := c.http.Do(hr)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	var st JobStatus
	if err := decodeResponse(res, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Metrics fetches the daemon's /metrics text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	res, err := c.http.Do(hr)
	if err != nil {
		return "", err
	}
	defer res.Body.Close()
	data, err := io.ReadAll(res.Body)
	if err != nil {
		return "", err
	}
	if res.StatusCode != http.StatusOK {
		return "", fmt.Errorf("malid: HTTP %d", res.StatusCode)
	}
	return string(data), nil
}

// JobMixSpecs returns the nine paper benchmarks as small job
// documents — the load driver's mix and a ready-made smoke test.
func JobMixSpecs() []*JobSpec { return job.MixSpecs() }
